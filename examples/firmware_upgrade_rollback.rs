//! The firmware-upgrade failure walkthrough of paper §6.
//!
//! Runs the full upgrade task (drain → set firmware → push → alloc test IP
//! → ping → optic test → dealloc → undrain), injects a failure at the
//! fiber-optic test, prints the typed execution log, the syntax tree, and
//! the suggested rollback plan, then executes the plan and verifies the
//! database returned to its pre-task snapshot.
//!
//! Run with: `cargo run --example firmware_upgrade_rollback`

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::rollback::{parse_log, render_log, render_tree};
use occam::{execute_rollback, TaskState};

fn main() {
    let (runtime, _ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&runtime);
    let before = runtime.db().snapshot();

    // Fail the first f_optic_test invocation, like the paper's example.
    svc.library().fail_at("f_optic_test", 0);

    let report = runtime.task("firmware_upgrade").run(|ctx| {
        let target = ctx.network("dc01.pod01.tor00")?;
        target.apply("f_drain")?;
        target.set(attrs::FIRMWARE_VERSION, "fw-2.1.0".into())?;
        target.set(attrs::FIRMWARE_BINARY, "s3://firmware/fw-2.1.0.bin".into())?;
        target.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
        target.apply("f_alloc_ip")?;
        target.apply("f_ping_test")?;
        target.apply("f_optic_test")?; // <- injected failure fires here
        target.apply("f_dealloc_ip")?;
        target.apply("f_undrain")?;
        target.close();
        Ok(())
    });

    assert_eq!(report.state, TaskState::Aborted);
    println!("task aborted: {}", report.error.as_ref().unwrap());
    println!();
    println!("typed execution log:");
    println!("  {}", render_log(&report.log));
    println!();
    println!("syntax tree (Figure 6):");
    let tree = parse_log(&report.log).unwrap();
    for line in render_tree(&tree, &report.log).lines() {
        println!("  {line}");
    }
    let plan = report.rollback.as_ref().expect("plan suggested");
    println!();
    println!("suggested rollback plan: {}", plan.arrow_notation());
    for (i, step) in report.rollback_steps().iter().enumerate() {
        println!("  {}. {step}", i + 1);
    }
    assert_eq!(
        plan.arrow_notation(),
        "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        "matches the paper's §6 walkthrough"
    );

    // Execute the plan and verify recovery.
    let steps = execute_rollback(&report, runtime.db(), svc).unwrap();
    println!();
    println!("executed {steps} rollback steps");
    assert_eq!(runtime.db().snapshot(), before, "database fully restored");
    let net = svc.net();
    let guard = net.lock();
    let id = guard.device_by_name("dc01.pod01.tor00").unwrap();
    let sw = guard.switch(id).unwrap();
    assert!(!sw.drained, "traffic restored");
    assert!(sw.test_ip.is_none(), "test environment torn down");
    println!("database and device state verified back to the pre-task snapshot");
}
