//! Case study #2 (paper §8.2, Figure 13): four concurrent management tasks
//! under FIFO vs LDSF scheduling.
//!
//! Task 1 (`middlebox_rerouting`) holds the contended object first; task 2
//! (`ping_test`) and task 3 (`denylist`) both wait on it; task 4 (another
//! `ping_test`) waits on an object task 3 holds. When task 1 commits, FIFO
//! grants the earlier-arrived task 2, while LDSF grants task 3, whose
//! dependency set (itself + task 4) is larger.
//!
//! Run with: `cargo run --example concurrent_scheduling`

use occam::objtree::{LockMode, ObjTree, TaskId};
use occam::regex::Pattern;
use occam::sched::{Policy, Scheduler};

fn decision(policy: Policy) -> TaskId {
    let mut tree = ObjTree::new();
    let switch = tree.insert_region(&Pattern::from_glob("dc01.pod00.agg00").unwrap())[0];
    let other = tree.insert_region(&Pattern::from_glob("dc01.pod01.tor00").unwrap())[0];

    // Task 1 (middlebox_rerouting) holds the contended switch.
    tree.request_lock(TaskId(1), switch, LockMode::Exclusive, 0, false);
    tree.grant(switch, TaskId(1)).unwrap();
    // Task 3 (denylist) holds a second object...
    tree.request_lock(TaskId(3), other, LockMode::Exclusive, 1, false);
    tree.grant(other, TaskId(3)).unwrap();
    // ...then task 2 (ping_test) requests the switch (earlier arrival),
    // task 3 requests it too, and task 4 (ping_test) waits behind task 3.
    tree.request_lock(TaskId(2), switch, LockMode::Exclusive, 2, false);
    tree.request_lock(TaskId(3), switch, LockMode::Exclusive, 3, false);
    tree.request_lock(TaskId(4), other, LockMode::Exclusive, 4, false);

    // Task 1 commits; the scheduler decides who runs next.
    tree.release_task(TaskId(1));
    let mut sched = Scheduler::new(policy);
    let grants = sched.sched(&mut tree);
    grants
        .iter()
        .find(|g| g.obj == switch)
        .map(|g| g.task)
        .expect("the freed switch is granted to someone")
}

fn main() {
    let fifo = decision(Policy::Fifo);
    let ldsf = decision(Policy::Ldsf);
    println!("contended switch released by task 1:");
    println!("  FIFO grants task {:?} (earliest arrival)", fifo.0);
    println!(
        "  LDSF grants task {:?} (largest dependency set: it also blocks task 4)",
        ldsf.0
    );
    assert_eq!(fifo, TaskId(2), "FIFO picks the earlier-arrival ping_test");
    assert_eq!(
        ldsf,
        TaskId(3),
        "LDSF picks the denylist task blocking task 4"
    );

    // The same four tasks as real Occam programs, under the full runtime:
    // whatever the policy, the background traffic is never disrupted
    // (Figure 13a's observation) because conflicting tasks serialize.
    let (runtime, _ft) = occam::emulated_deployment(1, 6);
    let mut handles = Vec::new();
    for (name, scope, func, args) in [
        (
            "middlebox_rerouting",
            "dc01.pod00.agg00",
            "f_reroute_middlebox",
            occam::emunet::FuncArgs::none(),
        ),
        (
            "ping_test_a",
            "dc01.pod00.agg00",
            "f_alloc_ip",
            occam::emunet::FuncArgs::none(),
        ),
        (
            "denylist",
            "dc01.pod00.agg00",
            "f_denylist",
            occam::emunet::FuncArgs::one("class", "suspicious"),
        ),
        (
            "ping_test_b",
            "dc01.pod00.agg00",
            "f_alloc_ip",
            occam::emunet::FuncArgs::none(),
        ),
    ] {
        let rt = runtime.clone();
        handles.push(rt.clone().task(name).spawn(move |ctx| {
            let net = ctx.network(scope)?;
            net.apply_with(func, &args)?;
            if func == "f_alloc_ip" {
                net.apply("f_ping_test")?;
                net.apply("f_dealloc_ip")?;
            }
            Ok(())
        }));
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    for h in handles {
        let r = h.join().unwrap();
        println!("task `{}` -> {:?}", r.name, r.state);
        assert_eq!(r.state, occam::TaskState::Completed);
    }
}
