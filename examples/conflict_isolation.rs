//! Case study #1 (paper §8.2, Figure 12): conflict between a data-plane
//! upgrade and a link turn-up.
//!
//! `upgrade_data_plane` drains a switch, upgrades its program, and
//! undrains. `turn_up_links` pushes configuration to the same switch,
//! which — by default — resets the admin state to active. Without locking
//! the push lands mid-upgrade and the switch black-holes user traffic;
//! with Occam's locking the tasks serialize and traffic is never dropped.
//!
//! Run with: `cargo run --example conflict_isolation`

use occam::emunet::{Delivery, DeviceService, FlowClass, FuncArgs};
use occam::netdb::attrs;

fn black_holed_ticks(with_locks: bool) -> usize {
    let (runtime, ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&runtime);
    let target = "dc01.pod00.agg00".to_string();

    // Background traffic crossing the target switch's pod.
    let flow = {
        let net = svc.net();
        let mut guard = net.lock();
        // Drain the sibling aggs so every cross-pod path uses agg00 —
        // makes the hazard visible deterministically.
        for &agg in &ft.aggs[0][1..] {
            guard.switch_mut(agg).unwrap().drained = true;
        }
        guard.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[3][0][0],
            100.0,
            FlowClass::Background,
        )
    };

    if with_locks {
        // Both programs run as Occam tasks: the runtime serializes them.
        let rt1 = runtime.clone();
        let t = target.clone();
        let h1 = rt1.task("upgrade_data_plane").spawn(move |ctx| {
            let net = ctx.network(&t)?;
            net.apply("f_drain")?;
            net.apply_with("f_upgrade_data_plane", &FuncArgs::one("phase", "begin"))?;
            // The upgrade takes time on the physical device.
            ctx.runtime().service().advance(5);
            std::thread::sleep(std::time::Duration::from_millis(120));
            net.apply_with(
                "f_upgrade_data_plane",
                &FuncArgs::one("phase", "commit").with("program", "ecmp_v2"),
            )?;
            net.apply("f_undrain")?;
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(40));
        let rt2 = runtime.clone();
        let t = target.clone();
        let h2 = rt2.task("turn_up_links").spawn(move |ctx| {
            let net = ctx.network(&t)?;
            net.set_links(attrs::LINK_STATUS, attrs::UP.into())?;
            net.apply("f_turnup_link")?;
            net.apply("f_push")?;
            Ok(())
        });
        h1.join().unwrap();
        h2.join().unwrap();
    } else {
        // Legacy style: both programs hit the device service directly with
        // no coordination. The push lands mid-upgrade.
        let devices = vec![target.clone()];
        svc.execute("f_drain", &devices, &FuncArgs::none()).unwrap();
        svc.execute(
            "f_upgrade_data_plane",
            &devices,
            &FuncArgs::one("phase", "begin"),
        )
        .unwrap();
        svc.advance(5);
        // Concurrent turn_up_links pushes default config: admin -> active.
        svc.execute("f_turnup_link", &devices, &FuncArgs::none())
            .unwrap();
        svc.execute("f_push", &devices, &FuncArgs::none()).unwrap();
        svc.advance(5);
        svc.execute(
            "f_upgrade_data_plane",
            &devices,
            &FuncArgs::one("phase", "commit").with("program", "ecmp_v2"),
        )
        .unwrap();
        svc.execute("f_undrain", &devices, &FuncArgs::none())
            .unwrap();
    }
    svc.advance(5);

    // Count ticks where the flow was black-holed.
    let net = svc.net();
    let guard = net.lock();
    guard
        .history()
        .iter()
        .filter(|s| matches!(s.flow_rate.get(&flow), Some((Delivery::BlackHoled, _))))
        .count()
}

fn main() {
    let without = black_holed_ticks(false);
    let with = black_holed_ticks(true);
    println!("ticks with black-holed user traffic:");
    println!("  without locking: {without}");
    println!("  with Occam locking: {with}");
    assert!(without > 0, "the race must drop traffic without locks");
    assert_eq!(with, 0, "Occam serializes the tasks; no traffic dropped");
}
