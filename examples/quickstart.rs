//! Quickstart: the paper's first example program (§3.3).
//!
//! Flags the switches of one pod as under maintenance and drains their
//! traffic — four lines of management logic; locking, transactionality,
//! and rollback bookkeeping are supplied by the runtime.
//!
//! Run with: `cargo run --example quickstart`

use occam::netdb::attrs;
use occam::TaskState;

fn main() {
    // A k=6 Fat-tree datacenter (the paper's emulation fabric: 18 ToR,
    // 18 aggregation, 9 core switches) with a seeded source-of-truth DB.
    let (runtime, _ft) = occam::emulated_deployment(1, 6);

    let report = runtime.task("device_maintenance").run(|ctx| {
        // device_maintenance.occam, line for line:
        let dc1pod3 = ctx.network("dc01.pod03.*")?;
        dc1pod3.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        dc1pod3.apply("f_drain")?;
        dc1pod3.close();
        Ok(())
    });

    println!("task `{}` -> {:?}", report.name, report.state);
    for entry in &report.log {
        println!(
            "  {} {} on {} devices",
            entry.typ,
            entry.label,
            entry.devices.len()
        );
    }
    assert_eq!(report.state, TaskState::Completed);

    // The pod's switches are drained in the emulated network and flagged in
    // the database.
    let svc = occam::emu_service(&runtime);
    let net = svc.net();
    let guard = net.lock();
    let drained = guard
        .topo
        .devices()
        .filter(|(id, d)| {
            d.name.starts_with("dc01.pod03.")
                && guard.switch(*id).map(|s| s.drained).unwrap_or(false)
        })
        .count();
    println!("drained switches in dc01.pod03: {drained}");
    assert_eq!(drained, 6, "k=6 pod has 3 ToR + 3 Agg switches");

    let flagged = runtime
        .db()
        .get_attr(
            &occam::regex::Pattern::from_glob("dc01.pod03.*").unwrap(),
            attrs::DEVICE_STATUS,
        )
        .unwrap()
        .values()
        .filter(|v| v.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE))
        .count();
    println!("devices flagged UNDER_MAINTENANCE: {flagged}");
    assert_eq!(flagged, 6);
}
