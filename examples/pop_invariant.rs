//! The paper's §2.3 reliability gap #3: cross-task conflicts.
//!
//! Two management tasks touch *non-overlapping* devices — one drains an
//! uplink switch in response to link flapping, the other drains the
//! remaining uplinks for maintenance — yet their composition disconnects
//! the whole pod (the paper's PoP-offload story).
//!
//! Occam's answer is region scoping: both tasks scope the *invariant
//! domain* (the pod's whole uplink group) rather than just the devices
//! they mutate. The regions then overlap, the tasks serialize, and the
//! second task re-validates redundancy under the lock and aborts instead
//! of blacking out the pod.
//!
//! Run with: `cargo run --example pop_invariant`

use occam::emunet::FlowClass;
use occam::netdb::attrs;
use occam::{TaskError, TaskState};

/// Runs the scenario; returns (ticks with no path for the pod's traffic,
/// state of the maintenance task).
fn scenario(invariant_scoped: bool) -> (usize, TaskState) {
    let (runtime, ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&runtime);
    // The pod's user traffic leaves via its aggregation uplinks.
    let flow = {
        let net = svc.net();
        let mut guard = net.lock();
        guard.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[3][0][0],
            60.0,
            FlowClass::Background,
        )
    };

    // Scopes: naive tasks lock exactly the devices they touch; disciplined
    // tasks lock the whole uplink group.
    let flap_scope = if invariant_scoped {
        "dc01.pod00.agg*"
    } else {
        "dc01.pod00.agg00"
    };
    let maint_scope = if invariant_scoped {
        "dc01.pod00.agg*"
    } else {
        "dc01.pod00.agg01|dc01\\.pod00\\.agg02"
    };

    let rt1 = runtime.clone();
    let h1 = rt1.task("flap_response").spawn(move |ctx| {
        let uplinks = if flap_scope.contains('|') {
            ctx.network_regex(flap_scope)?
        } else {
            ctx.network(flap_scope)?
        };
        // Check redundancy before draining agg00: the *other* uplinks must
        // still be serving.
        let statuses = uplinks.get(attrs::DEVICE_STATUS)?;
        let healthy_others = statuses
            .iter()
            .filter(|(d, v)| {
                d.as_str() != "dc01.pod00.agg00" && v.as_str() == Some(attrs::STATUS_ACTIVE)
            })
            .count();
        if invariant_scoped && healthy_others < 1 {
            return Err(TaskError::Failed("no redundant uplink left".into()));
        }
        let agg00 = ctx.network("dc01.pod00.agg00")?;
        agg00.set(attrs::DEVICE_STATUS, attrs::STATUS_DRAINED.into())?;
        agg00.apply("f_drain")?;
        ctx.runtime().service().advance(3);
        std::thread::sleep(std::time::Duration::from_millis(60));
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(20));

    let rt2 = runtime.clone();
    let h2 = rt2.task("uplink_maintenance").spawn(move |ctx| {
        let scope = if maint_scope.contains('|') {
            ctx.network_regex(maint_scope)?
        } else {
            ctx.network(maint_scope)?
        };
        if invariant_scoped {
            // Under the group lock: how many uplinks would remain serving
            // if we drain agg01 and agg02?
            let statuses = scope.get(attrs::DEVICE_STATUS)?;
            let serving_after = statuses
                .iter()
                .filter(|(d, v)| {
                    !d.ends_with("agg01")
                        && !d.ends_with("agg02")
                        && v.as_str() == Some(attrs::STATUS_ACTIVE)
                })
                .count();
            if serving_after == 0 {
                return Err(TaskError::Failed(
                    "maintenance would disconnect the pod".into(),
                ));
            }
            let targets = ctx.network_regex(r"dc01\.pod00\.agg0[1-2]")?;
            targets.set(attrs::DEVICE_STATUS, attrs::STATUS_DRAINED.into())?;
            targets.apply("f_drain")?;
        } else {
            scope.set(attrs::DEVICE_STATUS, attrs::STATUS_DRAINED.into())?;
            scope.apply("f_drain")?;
        }
        ctx.runtime().service().advance(3);
        Ok(())
    });

    let _r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    occam::emunet::DeviceService::advance(svc, 3);

    let net = svc.net();
    let guard = net.lock();
    let no_path = guard
        .history()
        .iter()
        .filter(|s| {
            matches!(
                s.flow_rate.get(&flow),
                Some((occam::emunet::Delivery::NoPath, _))
            )
        })
        .count();
    (no_path, r2.state)
}

fn main() {
    let (naive_outage, naive_state) = scenario(false);
    let (scoped_outage, scoped_state) = scenario(true);
    println!("pod-disconnected ticks:");
    println!("  naive device scoping:    {naive_outage} (maintenance task: {naive_state:?})");
    println!("  invariant-domain scoping: {scoped_outage} (maintenance task: {scoped_state:?})");
    assert!(
        naive_outage > 0,
        "composing the naive tasks must disconnect the pod"
    );
    assert_eq!(
        scoped_outage, 0,
        "group-scoped tasks keep the pod reachable"
    );
    assert_eq!(
        scoped_state,
        TaskState::Aborted,
        "the maintenance task detects the invariant violation and aborts"
    );
}
