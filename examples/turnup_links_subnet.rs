//! Dynamic object creation: the paper's second example program (§3.3).
//!
//! Queries link status across a region, dynamically scopes a new network
//! object containing exactly the devices whose links are not yet up, turns
//! those links up in the database, and pushes the configuration.
//!
//! Run with: `cargo run --example turnup_links_subnet`

use occam::netdb::attrs;
use occam::TaskState;
use std::collections::BTreeSet;

fn main() {
    let (runtime, ft) = occam::emulated_deployment(1, 6);

    // Simulate a partially-provisioned pod: mark a few links DOWN in the
    // database and in the emulated network.
    let db = runtime.db();
    let svc = occam::emu_service(&runtime);
    {
        let scope = occam::regex::Pattern::from_glob("dc01.pod02.*").unwrap();
        let links = db.links_touching(&scope).unwrap();
        let net = svc.net();
        let mut guard = net.lock();
        for (a, z) in links.iter().take(4) {
            db.set_link_attr(a, z, attrs::LINK_STATUS, attrs::DOWN.into())
                .unwrap();
            let ia = guard.device_by_name(a).unwrap();
            let iz = guard.device_by_name(z).unwrap();
            if let Some(l) = guard.link_between(ia, iz) {
                guard.set_link(l, false);
            }
        }
    }

    let report = runtime.task("turnup_links_subnet").run(|ctx| {
        // turnup_links_subnet.occam, line for line:
        let net = ctx.network("dc01.*")?;
        let link_status = net.get_links(attrs::LINK_STATUS)?;
        let mut dev_names: BTreeSet<String> = BTreeSet::new();
        for ((a_end, z_end), s) in &link_status {
            if s.as_str() != Some(attrs::UP) {
                dev_names.insert(a_end.clone());
                dev_names.insert(z_end.clone());
            }
        }
        let dev_names: Vec<String> = dev_names.into_iter().collect();
        println!("devices with down links: {dev_names:?}");
        let subnet = ctx.network_of_devices(&dev_names)?;
        subnet.set_links(attrs::LINK_STATUS, attrs::UP.into())?;
        subnet.apply("f_turnup_link")?;
        subnet.apply("f_push")?;
        net.close();
        subnet.close();
        Ok(())
    });

    println!("task `{}` -> {:?}", report.name, report.state);
    assert_eq!(report.state, TaskState::Completed);

    // Every database link is UP again...
    let scope = occam::regex::Pattern::from_glob("dc01.*").unwrap();
    let down = db
        .get_link_attr(&scope, attrs::LINK_STATUS)
        .unwrap()
        .values()
        .filter(|v| v.as_str() == Some(attrs::DOWN))
        .count();
    println!("links still DOWN in database: {down}");
    assert_eq!(down, 0);

    // ...and physically up in the emulator.
    let net = svc.net();
    let guard = net.lock();
    let phys_down = ft
        .topo
        .links()
        .filter(|&(l, _)| !guard.link_is_up(l))
        .count();
    println!("links still down in emulator: {phys_down}");
    assert_eq!(phys_down, 0);
}
