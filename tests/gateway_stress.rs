//! Gateway service stress tests: many concurrent TCP clients driving
//! overlapping catalog workflows through the admission-controlled
//! engine. Verifies that every accepted submission reaches a terminal
//! phase within a wall-clock budget (no deadlock, no lost tickets), that
//! the worker pool stays bounded, and that the final database state is
//! consistent with *some* serial order of the committed workflows.

use occam::gateway::{Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply, WirePhase};
use occam::netdb::attrs;
use occam::regex::Pattern;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Wall-clock budget for a stress run; exceeding it means a hang.
const BUDGET: Duration = Duration::from_secs(60);

fn start_gateway(pool_size: usize, queue_cap: usize) -> (GatewayServer, String) {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let engine = Engine::new(
        rt,
        EngineConfig {
            pool_size,
            queue_cap,
            retry_after_ms: 2,
            ..EngineConfig::default()
        },
    );
    let server = GatewayServer::start(engine, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Submits until accepted, honoring Busy retry hints. Panics on typed
/// rejection (the stress workloads are always valid).
fn submit_retrying(
    client: &mut GatewayClient,
    workflow: &str,
    scope: &str,
    urgent: bool,
    params: &[(String, String)],
    start: Instant,
) -> u64 {
    loop {
        assert!(start.elapsed() < BUDGET, "submission starved past budget");
        match client
            .submit(workflow, scope, urgent, params)
            .expect("submit")
        {
            SubmitReply::Accepted(t) => return t,
            SubmitReply::Busy(ms) => std::thread::sleep(Duration::from_millis(ms.max(1))),
            SubmitReply::Rejected(code, msg) => panic!("rejected: {code:?} {msg}"),
        }
    }
}

fn wait_terminal(client: &mut GatewayClient, ticket: u64, start: Instant) -> (WirePhase, String) {
    loop {
        assert!(
            start.elapsed() < BUDGET,
            "ticket {ticket} not terminal within budget (deadlock or lost task)"
        );
        let (phase, detail) = client.status(ticket).expect("status");
        if phase.is_terminal() {
            return (phase, detail);
        }
        assert_ne!(phase, WirePhase::Unknown, "ticket {ticket} vanished");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// 12 clients × 6 workflows over overlapping pod scopes, mixing every
/// catalog entry. Every accepted ticket goes terminal, nothing is lost,
/// the pool stays bounded, and maintenance workflows leave their pods
/// ACTIVE again.
#[test]
fn concurrent_clients_mixed_workflows_all_terminate() {
    const CLIENTS: usize = 12;
    const PER_CLIENT: usize = 6;
    let (mut server, addr) = start_gateway(4, 16);
    let start = Instant::now();

    let results: Vec<(String, WirePhase, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = GatewayClient::connect(&addr).expect("connect");
                    let mut tickets = Vec::new();
                    for i in 0..PER_CLIENT {
                        let n = c * PER_CLIENT + i;
                        let pod = n % 6;
                        let scope = format!("dc01.pod{pod:02}.*");
                        let (wf, params): (&str, Vec<(String, String)>) = match n % 4 {
                            0 => ("device_maintenance", vec![]),
                            1 => (
                                "firmware_upgrade",
                                vec![("version".into(), format!("fw-9.{n}"))],
                            ),
                            2 => (
                                "config_push",
                                vec![("generation".into(), format!("gen-{n}"))],
                            ),
                            _ => ("status_audit", vec![]),
                        };
                        let urgent = n.is_multiple_of(7);
                        let t = submit_retrying(&mut client, wf, &scope, urgent, &params, start);
                        tickets.push((wf.to_string(), t));
                    }
                    tickets
                        .into_iter()
                        .map(|(wf, t)| {
                            let (phase, detail) = wait_terminal(&mut client, t, start);
                            (wf, phase, detail)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(results.len(), CLIENTS * PER_CLIENT);
    for (wf, phase, detail) in &results {
        // Catalog workflows take a single region each, so deadlock aborts
        // are impossible; the only legal terminal phase is Completed.
        assert_eq!(
            *phase,
            WirePhase::Completed,
            "workflow {wf} ended {phase:?}: {detail}"
        );
    }

    let stats = server.engine().runtime().pool_stats();
    assert!(
        stats.spawned <= 4,
        "worker pool exceeded bound: spawned {}",
        stats.spawned
    );
    let reg = server.engine().runtime().obs().clone();
    assert_eq!(
        reg.counter_value("gateway.tasks.completed"),
        (CLIENTS * PER_CLIENT) as u64
    );

    // Maintenance/upgrade workflows restore ACTIVE on exit and
    // config_push does not touch status, so after quiescence every
    // switch must be ACTIVE again.
    server.shutdown();
    let db = server.engine().runtime().db().clone();
    let statuses = db
        .get_attr(&Pattern::from_glob("dc01.*").unwrap(), attrs::DEVICE_STATUS)
        .unwrap();
    for (dev, v) in &statuses {
        assert_eq!(
            v.as_str(),
            Some(attrs::STATUS_ACTIVE),
            "device {dev} left in {v:?}"
        );
    }
}

/// Serialization invariant: concurrent `config_push` workflows over
/// whole-pod scopes are strict-2PL transactions, so each pod's final
/// CONFIG_VERSION must be (a) uniform across the pod's devices and
/// (b) one of the submitted generations — i.e. the outcome of *some*
/// serial order of the committed pushes.
#[test]
fn config_push_storm_serializes_per_pod() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;
    let (mut server, addr) = start_gateway(6, 12);
    let start = Instant::now();

    let submitted: Vec<(u32, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = GatewayClient::connect(&addr).expect("connect");
                    let mut mine = Vec::new();
                    let mut tickets = Vec::new();
                    for r in 0..ROUNDS {
                        // Every client hammers two pods so writes overlap.
                        let pod = ((c + r) % 3) as u32;
                        let generation = format!("gen-c{c}r{r}");
                        let scope = format!("dc01.pod{pod:02}.*");
                        let t = submit_retrying(
                            &mut client,
                            "config_push",
                            &scope,
                            false,
                            &[("generation".into(), generation.clone())],
                            start,
                        );
                        tickets.push(t);
                        mine.push((pod, generation));
                    }
                    for t in tickets {
                        let (phase, detail) = wait_terminal(&mut client, t, start);
                        assert_eq!(phase, WirePhase::Completed, "{detail}");
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    server.shutdown();
    let db = server.engine().runtime().db().clone();

    let mut per_pod: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (pod, generation) in &submitted {
        per_pod.entry(*pod).or_default().insert(generation.clone());
    }
    for (pod, generations) in &per_pod {
        let scope = Pattern::from_glob(&format!("dc01.pod{pod:02}.*")).unwrap();
        let values = db.get_attr(&scope, "CONFIG_VERSION").unwrap();
        assert!(!values.is_empty(), "pod{pod:02} has no CONFIG_VERSION");
        let distinct: BTreeSet<&str> = values.values().filter_map(|v| v.as_str()).collect();
        assert_eq!(
            distinct.len(),
            1,
            "pod{pod:02} devices disagree on CONFIG_VERSION: {distinct:?} \
             (atomicity violation — a push was interleaved)"
        );
        let winner = distinct.iter().next().unwrap().to_string();
        assert!(
            generations.contains(&winner),
            "pod{pod:02} final CONFIG_VERSION {winner:?} was never submitted"
        );
    }
}

/// Cancellation storm: queued and running workflows are cancelled
/// mid-flight; every ticket still reaches a terminal phase and the
/// service keeps accepting work afterwards.
#[test]
fn cancellation_storm_leaves_service_healthy() {
    let (mut server, addr) = start_gateway(2, 24);
    let start = Instant::now();
    let mut client = GatewayClient::connect(&addr).expect("connect");

    let mut tickets = Vec::new();
    for n in 0..24 {
        let pod = n % 6;
        let t = submit_retrying(
            &mut client,
            "device_maintenance",
            &format!("dc01.pod{pod:02}.*"),
            false,
            &[],
            start,
        );
        tickets.push(t);
    }
    // Cancel every other ticket while the backlog is still draining.
    for t in tickets.iter().skip(1).step_by(2) {
        let _ = client.cancel(*t).expect("cancel roundtrip");
    }
    let mut cancelled = 0;
    for t in &tickets {
        let (phase, detail) = wait_terminal(&mut client, *t, start);
        match phase {
            WirePhase::Completed => {}
            WirePhase::Cancelled => cancelled += 1,
            other => panic!("ticket {t} ended {other:?}: {detail}"),
        }
    }
    // The storm raced real execution, so the exact count is not fixed —
    // but the engine must have registered every request.
    let reg = server.engine().runtime().obs().clone();
    assert_eq!(reg.counter_value("gateway.cancel.requests"), 12);
    assert_eq!(reg.counter_value("gateway.tasks.cancelled"), cancelled);

    // Service is still healthy: a fresh workflow completes.
    let t = submit_retrying(&mut client, "drain", "dc01.pod00.*", true, &[], start);
    let (phase, detail) = wait_terminal(&mut client, t, start);
    assert_eq!(phase, WirePhase::Completed, "{detail}");
    server.shutdown();
}
