//! The paper's §2.3 motivating example #1: a network migration task that
//! logically deletes devices and later inserts replacements. Task-level
//! isolation must hide the intermediate "devices missing" state from
//! concurrent tasks (a traffic-engineering reader must never observe it),
//! and a mid-migration failure must roll back to the original inventory.

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::regex::Pattern;
use occam::{execute_rollback, TaskError, TaskState};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const OLD_DEV: &str = "dc01.pod02.tor00";
const NEW_DEV: &str = "dc01.pod02.tor90";

#[test]
fn migration_commits_atomically() {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let report = rt.task("migration").run(|ctx| {
        let pod = ctx.network("dc01.pod02.*")?;
        pod.remove_device(OLD_DEV)?;
        pod.insert_device(
            NEW_DEV,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )?;
        pod.close();
        Ok(())
    });
    assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
    assert!(!rt.db().device_exists(OLD_DEV).unwrap());
    assert!(rt.db().device_exists(NEW_DEV).unwrap());
}

#[test]
fn intermediate_state_is_invisible_to_concurrent_readers() {
    // The exact hazard from the paper: a traffic-engineering task that
    // reads the pod mid-migration would see the old device logically gone
    // and trigger disruptive rerouting. With Occam, the reader serializes
    // after the migration commits and always sees a complete inventory.
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let baseline = rt
        .db()
        .select_devices(&Pattern::from_glob("dc01.pod02.*").unwrap())
        .unwrap()
        .len();
    let saw_partial = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    let rt1 = rt.clone();
    let migration = rt1.task("migration").spawn(move |ctx| {
        let pod = ctx.network("dc01.pod02.*")?;
        pod.remove_device(OLD_DEV)?;
        // A long gap between delete and insert: the dangerous window.
        std::thread::sleep(std::time::Duration::from_millis(120));
        pod.insert_device(
            NEW_DEV,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )?;
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    for i in 0..4 {
        let rt = rt.clone();
        let saw = Arc::clone(&saw_partial);
        readers.push(rt.clone().task(format!("te_reader{i}")).spawn(move |ctx| {
            let pod = ctx.network_read("dc01.pod02.*")?;
            let n = pod.devices()?.len();
            if n < baseline {
                saw.store(true, Ordering::SeqCst);
            }
            Ok(())
        }));
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    assert_eq!(migration.join().unwrap().state, TaskState::Completed);
    for r in readers {
        assert_eq!(r.join().unwrap().state, TaskState::Completed);
    }
    assert!(
        !saw_partial.load(Ordering::SeqCst),
        "a reader observed the mid-migration inventory"
    );
}

#[test]
fn failed_migration_rolls_back_to_original_inventory() {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&rt);
    let before = rt.db().snapshot();
    let report = rt.task("migration").run(|ctx| {
        let pod = ctx.network("dc01.pod02.*")?;
        pod.remove_device(OLD_DEV)?;
        pod.insert_device(
            NEW_DEV,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )?;
        // Pushing the new fabric config fails (e.g. the replacement is not
        // racked yet).
        Err(TaskError::Failed("replacement device unreachable".into()))
    });
    assert_eq!(report.state, TaskState::Aborted);
    let plan = report.rollback.as_ref().expect("plan");
    assert_eq!(plan.arrow_notation(), "r(DB_CHANGE) -> r(DB_CHANGE)");
    execute_rollback(&report, rt.db(), svc).unwrap();
    // Original inventory restored, including the old device's links.
    assert_eq!(rt.db().snapshot(), before);
}

#[test]
fn insert_outside_scope_is_rejected() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt.task("bad_insert").run(|ctx| {
        let pod = ctx.network("dc01.pod01.*")?;
        pod.insert_device("dc01.pod02.sw99", vec![])
    });
    assert_eq!(report.state, TaskState::Aborted);
    assert!(matches!(report.error, Some(TaskError::Failed(_))));
    // Nothing was written.
    assert!(!rt.db().device_exists("dc01.pod02.sw99").unwrap());
}

#[test]
fn symbolic_region_covers_devices_added_later() {
    // Paper §3.1: `network(dc1.*)` is symbolic — it covers devices being
    // added by an ongoing task. A writer to the pod must wait for the
    // migration even though the new device did not exist when it locked.
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let rt1 = rt.clone();
    let h = rt1.task("migration").spawn(|ctx| {
        let pod = ctx.network("dc01.pod02.*")?;
        pod.insert_device(NEW_DEV, vec![])?;
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Still inside the transaction: configure the new device.
        let fresh = ctx.network_of_devices(&[NEW_DEV])?;
        fresh.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        // The emulated fabric has no such physical switch, so the push is
        // expected to fail at the device layer; the logical write above is
        // what this test observes.
        if let Err(e) = fresh.apply_with("f_push", &FuncArgs::none()) {
            assert!(matches!(e, TaskError::Device(_)), "{e}");
        }
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    // This writer names the new device explicitly; its scope is inside
    // dc01.pod02.* so it must serialize behind the migration.
    let report = rt.task("configure_new").run(|ctx| {
        let dev = ctx.network_of_devices(&[NEW_DEV])?;
        let status = dev.get(attrs::DEVICE_STATUS)?;
        // By the time we run, the migration has committed: the device
        // exists and is ACTIVE.
        assert_eq!(
            status.get(NEW_DEV).and_then(|v| v.as_str()),
            Some(attrs::STATUS_ACTIVE)
        );
        Ok(())
    });
    assert_eq!(h.join().unwrap().state, TaskState::Completed);
    assert_eq!(report.state, TaskState::Completed);
}

#[test]
fn rollback_after_insert_and_push_handles_deleted_target() {
    // The task inserts a (logical-only) device, writes firmware, and tries
    // to push — which fails at the device layer because the replacement has
    // no physical switch yet. The log therefore ends in a *broken*
    // cfg_change, so the plan is pure DB reverts (no re-push to a row the
    // first revert deletes), and executing it restores the exact snapshot.
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&rt);
    let before = rt.db().snapshot();
    let report = rt.task("insert_push_fail").run(|ctx| {
        let pod = ctx.network("dc01.pod03.*")?;
        pod.insert_device(NEW_POD3_DEV, vec![])?;
        pod.set(attrs::FIRMWARE_VERSION, "fw-3".into())?;
        pod.apply_with("f_push", &FuncArgs::one("admin", "active"))?;
        Err(TaskError::Failed("later step failed".into()))
    });
    assert_eq!(report.state, TaskState::Aborted);
    let result = occam::execute_rollback(&report, rt.db(), svc);
    assert!(
        result.is_ok(),
        "rollback must tolerate re-pushing around the deleted insert: {result:?}"
    );
    assert_eq!(rt.db().snapshot(), before);
}

const NEW_POD3_DEV: &str = "dc01.pod03.tor77";
