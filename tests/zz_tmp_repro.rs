//! TEMPORARY diagnostic for review — deleted before merge.
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    SetStatus(u8),
    SetFirmware(u8),
    Push,
    Testing(u8),
    Offline(Vec<Step>),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Step::SetStatus),
        (0u8..3).prop_map(Step::SetFirmware),
        (0u8..3).prop_map(Step::Testing),
        Just(Step::Push),
    ];
    let step = leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            3 => inner.clone(),
            1 => proptest::collection::vec(inner, 1..3).prop_map(Step::Offline),
        ]
    });
    proptest::collection::vec(step, 1..5)
}

const FUNCS: &[&str] = &[
    "f_push",
    "f_drain",
    "f_undrain",
    "f_alloc_ip",
    "f_dealloc_ip",
    "f_ping_test",
];

#[test]
fn reproduce_case() {
    let strat = (arb_steps(), 0usize..FUNCS.len(), 0u64..4);
    let mut rng = proptest::TestRng::seed_from_u64(0x3e4a9ff755adb0ad);
    let (steps, func_idx, nth) = Strategy::generate(&strat, &mut rng);
    eprintln!("steps = {steps:?}");
    eprintln!("func = {} nth = {}", FUNCS[func_idx], nth);
}
