//! Workspace-level stress test for mixed-isolation execution: optimistic
//! and pessimistic writers racing one contended row must lose no updates
//! (DESIGN.md §16 commit-time locking), with the online serializability
//! certifier attached as an independent oracle over the whole history.

use occam::netdb::{attrs, AttrValue};
use occam::{Isolation, TaskState};
use std::sync::Arc;

const COUNTER: &str = "STRESS_COUNT";

#[test]
fn mixed_isolation_increments_lose_nothing_and_certify_acyclic() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let cert = Arc::new(occam::cert::Certifier::with_obs(rt.obs()));
    rt.attach_certifier(Arc::clone(&cert));

    const WRITERS: u32 = 4;
    const INCREMENTS: u32 = 10;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let rt = rt.clone();
            s.spawn(move || {
                // Even writers are optimistic (validation conflicts retry,
                // then fall back to 2PL); odd writers hold exclusive locks.
                let isolation = if w % 2 == 0 {
                    Isolation::Occ { max_retries: 8 }
                } else {
                    Isolation::TwoPl
                };
                for i in 0..INCREMENTS {
                    let report =
                        rt.task(&format!("inc.w{w}.{i}"))
                            .isolation(isolation)
                            .run(|ctx| {
                                let net = ctx.network("dc01.pod00.tor00")?;
                                let current = net
                                    .get(COUNTER)?
                                    .get("dc01.pod00.tor00")
                                    .and_then(AttrValue::as_int)
                                    .unwrap_or(0);
                                net.set(COUNTER, AttrValue::from(current + 1))?;
                                Ok(())
                            });
                    assert_eq!(report.state, TaskState::Completed);
                }
            });
        }
    });

    let total = i64::from(WRITERS * INCREMENTS);
    let pat = occam::regex::Pattern::from_glob("dc01.pod00.tor00").unwrap();
    let finl = rt
        .db()
        .read_view()
        .get_attr(&pat, COUNTER)
        .get("dc01.pod00.tor00")
        .and_then(AttrValue::as_int)
        .unwrap_or(0);
    assert_eq!(finl, total, "lost updates across mixed isolation modes");
    assert_eq!(cert.committed(), u64::from(WRITERS * INCREMENTS));
    assert!(
        cert.is_acyclic(),
        "history not serializable: {:?}",
        cert.first_violation()
    );
    assert_eq!(cert.violations(), 0);
    rt.detach_certifier();
}

#[test]
fn occ_fallback_preserves_every_update() {
    // An optimistic task that must fall back (it applies a device
    // function) still lands both its database write and its RPC; the
    // fallback is invisible except in the counters.
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt
        .task("drain_pod")
        .isolation(Isolation::Occ { max_retries: 3 })
        .run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            net.apply("f_drain")?;
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(rt.obs().counter_value("core.occ.fallbacks"), 1);
    assert_eq!(rt.obs().counter_value("core.occ.commits"), 0);
    let pat = occam::regex::Pattern::from_glob("dc01.pod00.*").unwrap();
    for (name, v) in rt.db().read_view().get_attr(&pat, attrs::DEVICE_STATUS) {
        assert_eq!(
            v.as_str(),
            Some(attrs::STATUS_UNDER_MAINTENANCE),
            "{name} missed the fallback's write"
        );
    }
}
