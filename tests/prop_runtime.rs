//! Property-based end-to-end test: random management programs with a
//! random injected failure always (a) abort cleanly, (b) produce a
//! grammar-valid rollback plan, and (c) executing the plan restores the
//! database snapshot and basic device hygiene.
//!
//! This is the crown-jewel invariant of the paper's §6: semantic rollback
//! is correct at *every* failure point of *any* well-formed task.

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::{execute_rollback, TaskResult, TaskState};
use proptest::prelude::*;

/// One step of a random (grammar-valid) management program.
#[derive(Clone, Debug)]
enum Step {
    SetStatus(u8),
    SetFirmware(u8),
    Push,
    Testing(u8), // number of tests inside a prepare/unprepare block
    Offline(Vec<Step>),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Step::SetStatus),
        (0u8..3).prop_map(Step::SetFirmware),
        (0u8..3).prop_map(Step::Testing),
        Just(Step::Push),
    ];
    // cfg_change shape: db writes must be followed by a push to stay in
    // grammar; we emit Set* then Push pairs via post-processing below.
    let step = leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            3 => inner.clone(),
            1 => proptest::collection::vec(inner, 1..3).prop_map(Step::Offline),
        ]
    });
    proptest::collection::vec(step, 1..5)
}

/// Runs the steps against a network object; inserts the grammar-required
/// `f_push` after each run of DB writes.
fn run_steps(net: &occam::Network<'_>, steps: &[Step]) -> TaskResult<()> {
    let mut pending_db = false;
    for s in steps {
        match s {
            Step::SetStatus(v) => {
                net.set(attrs::DEVICE_STATUS, format!("STATE_{v}").into())?;
                pending_db = true;
            }
            Step::SetFirmware(v) => {
                net.set(attrs::FIRMWARE_VERSION, format!("fw-{v}").into())?;
                pending_db = true;
            }
            Step::Push => {
                net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
                pending_db = false;
            }
            Step::Testing(n) => {
                if pending_db {
                    net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
                    pending_db = false;
                }
                net.apply("f_alloc_ip")?;
                for _ in 0..*n {
                    net.apply("f_ping_test")?;
                }
                net.apply("f_dealloc_ip")?;
            }
            Step::Offline(inner) => {
                if pending_db {
                    net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
                    pending_db = false;
                }
                net.apply("f_drain")?;
                run_steps(net, inner)?;
                net.apply("f_undrain")?;
            }
        }
    }
    if pending_db {
        net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
    }
    Ok(())
}

/// The injectable device functions, to spread the failure across kinds.
const FUNCS: &[&str] = &[
    "f_push",
    "f_drain",
    "f_undrain",
    "f_alloc_ip",
    "f_dealloc_ip",
    "f_ping_test",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_recover_from_any_injected_failure(
        steps in arb_steps(),
        func_idx in 0usize..FUNCS.len(),
        nth in 0u64..4,
    ) {
        let (rt, _ft) = occam::emulated_deployment(1, 4);
        let svc = occam::emu_service(&rt);
        let before = rt.db().snapshot();
        let func = FUNCS[func_idx];
        svc.library().fail_at(func, nth);
        let steps2 = steps.clone();
        let report = rt.task("random_program").run(move |ctx| {
            let net = ctx.network("dc01.pod01.tor00")?;
            run_steps(&net, &steps2)?;
            Ok(())
        });
        svc.library().clear_faults();
        match report.state {
            TaskState::Completed => {
                // The injected ordinal was never reached: program ran
                // clean; nothing further to check here.
            }
            TaskState::Aborted => {
                prop_assert!(
                    report.rollback.is_some(),
                    "aborted without a plan: {:?} (log {:?})",
                    report.rollback_error,
                    report.log
                );
                execute_rollback(&report, rt.db(), svc)
                    .map_err(|e| TestCaseError::fail(format!("rollback failed: {e}")))?;
                // Database byte-identical to the pre-task snapshot.
                prop_assert_eq!(rt.db().snapshot(), before);
                // Device hygiene: undrained, no test environment left.
                let net = svc.net();
                let guard = net.lock();
                let id = guard.device_by_name("dc01.pod01.tor00").unwrap();
                let sw = guard.switch(id).unwrap();
                prop_assert!(!sw.drained, "device left drained");
                prop_assert!(sw.test_ip.is_none(), "test IP leaked");
            }
            other => return Err(TestCaseError::fail(format!("state {other:?}"))),
        }
        // Lock hygiene regardless of outcome.
        prop_assert_eq!(rt.active_objects(), 0);
    }

    /// Programs with no injected failure always complete, and the tree
    /// drains.
    #[test]
    fn random_programs_complete_without_faults(steps in arb_steps()) {
        let (rt, _ft) = occam::emulated_deployment(1, 4);
        let report = rt.task("random_program").run(move |ctx| {
            let net = ctx.network("dc01.pod01.tor00")?;
            run_steps(&net, &steps)?;
            Ok(())
        });
        prop_assert_eq!(report.state, TaskState::Completed);
        prop_assert_eq!(rt.active_objects(), 0);
        // The log of a completed task parses as a *non-failure* pattern.
        let tree = occam::rollback::parse_log(&report.log)
            .map_err(|e| TestCaseError::fail(format!("completed log unparseable: {e}")))?;
        prop_assert!(!tree.is_failure(), "completed log matched a failure pattern");
    }
}
