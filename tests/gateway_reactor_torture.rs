//! Reactor torture test: 1024+ concurrent connections mixing three
//! adversarial client populations against one sharded epoll gateway:
//!
//! - **full-pipe writers** — pipelined SUBMIT batches back to back,
//!   the throughput path;
//! - **trickle writers** — one byte per tick across the whole frame,
//!   the resumable-`FrameReader` path (a frame arrives over ~40
//!   readiness events);
//! - **mid-frame disconnecters** — write half a frame and vanish, the
//!   teardown path.
//!
//! Asserts the reactor invariants: no desync (every well-behaved client
//! reads exactly the responses for its requests, in order), no slot
//! leak (`conn.opened == conn.closed` after shutdown), no lost ticket
//! (every accepted submission reaches a terminal phase), and no job
//! record created from a partial frame.

use occam::gateway::{
    Engine, EngineConfig, GatewayClient, GatewayServer, Request, Response, SubmitReply, SubmitSpec,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Wall-clock budget; exceeding it means a hang.
const BUDGET: Duration = Duration::from_secs(60);

const FULL_PIPE_CONNS: usize = 512;
const FULL_PIPE_BATCH: usize = 4;
const TRICKLE_CONNS: usize = 256;
const VANISH_CONNS: usize = 256;

/// Length-prefixed wire frame for one request.
fn frame(req: &Request) -> Vec<u8> {
    let body = req.encode();
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
    wire.extend_from_slice(&body);
    wire
}

fn submit_req(pod: usize) -> Request {
    Request::Submit {
        workflow: "status_audit".into(),
        scope: format!("dc01.pod{:02}.*", pod % 6),
        urgent: false,
        params: vec![],
    }
}

/// Reads one length-prefixed frame (blocking).
fn read_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("frame length");
    let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
    stream.read_exact(&mut body).expect("frame body");
    body
}

#[test]
fn torture_1024_conns_trickle_vanish_full_pipe() {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let engine = Engine::new(
        rt,
        EngineConfig {
            pool_size: 2,
            queue_cap: 8192,
            terminal_retain: 16_384,
            ..EngineConfig::default()
        },
    );
    let mut server = GatewayServer::start(engine, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let reg = server.engine().runtime().obs().clone();
    let start = Instant::now();

    let tickets: Vec<u64> = std::thread::scope(|s| {
        // Population 1: full-pipe writers, 4 driver threads multiplexing
        // 128 pipelined connections each.
        let full_pipe: Vec<_> = (0..4)
            .map(|d| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut clients: Vec<GatewayClient> = (0..FULL_PIPE_CONNS / 4)
                        .map(|_| GatewayClient::connect(&addr).expect("connect"))
                        .collect();
                    let specs: Vec<SubmitSpec> = (0..FULL_PIPE_BATCH)
                        .map(|j| SubmitSpec {
                            workflow: "status_audit".into(),
                            scope: format!("dc01.pod{:02}.*", (d + j) % 6),
                            urgent: false,
                            params: vec![],
                        })
                        .collect();
                    let mut tickets = Vec::new();
                    for client in clients.iter_mut() {
                        assert!(start.elapsed() < BUDGET, "full-pipe starved");
                        let mut remaining = FULL_PIPE_BATCH;
                        while remaining > 0 {
                            for reply in client
                                .submit_batch(&specs[..remaining])
                                .expect("pipelined submit")
                            {
                                match reply {
                                    SubmitReply::Accepted(t) => {
                                        tickets.push(t);
                                        remaining -= 1;
                                    }
                                    SubmitReply::Busy(_) => {}
                                    SubmitReply::Rejected(code, msg) => {
                                        panic!("rejected: {code:?} {msg}")
                                    }
                                }
                            }
                        }
                    }
                    tickets
                })
            })
            .collect();

        // Population 2: trickle writers — 256 raw sockets, one byte per
        // sweep, round-robin, so every frame needs ~40 readiness events
        // and the partial state must survive each one.
        let trickle = {
            let addr = addr.clone();
            s.spawn(move || {
                let mut streams: Vec<TcpStream> = (0..TRICKLE_CONNS)
                    .map(|_| {
                        let s = TcpStream::connect(&addr).expect("connect");
                        s.set_nodelay(true).unwrap();
                        s
                    })
                    .collect();
                let wires: Vec<Vec<u8>> =
                    (0..TRICKLE_CONNS).map(|i| frame(&submit_req(i))).collect();
                let max_len = wires.iter().map(Vec::len).max().unwrap();
                for pos in 0..max_len {
                    assert!(start.elapsed() < BUDGET, "trickle starved");
                    for (stream, wire) in streams.iter_mut().zip(&wires) {
                        if let Some(&byte) = wire.get(pos) {
                            stream.write_all(&[byte]).expect("trickle byte");
                        }
                    }
                }
                // Every trickled frame is now complete; each connection
                // must get exactly one Accepted back (no desync).
                let mut tickets = Vec::with_capacity(TRICKLE_CONNS);
                for stream in streams.iter_mut() {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(20)))
                        .unwrap();
                    let body = read_frame(stream);
                    match Response::decode(&body).expect("decode response") {
                        Response::Accepted { ticket } => tickets.push(ticket),
                        other => panic!("trickle conn desynced: {other:?}"),
                    }
                }
                tickets
            })
        };

        // Population 3: mid-frame disconnecters — write a valid prefix
        // (length header plus half the body) and vanish. No job record,
        // no protocol error, no leaked slot may result.
        let vanish = {
            let addr = addr.clone();
            s.spawn(move || {
                for i in 0..VANISH_CONNS {
                    assert!(start.elapsed() < BUDGET, "vanish starved");
                    let mut stream = TcpStream::connect(&addr).expect("connect");
                    let wire = frame(&submit_req(i));
                    stream.write_all(&wire[..wire.len() / 2]).expect("half");
                    drop(stream);
                }
            })
        };

        vanish.join().unwrap();
        let mut tickets: Vec<u64> = Vec::new();
        for h in full_pipe {
            tickets.extend(h.join().unwrap());
        }
        tickets.extend(trickle.join().unwrap());
        tickets
    });

    // No lost ticket: every accepted submission reaches a terminal
    // phase within the budget.
    assert_eq!(
        tickets.len(),
        FULL_PIPE_CONNS * FULL_PIPE_BATCH + TRICKLE_CONNS
    );
    let engine = server.engine().clone();
    for &t in &tickets {
        loop {
            assert!(
                start.elapsed() < BUDGET,
                "ticket {t} not terminal within budget"
            );
            let (phase, _) = engine.status(t);
            assert_ne!(
                phase,
                occam::gateway::WirePhase::Unknown,
                "ticket {t} vanished"
            );
            if phase.is_terminal() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Partial frames never created a job record: accepted == tickets.
    assert_eq!(
        reg.counter_value("gateway.submit.accepted"),
        tickets.len() as u64
    );
    // A half-written frame is not a protocol error, just a vanished peer.
    assert_eq!(reg.counter_value("gateway.proto.errors"), 0);

    server.shutdown();
    // No slot leak: every opened connection was torn down exactly once.
    assert_eq!(
        reg.counter_value("gateway.conn.opened"),
        (FULL_PIPE_CONNS + TRICKLE_CONNS + VANISH_CONNS) as u64
    );
    assert_eq!(
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed"),
        "connection slot leak"
    );
}
