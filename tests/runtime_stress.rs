//! Stress tests: many concurrent Occam tasks over overlapping regions.
//! Verifies serializability effects, lock hygiene, and deadlock recovery
//! under real thread interleavings.

use occam::netdb::attrs;
use occam::regex::Pattern;
use occam::{TaskError, TaskState};
use std::sync::Arc;

#[test]
fn forty_conflicting_tasks_all_terminate_cleanly() {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let mut handles = Vec::new();
    for i in 0..40u32 {
        let rt = rt.clone();
        let scope = match i % 4 {
            0 => "dc01.pod00.*".to_string(),
            1 => "dc01.*".to_string(),
            2 => format!("dc01.pod0{}.*", i % 6),
            _ => format!("dc01.pod0{}.tor*", i % 6),
        };
        handles.push(rt.clone().task(format!("task{i}")).spawn(move |ctx| {
            if i % 5 == 0 {
                let net = ctx.network_read(&scope)?;
                let _ = net.get(attrs::DEVICE_STATUS)?;
            } else {
                let net = ctx.network(&scope)?;
                net.set("TOUCHED_BY", (i as i64).into())?;
            }
            Ok(())
        }));
    }
    let mut completed = 0;
    let mut deadlocked = 0;
    for h in handles {
        let r = h.join().unwrap();
        match r.state {
            TaskState::Completed => completed += 1,
            TaskState::Aborted => {
                assert!(
                    matches!(r.error, Some(TaskError::Deadlock)),
                    "only deadlock aborts expected: {:?}",
                    r.error
                );
                deadlocked += 1;
            }
            other => panic!("unexpected terminal state {other:?}"),
        }
    }
    assert_eq!(completed + deadlocked, 40);
    // Single-object tasks cannot deadlock: everything completes.
    assert_eq!(deadlocked, 0, "single-region tasks never cycle");
    // All locks and objects drained.
    assert_eq!(rt.active_objects(), 0);
}

#[test]
fn deadlock_victims_can_be_reexecuted_to_completion() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mk = |rt: occam::Runtime,
              first: &'static str,
              second: &'static str,
              b: Arc<std::sync::Barrier>| {
        rt.clone()
            .task(format!("{first}->{second}"))
            .spawn(move |ctx| {
                let _a = ctx.network(first)?;
                b.wait();
                let _b = ctx.network(second)?;
                Ok(())
            })
    };
    let h1 = mk(
        rt.clone(),
        "dc01.pod00.*",
        "dc01.pod01.*",
        Arc::clone(&barrier),
    );
    let h2 = mk(
        rt.clone(),
        "dc01.pod01.*",
        "dc01.pod00.*",
        Arc::clone(&barrier),
    );
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    let victims: Vec<&occam::TaskReport> = [&r1, &r2]
        .into_iter()
        .filter(|r| r.state == TaskState::Aborted)
        .collect();
    assert_eq!(victims.len(), 1, "exactly one victim");
    assert!(matches!(victims[0].error, Some(TaskError::Deadlock)));
    // Re-execute the victim's program: it now completes (paper: abort and
    // re-execute the task that caused the deadlock).
    let retry = rt.task("retry").run(|ctx| {
        let _a = ctx.network("dc01.pod00.*")?;
        let _b = ctx.network("dc01.pod01.*")?;
        Ok(())
    });
    assert_eq!(retry.state, TaskState::Completed);
    assert_eq!(rt.active_objects(), 0);
}

#[test]
fn mixed_read_write_storm_preserves_db_consistency() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let scope = Pattern::from_glob("dc01.pod00.*").unwrap();
    rt.db().set_attr(&scope, "GEN", 0i64.into()).unwrap();
    let mut handles = Vec::new();
    for i in 0..16u32 {
        let rt = rt.clone();
        handles.push(rt.clone().task(format!("w{i}")).spawn(move |ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            let vals = net.get("GEN")?;
            // All devices in the region must show the same generation:
            // torn writes would surface here.
            let set: std::collections::BTreeSet<i64> =
                vals.values().filter_map(|v| v.as_int()).collect();
            if set.len() != 1 {
                return Err(TaskError::Failed(format!("torn generations {set:?}")));
            }
            let g = set.into_iter().next().unwrap_or(0);
            net.set("GEN", (g + 1).into())?;
            Ok(())
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().state, TaskState::Completed);
    }
    let vals = rt.db().get_attr(&scope, "GEN").unwrap();
    let set: std::collections::BTreeSet<i64> = vals.values().filter_map(|v| v.as_int()).collect();
    assert_eq!(set.len(), 1);
    assert_eq!(set.into_iter().next(), Some(16));
}

#[test]
fn wal_replay_matches_after_concurrent_task_storm() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let mut handles = Vec::new();
    for i in 0..12u32 {
        let rt = rt.clone();
        handles.push(rt.clone().task(format!("s{i}")).spawn(move |ctx| {
            let net = ctx.network(&format!("dc01.pod0{}.*", i % 4))?;
            net.set("ROUND", (i as i64).into())?;
            net.set_links(occam::netdb::attrs::LINK_SPEED, 100i64.into())?;
            Ok(())
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().state, TaskState::Completed);
    }
    let replayed = occam::netdb::Store::replay(&rt.db().wal_records());
    assert_eq!(replayed, rt.db().snapshot());
}
