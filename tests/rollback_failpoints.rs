//! The §8.2 rollback experiment as an integration test: inject a failure
//! at *every* step of the firmware-upgrade task, generate the plan,
//! execute it, and verify the database returns to its pre-task snapshot
//! and the device ends undrained with no test environment.

use occam::emunet::FuncArgs;
use occam::netdb::attrs;
use occam::{execute_rollback, TaskResult, TaskState};

const TARGET: &str = "dc01.pod01.tor00";

/// The firmware-upgrade steps: (device function or DB write, fail label).
fn upgrade_program(ctx: &occam::TaskCtx) -> TaskResult<()> {
    let net = ctx.network(TARGET)?;
    net.apply("f_drain")?;
    net.set(attrs::FIRMWARE_VERSION, "fw-2.1.0".into())?;
    net.set(attrs::FIRMWARE_BINARY, "s3://fw/2.1.0.bin".into())?;
    net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
    net.apply("f_alloc_ip")?;
    net.apply("f_ping_test")?;
    net.apply("f_optic_test")?;
    net.apply("f_dealloc_ip")?;
    net.apply("f_undrain")?;
    Ok(())
}

/// Device functions in execution order (the injectable failure points).
const FUNC_STEPS: &[&str] = &[
    "f_drain",
    "f_push",
    "f_alloc_ip",
    "f_ping_test",
    "f_optic_test",
    "f_dealloc_ip",
    "f_undrain",
];

fn run_with_failure_at(func: &str) -> (occam::TaskReport, bool) {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&rt);
    let before_db = rt.db().snapshot();
    svc.library().fail_at(func, 0);
    let report = rt.task("firmware_upgrade").run(upgrade_program);
    assert_eq!(report.state, TaskState::Aborted, "failure at {func}");
    svc.library().clear_faults();
    execute_rollback(&report, rt.db(), svc)
        .unwrap_or_else(|e| panic!("rollback execution failed at {func}: {e}"));
    // Database restored exactly.
    let db_restored = rt.db().snapshot() == before_db;
    // Device state clean: undrained, no test IP.
    let net = svc.net();
    let guard = net.lock();
    let id = guard.device_by_name(TARGET).unwrap();
    let sw = guard.switch(id).unwrap();
    let device_clean = !sw.drained && sw.test_ip.is_none();
    (report, db_restored && device_clean)
}

#[test]
fn rollback_recovers_at_every_device_function_failure() {
    for func in FUNC_STEPS {
        let (report, recovered) = run_with_failure_at(func);
        assert!(
            recovered,
            "failure at {func}: state not restored; plan was {:?}",
            report.rollback.as_ref().map(|p| p.arrow_notation())
        );
    }
}

#[test]
fn plans_match_grammar_expectations_per_failure_point() {
    let expectations: &[(&str, &str)] = &[
        // Drain itself failed: its effects did not commit, nothing to undo.
        ("f_drain", ""),
        // Push failed after the DB writes: revert both writes, undrain.
        ("f_push", "r(DB_CHANGE) -> r(DB_CHANGE) -> UNDRAIN"),
        // Alloc failed: cfg_change completed -> revert + re-push + undrain.
        (
            "f_alloc_ip",
            "r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        ),
        // Ping failed inside testing: tear down env first (the paper's
        // walkthrough).
        (
            "f_ping_test",
            "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        ),
        (
            "f_optic_test",
            "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        ),
        (
            "f_dealloc_ip",
            "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        ),
        // Undrain failed: testing completed cleanly, so only the
        // cfg_change reverts and the device undrains.
        (
            "f_undrain",
            "r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
        ),
    ];
    for (func, expected) in expectations {
        let (report, _) = run_with_failure_at(func);
        let plan = report.rollback.as_ref().unwrap();
        assert_eq!(
            plan.arrow_notation(),
            *expected,
            "plan mismatch for failure at {func}"
        );
    }
}

#[test]
fn db_write_failures_are_also_recoverable() {
    // Fail the second set() (firmware binary) via a database fault.
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&rt);
    let before_db = rt.db().snapshot();
    let report = rt.task("firmware_upgrade").run(|ctx| {
        let net = ctx.network(TARGET)?;
        net.apply("f_drain")?;
        net.set(attrs::FIRMWARE_VERSION, "fw-2.1.0".into())?;
        // Fail the *write* query of the next set (its single snapshot
        // read, query 0, passes).
        ctx.runtime()
            .db()
            .set_fault_plan(occam::netdb::FaultPlan::fail_at([1]));
        net.set(attrs::FIRMWARE_BINARY, "s3://fw/2.1.0.bin".into())?;
        unreachable!("previous set must fail");
    });
    rt.db().set_fault_plan(occam::netdb::FaultPlan::none());
    assert_eq!(report.state, TaskState::Aborted);
    let plan = report.rollback.as_ref().unwrap();
    assert_eq!(plan.arrow_notation(), "r(DB_CHANGE) -> UNDRAIN");
    execute_rollback(&report, rt.db(), svc).unwrap();
    assert_eq!(rt.db().snapshot(), before_db);
}
