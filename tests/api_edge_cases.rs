//! Edge-case coverage of the public programming API.

use occam::netdb::attrs;
use occam::{TaskError, TaskState};

#[test]
fn invalid_scope_aborts_with_scope_error() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt.task("bad_scope").run(|ctx| {
        let _ = ctx.network_regex("(((")?;
        Ok(())
    });
    assert_eq!(report.state, TaskState::Aborted);
    assert!(matches!(report.error, Some(TaskError::Scope(_))));
    assert_eq!(rt.active_objects(), 0);
}

#[test]
fn empty_scope_locks_nothing_but_operates_on_nothing() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt.task("empty").run(|ctx| {
        let net = ctx.network_of_devices::<&str>(&[])?;
        assert!(net.devices()?.is_empty());
        assert!(net.get(attrs::DEVICE_STATUS)?.is_empty());
        let written = net.set("X", 1i64.into())?;
        assert!(written.is_empty());
        Ok(())
    });
    assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
    assert_eq!(rt.active_objects(), 0);
}

#[test]
fn scope_matching_no_devices_still_locks_the_region() {
    // A region over not-yet-existing devices locks symbolically: a second
    // writer to the same future region must wait.
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let rt1 = rt.clone();
    let h = rt1.task("future_region").spawn(|ctx| {
        let net = ctx.network("dc09.pod00.*")?;
        assert!(net.devices()?.is_empty());
        std::thread::sleep(std::time::Duration::from_millis(80));
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let t0 = std::time::Instant::now();
    let report = rt.task("same_future_region").run(|ctx| {
        let _ = ctx.network("dc09.pod00.*")?;
        Ok(())
    });
    assert_eq!(report.state, TaskState::Completed);
    assert!(
        t0.elapsed() >= std::time::Duration::from_millis(40),
        "second task waited for the symbolic lock"
    );
    h.join().unwrap();
}

#[test]
fn get_all_returns_full_attribute_maps() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt.task("get_all").run(|ctx| {
        let net = ctx.network_read("dc01.pod00.tor00")?;
        let all = net.get_all()?;
        let attrs_map = all.get("dc01.pod00.tor00").expect("device present");
        assert!(attrs_map.contains_key(attrs::DEVICE_STATUS));
        assert!(attrs_map.contains_key(attrs::FIRMWARE_VERSION));
        Ok(())
    });
    assert_eq!(report.state, TaskState::Completed);
}

#[test]
fn unknown_device_function_aborts_cleanly() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let report = rt.task("bogus_func").run(|ctx| {
        let net = ctx.network("dc01.pod00.tor00")?;
        net.apply("f_not_a_function")?;
        Ok(())
    });
    assert_eq!(report.state, TaskState::Aborted);
    assert!(matches!(report.error, Some(TaskError::Device(_))));
    // Untyped + failed: nothing entered the rollback grammar, so the plan
    // (over the empty prefix) is empty.
    assert!(report.rollback.as_ref().is_some_and(|p| p.is_empty()));
}

#[test]
fn task_queue_reports_aborted_tasks() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let q = occam::core::TaskQueue::new(rt, 2);
    let ok = q.submit("ok", false, |_| Ok(()));
    let bad = q.submit("bad", false, |_| {
        Err(TaskError::Failed("deliberate".into()))
    });
    assert_eq!(q.wait(ok).unwrap().state, TaskState::Completed);
    let report = q.wait(bad).unwrap();
    assert_eq!(report.state, TaskState::Aborted);
    assert_eq!(q.state_of(bad), Some(TaskState::Aborted));
}

#[test]
fn scope_accessor_and_display() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    rt.task("scope").run(|ctx| {
        let net = ctx.network("dc01.pod00.*")?;
        assert!(net.scope().matches("dc01.pod00.tor01"));
        assert!(!net.scope().matches("dc01.pod01.tor01"));
        assert_eq!(net.scope().literal_prefix(), "dc01.pod00.");
        Ok(())
    });
}
