//! Integration checks that the simulator reproduces the *shape* of the
//! paper's headline results on reduced traces (the full-scale runs live in
//! the bench harness; see EXPERIMENTS.md).

use occam::objtree::SplitMode;
use occam::sched::Policy;
use occam::sim::{run, Granularity, SimConfig, SimResult};
use occam::topology::ProductionScheme;
use occam::workload::{synthesize, TraceConfig};

fn sim(trace_cfg: &TraceConfig, granularity: Granularity, policy: Policy) -> SimResult {
    let trace = synthesize(trace_cfg);
    run(
        &SimConfig {
            granularity,
            policy,
            scheme: trace_cfg.scheme,
            split_mode: SplitMode::Split,
        },
        &trace,
    )
}

fn reduced() -> TraceConfig {
    TraceConfig {
        num_tasks: 600,
        ..TraceConfig::default()
    }
}

#[test]
fn figure8_ordering_obj_beats_dev_beats_dc() {
    let cfg = reduced();
    let dc = sim(&cfg, Granularity::Dc, Policy::Ldsf);
    let dev = sim(&cfg, Granularity::Device, Policy::Ldsf);
    let obj = sim(&cfg, Granularity::Object, Policy::Ldsf);
    let (mdc, mdev, mobj) = (
        dc.mean_completion(),
        dev.mean_completion(),
        obj.mean_completion(),
    );
    assert!(
        mobj < mdev && mdev < mdc,
        "completion ordering: obj {mobj:.1} < dev {mdev:.1} < dc {mdc:.1}"
    );
    // The paper's object-vs-DC gap is large (roughly 10x); require >= 3x
    // on the reduced trace.
    assert!(
        mdc / mobj > 3.0,
        "obj speedup over dc only {:.1}x",
        mdc / mobj
    );
    // Queue ordering (Figure 8c).
    assert!(obj.peak_queue() < dev.peak_queue());
    assert!(dev.peak_queue() < dc.peak_queue());
    // Most tasks never wait under object locking (Figure 8b).
    assert!(
        obj.zero_wait_fraction() > 0.7,
        "zero-wait fraction {:.2}",
        obj.zero_wait_fraction()
    );
    assert!(obj.zero_wait_fraction() > dc.zero_wait_fraction());
}

#[test]
fn figure9_read_heavy_narrows_dev_obj_gap() {
    let wr = TraceConfig {
        num_tasks: 400,
        ..TraceConfig::default()
    }
    .write_heavy();
    let rd = TraceConfig {
        num_tasks: 400,
        ..TraceConfig::default()
    }
    .read_heavy();
    let dev_wr = sim(&wr, Granularity::Device, Policy::Ldsf).mean_completion();
    let obj_wr = sim(&wr, Granularity::Object, Policy::Ldsf).mean_completion();
    let dev_rd = sim(&rd, Granularity::Device, Policy::Ldsf).mean_completion();
    let obj_rd = sim(&rd, Granularity::Object, Policy::Ldsf).mean_completion();
    let gap_wr = dev_wr / obj_wr;
    let gap_rd = dev_rd / obj_rd;
    assert!(
        gap_rd < gap_wr,
        "read-heavy gap {gap_rd:.2}x should shrink below write-heavy {gap_wr:.2}x"
    );
    // Read-heavy workloads complete faster overall (fewer conflicts).
    assert!(obj_rd <= obj_wr * 1.2, "{obj_rd:.1} vs {obj_wr:.1}");
}

#[test]
fn figure10_dev_locking_produces_more_objects_and_slower_sched() {
    let cfg = TraceConfig {
        num_tasks: 300,
        ..TraceConfig::default()
    };
    let dc = sim(&cfg, Granularity::Dc, Policy::Ldsf);
    let dev = sim(&cfg, Granularity::Device, Policy::Ldsf);
    let obj = sim(&cfg, Granularity::Object, Policy::Ldsf);
    let peak = |r: &SimResult| r.active_objects.iter().copied().max().unwrap_or(0);
    // Device locking produces 1-2 orders of magnitude more scheduling
    // objects than object locking.
    assert!(
        peak(&dev) as f64 / peak(&obj).max(1) as f64 > 10.0,
        "dev {} vs obj {}",
        peak(&dev),
        peak(&obj)
    );
    assert!(peak(&dc) <= 16);
    // Scheduling with fewer locks is faster: dc <= obj <= dev mean time.
    assert!(dc.mean_sched_time() <= dev.mean_sched_time());
    // All decisions computed well under the paper's 100ms bound. Wall-time
    // bounds are only meaningful on optimized builds; debug builds are an
    // order of magnitude slower.
    if !cfg!(debug_assertions) {
        assert!(
            dev.max_sched_time() < std::time::Duration::from_millis(100),
            "max sched {:?}",
            dev.max_sched_time()
        );
    }
}

#[test]
fn figure11_ldsf_beats_fifo_under_skew() {
    let cfg = TraceConfig {
        num_tasks: 500,
        ..TraceConfig::default()
    }
    .skewed();
    let fifo = sim(&cfg, Granularity::Object, Policy::Fifo);
    let ldsf = sim(&cfg, Granularity::Object, Policy::Ldsf);
    assert!(
        ldsf.mean_waiting() <= fifo.mean_waiting() * 1.02,
        "LDSF {:.1}h should not exceed FIFO {:.1}h under skewed contention",
        ldsf.mean_waiting(),
        fifo.mean_waiting()
    );
}

#[test]
fn urgent_tasks_wait_less_than_ordinary_ones() {
    let cfg = TraceConfig {
        num_tasks: 400,
        urgent_fraction: 0.05,
        ..TraceConfig::default()
    }
    .skewed();
    let trace = synthesize(&cfg);
    let r = run(
        &SimConfig {
            granularity: Granularity::Object,
            policy: Policy::Ldsf,
            scheme: cfg.scheme,
            split_mode: SplitMode::Split,
        },
        &trace,
    );
    let mean = |pred: &dyn Fn(usize) -> bool| {
        let xs: Vec<f64> = r
            .outcomes
            .iter()
            .filter(|o| pred(o.id as usize))
            .map(|o| o.waiting())
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let urgent = mean(&|i| trace[i].urgent);
    let normal = mean(&|i| !trace[i].urgent);
    assert!(
        urgent <= normal,
        "urgent mean wait {urgent:.2}h vs normal {normal:.2}h"
    );
}

#[test]
fn all_six_scheduler_configs_complete_the_meta_trace() {
    let cfg = TraceConfig {
        num_tasks: 250,
        ..TraceConfig::default()
    };
    let trace = synthesize(&cfg);
    for policy in [Policy::Fifo, Policy::Ldsf] {
        for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
            let r = run(
                &SimConfig {
                    granularity,
                    policy,
                    scheme: ProductionScheme::meta_scale(),
                    split_mode: SplitMode::Split,
                },
                &trace,
            );
            assert_eq!(r.outcomes.len(), 250, "{granularity:?}/{policy:?}");
            // Strict 2PL + commit: every task starts at/after arrival and
            // completes after its full duration.
            for o in &r.outcomes {
                assert!(o.start >= o.arrival - 1e-9);
                assert!(o.completion >= o.start + trace[o.id as usize].duration - 1e-9);
            }
        }
    }
}
