//! End-to-end integration tests: Occam programs against the emulated
//! network and the source-of-truth database, spanning every crate.

use occam::emunet::{Delivery, DeviceService, FlowClass, FuncArgs};
use occam::netdb::attrs;
use occam::regex::Pattern;
use occam::{TaskError, TaskState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn maintenance_task_updates_db_and_devices_atomically() {
    let (rt, _ft) = occam::emulated_deployment(1, 6);
    let report = rt.task("maintenance").run(|ctx| {
        let pod = ctx.network("dc01.pod05.*")?;
        pod.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        pod.apply("f_drain")?;
        Ok(())
    });
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(rt.active_objects(), 0);

    let scope = Pattern::from_glob("dc01.pod05.*").unwrap();
    let statuses = rt.db().get_attr(&scope, attrs::DEVICE_STATUS).unwrap();
    assert_eq!(statuses.len(), 6);
    assert!(statuses
        .values()
        .all(|v| v.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE)));

    let svc = occam::emu_service(&rt);
    let net = svc.net();
    let guard = net.lock();
    for name in statuses.keys() {
        let id = guard.device_by_name(name).unwrap();
        assert!(guard.switch(id).unwrap().drained, "{name} drained");
    }
}

#[test]
fn overlapping_writers_never_interleave() {
    // N tasks increment a counter attribute on the same pod; under task
    // isolation the final value is exactly N.
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    rt.db()
        .set_attr(
            &Pattern::from_glob("dc01.pod00.tor00").unwrap(),
            "COUNTER",
            0i64.into(),
        )
        .unwrap();
    let n = 12;
    let mut handles = Vec::new();
    for i in 0..n {
        let rt = rt.clone();
        handles.push(rt.clone().task(format!("inc{i}")).spawn(move |ctx| {
            let net = ctx.network("dc01.pod00.tor00")?;
            let cur = net.get("COUNTER")?;
            let v = cur
                .get("dc01.pod00.tor00")
                .and_then(|v| v.as_int())
                .unwrap_or(0);
            // Read-modify-write across two queries: only task-level
            // isolation makes this safe.
            std::thread::yield_now();
            net.set("COUNTER", (v + 1).into())?;
            Ok(())
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().state, TaskState::Completed);
    }
    let val = rt
        .db()
        .get_attr(&Pattern::from_glob("dc01.pod00.tor00").unwrap(), "COUNTER")
        .unwrap()
        .remove("dc01.pod00.tor00")
        .unwrap();
    assert_eq!(val.as_int(), Some(n as i64));
}

#[test]
fn readers_run_concurrently_under_shared_locks() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let concurrent = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..6 {
        let rt = rt.clone();
        let c = Arc::clone(&concurrent);
        let p = Arc::clone(&peak);
        handles.push(rt.clone().task(format!("reader{i}")).spawn(move |ctx| {
            let net = ctx.network_read("dc01.*")?;
            let inside = c.fetch_add(1, Ordering::SeqCst) + 1;
            p.fetch_max(inside, Ordering::SeqCst);
            let _ = net.get(attrs::DEVICE_STATUS)?;
            std::thread::sleep(std::time::Duration::from_millis(60));
            c.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap().state, TaskState::Completed);
    }
    assert!(
        peak.load(Ordering::SeqCst) >= 2,
        "shared locks admit concurrent readers (peak {})",
        peak.load(Ordering::SeqCst)
    );
}

#[test]
fn containment_conflict_blocks_whole_dc_writer() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let order = Arc::new(std::sync::Mutex::new(Vec::<&'static str>::new()));
    let o1 = Arc::clone(&order);
    let rt1 = rt.clone();
    let h1 = rt1.task("pod_writer").spawn(move |ctx| {
        let _net = ctx.network("dc01.pod01.*")?;
        std::thread::sleep(std::time::Duration::from_millis(100));
        o1.lock().unwrap().push("pod");
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    let o2 = Arc::clone(&order);
    let report = rt.task("dc_writer").run(move |ctx| {
        let _net = ctx.network("dc01.*")?;
        o2.lock().unwrap().push("dc");
        Ok(())
    });
    h1.join().unwrap();
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(
        *order.lock().unwrap(),
        vec!["pod", "dc"],
        "DC writer waited for the pod"
    );
}

#[test]
fn db_failure_aborts_task_and_suggests_revert() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    let before = rt.db().snapshot();
    // First write succeeds, second query hits an injected connection
    // failure.
    let report = rt.task("flaky_db").run(|ctx| {
        let net = ctx.network("dc01.pod00.*")?;
        net.set("STAGE", 1i64.into())?;
        ctx.runtime()
            .db()
            .set_fault_plan(occam::netdb::FaultPlan::fail_at([0]));
        net.set("STAGE", 2i64.into())?;
        Ok(())
    });
    rt.db().set_fault_plan(occam::netdb::FaultPlan::none());
    assert_eq!(report.state, TaskState::Aborted);
    assert!(matches!(report.error, Some(TaskError::Db(_))));
    let plan = report.rollback.as_ref().unwrap();
    assert_eq!(plan.arrow_notation(), "r(DB_CHANGE)");
    occam::execute_rollback(&report, rt.db(), occam::emu_service(&rt)).unwrap();
    assert_eq!(rt.db().snapshot(), before);
}

#[test]
fn traffic_survives_serialized_conflicting_tasks() {
    // The Figure 12 "with locking" half, as an assertion.
    let (rt, ft) = occam::emulated_deployment(1, 6);
    let svc = occam::emu_service(&rt);
    let flow = {
        let net = svc.net();
        let mut guard = net.lock();
        for &agg in &ft.aggs[0][1..] {
            guard.switch_mut(agg).unwrap().drained = true;
        }
        guard.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[2][0][0],
            50.0,
            FlowClass::Background,
        )
    };
    let rt1 = rt.clone();
    let h1 = rt1.task("upgrade").spawn(move |ctx| {
        let net = ctx.network("dc01.pod00.agg00")?;
        net.apply("f_drain")?;
        net.apply_with("f_upgrade_data_plane", &FuncArgs::one("phase", "begin"))?;
        ctx.runtime().service().advance(4);
        std::thread::sleep(std::time::Duration::from_millis(80));
        net.apply_with("f_upgrade_data_plane", &FuncArgs::one("phase", "commit"))?;
        net.apply("f_undrain")?;
        Ok(())
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    let report2 = rt.task("turnup").run(|ctx| {
        let net = ctx.network("dc01.pod00.agg00")?;
        net.apply("f_push")?;
        Ok(())
    });
    assert_eq!(h1.join().unwrap().state, TaskState::Completed);
    assert_eq!(report2.state, TaskState::Completed);
    svc.advance(3);
    let net = svc.net();
    let guard = net.lock();
    let black_holed = guard
        .history()
        .iter()
        .filter(|s| matches!(s.flow_rate.get(&flow), Some((Delivery::BlackHoled, _))))
        .count();
    assert_eq!(black_holed, 0, "no tick drops traffic under locking");
}

#[test]
fn pattern_cache_is_exercised_by_repeated_scopes() {
    let (rt, _ft) = occam::emulated_deployment(1, 4);
    for _ in 0..4 {
        let report = rt.task("repeat").run(|ctx| {
            let _ = ctx.network_read("dc01.pod00.*")?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
    }
    let stats = rt.pattern_cache().stats();
    assert!(stats.hits >= 3, "repeated scopes hit the cache: {stats:?}");
}
