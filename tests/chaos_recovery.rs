//! Integration tests for the chaos/recovery contract (DESIGN.md §11):
//! campaign determinism, WAL torn-shutdown replay, and gateway job-record
//! hygiene under mid-frame connection resets.

use occam::chaos::{run_gateway_phase, Campaign, CampaignConfig, GatewayChaosConfig};
use occam::netdb::db::Store;
use occam::netdb::{attrs, Database};
use proptest::prelude::*;

/// Identical campaign configs must produce byte-identical reports: every
/// random stream is seeded, tasks run sequentially, and verification
/// pauses the injectors without advancing them.
#[test]
fn seeded_campaigns_are_deterministic() {
    let mut cfg = CampaignConfig::at_rate(9001, 0.12);
    cfg.tasks = 15;
    let a = Campaign::new(cfg.clone()).run();
    let b = Campaign::new(cfg).run();
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.invariant_violations, 0, "{:?}", a.first_violation);
    assert_eq!(a.completed + a.rolled_back, 15);
}

/// A connection that dies mid-SUBMIT (length prefix plus half the body)
/// must never create an engine job record: admission happens only after
/// a full decode. Clients that vanish after a complete SUBMIT — or
/// after a pipelined batch of SUBMITs, on the reactor's batch-admission
/// path — still get their jobs driven to a terminal phase; nothing
/// stays queued or running after drain.
#[test]
fn gateway_mid_frame_reset_never_leaks_job_records() {
    let report = run_gateway_phase(&GatewayChaosConfig {
        submissions: 12,
        drop_every: 2,
    });
    assert!(report.partial_drops >= 2, "phase must reset mid-frame");
    assert!(report.vanish_drops >= 2, "phase must vanish after SUBMIT");
    assert!(
        report.batch_vanish_drops >= 1,
        "phase must vanish after a pipelined batch"
    );
    // Partial frames were never admitted; everything admitted finished.
    assert_eq!(report.accepted, report.completed);
    assert_eq!(report.leaked_records, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn-shutdown property: after real management work, replaying
    /// *every* prefix of the WAL is total, the full replay equals the
    /// live store, and a WAL file truncated at any record boundary still
    /// recovers into a database equal to the replayed prefix.
    #[test]
    fn wal_replay_is_total_at_every_prefix(writes in 1usize..6, seed in 0u64..1000) {
        let (rt, _ft) = occam::emulated_deployment(1, 4);
        let pods = ["dc01.pod00.*", "dc01.pod01.*"];
        for w in 0..writes {
            let scope = pods[(seed as usize + w) % pods.len()];
            let fw = format!("fw-{seed}-{w}");
            let report = rt.task("wal_writer").run(|ctx| {
                let net = ctx.network(scope)?;
                net.apply("f_drain")?;
                net.set(attrs::FIRMWARE_VERSION, fw.as_str().into())?;
                net.apply("f_push")?;
                net.apply("f_undrain")?;
                net.close();
                Ok(())
            });
            prop_assert_eq!(report.state, occam::TaskState::Completed);
        }
        let records = rt.db().wal_records();
        prop_assert!(!records.is_empty());
        // Every prefix replays without panicking, and replay is
        // monotone: the full prefix reproduces the live store.
        for k in 0..=records.len() {
            let store = Store::replay(&records[..k]);
            if k == records.len() {
                prop_assert_eq!(&store, &rt.db().snapshot());
            }
            // Text-level torn shutdown: a WAL file cut after k records
            // must decode and recover to exactly that prefix's store.
            let text = rt.db().dump_wal();
            let truncated: String = text
                .lines()
                .take(k)
                .flat_map(|l| [l, "\n"])
                .collect();
            let recovered = Database::recover(&truncated)
                .map_err(|e| TestCaseError::fail(format!("prefix {k} failed: {e}")))?;
            prop_assert_eq!(&recovered.snapshot(), &store);
        }
    }
}
