//! The production-scale naming scheme used by the simulator.
//!
//! The paper's at-scale simulation (§8.1) runs on "16 datacenters, each with
//! 96 pods and 92 switches" — about 141k devices. At that scale the
//! simulator never materializes a graph; it works on the *identifier
//! arithmetic* of the naming scheme and on symbolic region specs.

/// Parameters of the production naming scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProductionScheme {
    /// Number of datacenters (1-based numbering `dc01..`).
    pub num_dcs: u32,
    /// Pods per datacenter (0-based `pod00..`).
    pub pods_per_dc: u32,
    /// Switches per pod (0-based `sw00..`).
    pub switches_per_pod: u32,
}

impl ProductionScheme {
    /// The scale the paper simulates: 16 DCs × 96 pods × 92 switches.
    pub fn meta_scale() -> ProductionScheme {
        ProductionScheme {
            num_dcs: 16,
            pods_per_dc: 96,
            switches_per_pod: 92,
        }
    }

    /// Total number of devices in the scheme.
    pub fn total_devices(&self) -> u64 {
        u64::from(self.num_dcs) * u64::from(self.pods_per_dc) * u64::from(self.switches_per_pod)
    }

    /// Devices per datacenter.
    pub fn devices_per_dc(&self) -> u32 {
        self.pods_per_dc * self.switches_per_pod
    }

    /// The canonical name for device `(dc, pod, sw)`; `dc` is 1-based.
    pub fn device_name(&self, dc: u32, pod: u32, sw: u32) -> String {
        format!("dc{dc:02}.pod{pod:02}.sw{sw:02}")
    }

    /// Flat device index for `(dc, pod, sw)`; `dc` is 1-based.
    pub fn device_index(&self, dc: u32, pod: u32, sw: u32) -> u32 {
        (dc - 1) * self.devices_per_dc() + pod * self.switches_per_pod + sw
    }

    /// Inverse of [`Self::device_index`]: `(dc, pod, sw)`.
    pub fn device_coords(&self, index: u32) -> (u32, u32, u32) {
        let per_dc = self.devices_per_dc();
        let dc = index / per_dc + 1;
        let rem = index % per_dc;
        (dc, rem / self.switches_per_pod, rem % self.switches_per_pod)
    }

    /// The name of the device at flat `index`.
    pub fn device_name_at(&self, index: u32) -> String {
        let (dc, pod, sw) = self.device_coords(index);
        self.device_name(dc, pod, sw)
    }
}

/// A symbolic network region over a [`ProductionScheme`].
///
/// Region specs are what the workload generator produces and what the
/// simulator locks at each granularity: they can be rendered as a regex (for
/// network-object locks), enumerated as device indices (for device locks),
/// or projected to datacenters (for DC locks).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegionSpec {
    /// An entire datacenter (`dc03.*`); 1-based.
    Dc(u32),
    /// One pod (`dc03.pod07.*`).
    Pod {
        /// Datacenter (1-based).
        dc: u32,
        /// Pod (0-based).
        pod: u32,
    },
    /// A contiguous inclusive range of pods within a datacenter.
    PodRange {
        /// Datacenter (1-based).
        dc: u32,
        /// First pod (0-based).
        lo: u32,
        /// Last pod (inclusive).
        hi: u32,
    },
    /// An explicit set of devices by flat index (sorted, deduplicated).
    Devices(Vec<u32>),
}

impl RegionSpec {
    /// Renders the region as a regex over device names.
    pub fn to_regex(&self, scheme: &ProductionScheme) -> String {
        match self {
            RegionSpec::Dc(dc) => format!(r"dc{dc:02}\..*"),
            RegionSpec::Pod { dc, pod } => format!(r"dc{dc:02}\.pod{pod:02}\..*"),
            RegionSpec::PodRange { dc, lo, hi } => {
                let alts: Vec<String> = (*lo..=*hi).map(|p| format!("pod{p:02}")).collect();
                format!(r"dc{dc:02}\.({})\..*", alts.join("|"))
            }
            RegionSpec::Devices(idxs) => {
                let alts: Vec<String> = idxs
                    .iter()
                    .map(|&i| scheme.device_name_at(i).replace('.', r"\."))
                    .collect();
                if alts.is_empty() {
                    "[]".to_string()
                } else {
                    alts.join("|")
                }
            }
        }
    }

    /// The datacenters the region touches (1-based), sorted and unique.
    pub fn dcs(&self, scheme: &ProductionScheme) -> Vec<u32> {
        match self {
            RegionSpec::Dc(dc) => vec![*dc],
            RegionSpec::Pod { dc, .. } | RegionSpec::PodRange { dc, .. } => vec![*dc],
            RegionSpec::Devices(idxs) => {
                let mut v: Vec<u32> = idxs.iter().map(|&i| scheme.device_coords(i).0).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// All flat device indices in the region, sorted ascending.
    pub fn device_indices(&self, scheme: &ProductionScheme) -> Vec<u32> {
        match self {
            RegionSpec::Dc(dc) => {
                let base = (dc - 1) * scheme.devices_per_dc();
                (base..base + scheme.devices_per_dc()).collect()
            }
            RegionSpec::Pod { dc, pod } => {
                let base = scheme.device_index(*dc, *pod, 0);
                (base..base + scheme.switches_per_pod).collect()
            }
            RegionSpec::PodRange { dc, lo, hi } => {
                let base = scheme.device_index(*dc, *lo, 0);
                let end = scheme.device_index(*dc, *hi, scheme.switches_per_pod - 1);
                (base..=end).collect()
            }
            RegionSpec::Devices(idxs) => idxs.clone(),
        }
    }

    /// Number of devices in the region without enumerating.
    pub fn device_count(&self, scheme: &ProductionScheme) -> u64 {
        match self {
            RegionSpec::Dc(_) => u64::from(scheme.devices_per_dc()),
            RegionSpec::Pod { .. } => u64::from(scheme.switches_per_pod),
            RegionSpec::PodRange { lo, hi, .. } => {
                u64::from(hi - lo + 1) * u64::from(scheme.switches_per_pod)
            }
            RegionSpec::Devices(idxs) => idxs.len() as u64,
        }
    }

    /// Fast symbolic overlap test (no regex machinery needed for specs).
    pub fn overlaps(&self, other: &RegionSpec, scheme: &ProductionScheme) -> bool {
        use RegionSpec::*;
        // Normalize: represent each spec's pod interval per dc, or explicit
        // device lists.
        fn pod_interval(spec: &RegionSpec, scheme: &ProductionScheme) -> Option<(u32, u32, u32)> {
            match spec {
                Dc(dc) => Some((*dc, 0, scheme.pods_per_dc - 1)),
                Pod { dc, pod } => Some((*dc, *pod, *pod)),
                PodRange { dc, lo, hi } => Some((*dc, *lo, *hi)),
                Devices(_) => None,
            }
        }
        match (pod_interval(self, scheme), pod_interval(other, scheme)) {
            (Some((d1, l1, h1)), Some((d2, l2, h2))) => d1 == d2 && l1 <= h2 && l2 <= h1,
            _ => {
                // Fall back to index-set intersection with early exit.
                let a = self.device_indices(scheme);
                let b = other.device_indices(scheme);
                let (small, large) = if a.len() <= b.len() {
                    (&a, &b)
                } else {
                    (&b, &a)
                };
                let set: std::collections::HashSet<u32> = large.iter().copied().collect();
                small.iter().any(|i| set.contains(i))
            }
        }
    }

    /// Fast symbolic containment test: does `self` contain `other`?
    pub fn contains(&self, other: &RegionSpec, scheme: &ProductionScheme) -> bool {
        use RegionSpec::*;
        fn pod_interval(spec: &RegionSpec, scheme: &ProductionScheme) -> Option<(u32, u32, u32)> {
            match spec {
                Dc(dc) => Some((*dc, 0, scheme.pods_per_dc - 1)),
                Pod { dc, pod } => Some((*dc, *pod, *pod)),
                PodRange { dc, lo, hi } => Some((*dc, *lo, *hi)),
                Devices(_) => None,
            }
        }
        match (pod_interval(self, scheme), pod_interval(other, scheme)) {
            (Some((d1, l1, h1)), Some((d2, l2, h2))) => d1 == d2 && l1 <= l2 && h2 <= h1,
            _ => {
                let sup: std::collections::HashSet<u32> =
                    self.device_indices(scheme).into_iter().collect();
                other.device_indices(scheme).iter().all(|i| sup.contains(i))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> ProductionScheme {
        ProductionScheme::meta_scale()
    }

    #[test]
    fn meta_scale_counts() {
        let s = scheme();
        assert_eq!(s.total_devices(), 16 * 96 * 92);
        assert_eq!(s.devices_per_dc(), 96 * 92);
    }

    #[test]
    fn index_round_trip() {
        let s = scheme();
        for &(dc, pod, sw) in &[(1, 0, 0), (16, 95, 91), (7, 42, 13)] {
            let i = s.device_index(dc, pod, sw);
            assert_eq!(s.device_coords(i), (dc, pod, sw));
        }
        assert_eq!(s.device_index(16, 95, 91) as u64, s.total_devices() - 1);
    }

    #[test]
    fn names_match_scheme() {
        let s = scheme();
        assert_eq!(s.device_name(3, 7, 2), "dc03.pod07.sw02");
        assert_eq!(s.device_name_at(0), "dc01.pod00.sw00");
    }

    #[test]
    fn region_regex_forms() {
        let s = scheme();
        assert_eq!(RegionSpec::Dc(3).to_regex(&s), r"dc03\..*");
        assert_eq!(
            RegionSpec::Pod { dc: 1, pod: 4 }.to_regex(&s),
            r"dc01\.pod04\..*"
        );
        let r = RegionSpec::PodRange {
            dc: 2,
            lo: 3,
            hi: 5,
        }
        .to_regex(&s);
        assert_eq!(r, r"dc02\.(pod03|pod04|pod05)\..*");
        assert_eq!(RegionSpec::Devices(vec![]).to_regex(&s), "[]");
    }

    #[test]
    fn device_indices_and_counts_agree() {
        let s = scheme();
        for spec in [
            RegionSpec::Dc(2),
            RegionSpec::Pod { dc: 1, pod: 10 },
            RegionSpec::PodRange {
                dc: 3,
                lo: 0,
                hi: 4,
            },
            RegionSpec::Devices(vec![5, 9, 100]),
        ] {
            let idxs = spec.device_indices(&s);
            assert_eq!(idxs.len() as u64, spec.device_count(&s));
            assert!(idxs.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn overlap_symbolic_vs_enumerated() {
        let s = scheme();
        let a = RegionSpec::PodRange {
            dc: 1,
            lo: 0,
            hi: 4,
        };
        let b = RegionSpec::Pod { dc: 1, pod: 3 };
        let c = RegionSpec::Pod { dc: 1, pod: 9 };
        let d = RegionSpec::Dc(2);
        assert!(a.overlaps(&b, &s));
        assert!(!a.overlaps(&c, &s));
        assert!(!a.overlaps(&d, &s));
        let devs = RegionSpec::Devices(vec![s.device_index(1, 3, 0)]);
        assert!(devs.overlaps(&b, &s));
        assert!(!devs.overlaps(&c, &s));
    }

    #[test]
    fn containment_symbolic() {
        let s = scheme();
        let dc = RegionSpec::Dc(1);
        let pod = RegionSpec::Pod { dc: 1, pod: 5 };
        let range = RegionSpec::PodRange {
            dc: 1,
            lo: 3,
            hi: 8,
        };
        assert!(dc.contains(&pod, &s));
        assert!(dc.contains(&range, &s));
        assert!(range.contains(&pod, &s));
        assert!(!pod.contains(&range, &s));
        assert!(!RegionSpec::Dc(2).contains(&pod, &s));
        let devs = RegionSpec::Devices(vec![s.device_index(1, 5, 3)]);
        assert!(pod.contains(&devs, &s));
    }
}
