//! A k-ary Fat-tree builder (the emulation topology of paper §8.2).
//!
//! For even `k`: `k` pods, each with `k/2` aggregation and `k/2` ToR
//! switches; `(k/2)²` core switches; every ToR hosts `k/2` end hosts. The
//! paper's emulation uses `k = 6`: 18 ToR, 18 aggregation, 9 core.

use crate::graph::{DeviceId, Topology};
use crate::naming::{core_name, host_name, switch_name, Role};

/// A constructed Fat-tree with handy index maps.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The underlying graph.
    pub topo: Topology,
    /// Fat-tree arity (even, ≥ 2).
    pub k: u32,
    /// Datacenter number used in names.
    pub dc: u32,
    /// Core switch ids, row-major by (group, index).
    pub cores: Vec<DeviceId>,
    /// `aggs[pod][i]`.
    pub aggs: Vec<Vec<DeviceId>>,
    /// `tors[pod][i]`.
    pub tors: Vec<Vec<DeviceId>>,
    /// `hosts[pod][tor][i]`.
    pub hosts: Vec<Vec<Vec<DeviceId>>>,
}

/// An error constructing a Fat-tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FatTreeError {
    /// The rejected arity.
    pub k: u32,
}

impl std::fmt::Display for FatTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fat-tree arity must be even and >= 2, got {}", self.k)
    }
}

impl std::error::Error for FatTreeError {}

impl FatTree {
    /// Builds a `k`-ary Fat-tree for datacenter `dc`.
    pub fn build(dc: u32, k: u32) -> Result<FatTree, FatTreeError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(FatTreeError { k });
        }
        let half = k / 2;
        let mut topo = Topology::new();

        let mut cores = Vec::with_capacity((half * half) as usize);
        for c in 0..half * half {
            cores.push(topo.add_device(core_name(dc, c), Role::Core));
        }

        let mut aggs = Vec::with_capacity(k as usize);
        let mut tors = Vec::with_capacity(k as usize);
        let mut hosts = Vec::with_capacity(k as usize);
        for p in 0..k {
            let mut pod_aggs = Vec::with_capacity(half as usize);
            let mut pod_tors = Vec::with_capacity(half as usize);
            let mut pod_hosts = Vec::with_capacity(half as usize);
            for i in 0..half {
                pod_aggs.push(topo.add_device(switch_name(dc, p, Role::Agg, i), Role::Agg));
            }
            for i in 0..half {
                let tor = topo.add_device(switch_name(dc, p, Role::Tor, i), Role::Tor);
                pod_tors.push(tor);
                let mut tor_hosts = Vec::with_capacity(half as usize);
                for h in 0..half {
                    let host = topo.add_device(host_name(dc, p, i, h), Role::Host);
                    topo.add_link(tor, host).expect("distinct fresh devices");
                    tor_hosts.push(host);
                }
                pod_hosts.push(tor_hosts);
            }
            // Full bipartite pod fabric: every ToR to every Agg in the pod.
            for &tor in &pod_tors {
                for &agg in &pod_aggs {
                    topo.add_link(tor, agg).expect("distinct fresh devices");
                }
            }
            // Agg i uplinks to core group i (cores i*half .. i*half+half).
            for (i, &agg) in pod_aggs.iter().enumerate() {
                for j in 0..half as usize {
                    let core = cores[i * half as usize + j];
                    topo.add_link(agg, core).expect("distinct fresh devices");
                }
            }
            aggs.push(pod_aggs);
            tors.push(pod_tors);
            hosts.push(pod_hosts);
        }

        Ok(FatTree {
            topo,
            k,
            dc,
            cores,
            aggs,
            tors,
            hosts,
        })
    }

    /// All host ids, flattened.
    pub fn all_hosts(&self) -> Vec<DeviceId> {
        self.hosts
            .iter()
            .flat_map(|p| p.iter().flat_map(|t| t.iter().copied()))
            .collect()
    }

    /// All switch ids (ToR + Agg + Core), flattened.
    pub fn all_switches(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.cores.clone();
        for p in &self.aggs {
            v.extend_from_slice(p);
        }
        for p in &self.tors {
            v.extend_from_slice(p);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k6_matches_paper_counts() {
        let ft = FatTree::build(1, 6).unwrap();
        assert_eq!(ft.cores.len(), 9);
        assert_eq!(ft.aggs.iter().map(Vec::len).sum::<usize>(), 18);
        assert_eq!(ft.tors.iter().map(Vec::len).sum::<usize>(), 18);
        assert_eq!(ft.all_hosts().len(), 54);
        // Links: hosts (54) + tor-agg (6 pods * 3*3) + agg-core (18 aggs * 3).
        assert_eq!(ft.topo.num_links(), 54 + 54 + 54);
    }

    #[test]
    fn rejects_odd_or_tiny_k() {
        assert!(FatTree::build(1, 5).is_err());
        assert!(FatTree::build(1, 0).is_err());
        assert!(FatTree::build(1, 2).is_ok());
    }

    #[test]
    fn cross_pod_paths_have_ecmp() {
        let ft = FatTree::build(1, 4).unwrap();
        let src = ft.hosts[0][0][0];
        let dst = ft.hosts[3][1][1];
        let hops = ft.topo.ecmp_next_hops(ft.tors[0][0], dst, |_| true);
        // From a ToR, both pod aggs lie on shortest cross-pod paths.
        assert_eq!(hops.len(), 2);
        let p = ft.topo.ecmp_path(src, dst, 7, |_| true).unwrap();
        // host-tor-agg-core-agg-tor-host = 7 devices.
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn same_tor_path_is_two_hops() {
        let ft = FatTree::build(1, 4).unwrap();
        let a = ft.hosts[0][0][0];
        let b = ft.hosts[0][0][1];
        let p = ft.topo.ecmp_path(a, b, 1, |_| true).unwrap();
        assert_eq!(p.len(), 3); // host - tor - host
    }

    #[test]
    fn names_follow_scheme() {
        let ft = FatTree::build(2, 4).unwrap();
        let tor = ft.topo.device(ft.tors[1][0]);
        assert_eq!(tor.name, "dc02.pod01.tor00");
        let core = ft.topo.device(ft.cores[0]);
        assert_eq!(core.name, "dc02.core.c00");
    }

    #[test]
    fn switch_enumeration_is_complete_and_disjoint() {
        let ft = FatTree::build(1, 6).unwrap();
        let sw = ft.all_switches();
        let set: std::collections::HashSet<_> = sw.iter().collect();
        assert_eq!(set.len(), sw.len());
        assert_eq!(sw.len(), 9 + 18 + 18);
    }
}
