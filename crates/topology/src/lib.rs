//! # occam-topology
//!
//! Network topology substrate for the Occam reproduction: hierarchical
//! device naming, the topology graph with ECMP path computation, a k-ary
//! Fat-tree builder (the paper's emulation setup, §8.2), and the
//! production-scale naming scheme with symbolic region specs (the paper's
//! at-scale simulation setup, §8.1).
//!
//! # Examples
//!
//! ```
//! use occam_topology::{FatTree, ProductionScheme, RegionSpec};
//!
//! // The paper's k=6 emulation fabric: 18 ToR, 18 Agg, 9 core.
//! let ft = FatTree::build(1, 6).unwrap();
//! assert_eq!(ft.all_switches().len(), 45);
//!
//! // The paper's simulation scale: 16 DCs x 96 pods x 92 switches.
//! let scheme = ProductionScheme::meta_scale();
//! assert_eq!(scheme.total_devices(), 141_312);
//! let pod = RegionSpec::Pod { dc: 1, pod: 3 };
//! assert_eq!(pod.to_regex(&scheme), r"dc01\.pod03\..*");
//! ```

pub mod fattree;
pub mod graph;
pub mod naming;
pub mod production;

pub use fattree::{FatTree, FatTreeError};
pub use graph::{Device, DeviceId, Link, LinkId, Topology};
pub use naming::{parse_name, ParsedName, Role};
pub use production::{ProductionScheme, RegionSpec};
