//! The topology graph: devices, links, adjacency, and shortest-path /
//! ECMP next-hop computation.

use crate::naming::Role;
use std::collections::HashMap;

/// Index of a device within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DeviceId(pub u32);

/// Index of a link within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId(pub u32);

/// A device in the topology.
#[derive(Clone, Debug)]
pub struct Device {
    /// Hierarchical device name (`dc01.pod03.tor07`).
    pub name: String,
    /// Topological role.
    pub role: Role,
}

/// An undirected link between two devices.
///
/// Following the paper, a link is identified by its endpoint devices
/// (`a_end`, `z_end`); link attributes live with the endpoints in the
/// source-of-truth database.
#[derive(Clone, Debug)]
pub struct Link {
    /// One endpoint ("A end").
    pub a_end: DeviceId,
    /// The other endpoint ("Z end").
    pub z_end: DeviceId,
}

/// An in-memory topology graph.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    by_name: HashMap<String, DeviceId>,
    adj: Vec<Vec<(DeviceId, LinkId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a device; names must be unique.
    ///
    /// Returns the existing id if the name was already present (idempotent).
    pub fn add_device(&mut self, name: impl Into<String>, role: Role) -> DeviceId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = DeviceId(self.devices.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.devices.push(Device { name, role });
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link between two devices.
    ///
    /// Returns `None` if either endpoint is unknown or the endpoints are
    /// equal (self-links are not meaningful in this model).
    pub fn add_link(&mut self, a: DeviceId, z: DeviceId) -> Option<LinkId> {
        if a == z || a.0 as usize >= self.devices.len() || z.0 as usize >= self.devices.len() {
            return None;
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a_end: a, z_end: z });
        self.adj[a.0 as usize].push((z, id));
        self.adj[z.0 as usize].push((a, id));
        Some(id)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Looks up a device by name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.by_name.get(name).copied()
    }

    /// The device record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this topology.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// The link record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Iterates over `(id, device)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// Iterates over `(id, link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Neighbors of a device with the connecting link.
    pub fn neighbors(&self, id: DeviceId) -> &[(DeviceId, LinkId)] {
        &self.adj[id.0 as usize]
    }

    /// All devices whose role matches.
    pub fn devices_with_role(&self, role: Role) -> Vec<DeviceId> {
        self.devices()
            .filter(|(_, d)| d.role == role)
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS distances (in hops) from `src` to every device, or `u32::MAX`
    /// when unreachable. `usable` filters which links may be traversed.
    pub fn bfs_distances(&self, src: DeviceId, usable: impl Fn(LinkId) -> bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.devices.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.0 as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.0 as usize];
            for &(v, l) in &self.adj[u.0 as usize] {
                if usable(l) && dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The ECMP next-hop set at `at` toward `dst`: all neighbors on a
    /// shortest usable path. Empty when `dst` is unreachable.
    pub fn ecmp_next_hops(
        &self,
        at: DeviceId,
        dst: DeviceId,
        usable: impl Fn(LinkId) -> bool + Copy,
    ) -> Vec<(DeviceId, LinkId)> {
        let dist = self.bfs_distances(dst, usable);
        let here = dist[at.0 as usize];
        if here == u32::MAX || at == dst {
            return Vec::new();
        }
        self.adj[at.0 as usize]
            .iter()
            .copied()
            .filter(|&(v, l)| usable(l) && dist[v.0 as usize] + 1 == here)
            .collect()
    }

    /// One full shortest path `src → dst` choosing among ECMP next-hops with
    /// the flow `hash`. Returns the device sequence including endpoints, or
    /// `None` when unreachable.
    pub fn ecmp_path(
        &self,
        src: DeviceId,
        dst: DeviceId,
        hash: u64,
        usable: impl Fn(LinkId) -> bool + Copy,
    ) -> Option<Vec<DeviceId>> {
        let dist = self.bfs_distances(dst, usable);
        if dist[src.0 as usize] == u32::MAX {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        let mut hop = 0u64;
        while cur != dst {
            let here = dist[cur.0 as usize];
            let mut nexts: Vec<(DeviceId, LinkId)> = self.adj[cur.0 as usize]
                .iter()
                .copied()
                .filter(|&(v, l)| usable(l) && dist[v.0 as usize] + 1 == here)
                .collect();
            if nexts.is_empty() {
                return None;
            }
            // Deterministic ECMP: sort then pick by hash mixed with hop
            // index (so a flow uses a consistent path but different flows
            // spread across the fabric).
            nexts.sort_by_key(|&(v, _)| v);
            let mix = hash
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left((hop % 64) as u32);
            let pick = (mix % nexts.len() as u64) as usize;
            cur = nexts[pick].0;
            path.push(cur);
            hop += 1;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, DeviceId, DeviceId, DeviceId, DeviceId) {
        // s - {a, b} - t
        let mut t = Topology::new();
        let s = t.add_device("dc01.pod01.tor01", Role::Tor);
        let a = t.add_device("dc01.pod01.agg01", Role::Agg);
        let b = t.add_device("dc01.pod01.agg02", Role::Agg);
        let d = t.add_device("dc01.pod01.tor02", Role::Tor);
        t.add_link(s, a).unwrap();
        t.add_link(s, b).unwrap();
        t.add_link(a, d).unwrap();
        t.add_link(b, d).unwrap();
        (t, s, a, b, d)
    }

    #[test]
    fn add_device_is_idempotent_by_name() {
        let mut t = Topology::new();
        let a = t.add_device("dc01.pod01.tor01", Role::Tor);
        let b = t.add_device("dc01.pod01.tor01", Role::Tor);
        assert_eq!(a, b);
        assert_eq!(t.num_devices(), 1);
    }

    #[test]
    fn self_links_rejected() {
        let mut t = Topology::new();
        let a = t.add_device("x", Role::Tor);
        assert!(t.add_link(a, a).is_none());
    }

    #[test]
    fn bfs_distances_on_diamond() {
        let (t, s, a, _b, d) = diamond();
        let dist = t.bfs_distances(s, |_| true);
        assert_eq!(dist[s.0 as usize], 0);
        assert_eq!(dist[a.0 as usize], 1);
        assert_eq!(dist[d.0 as usize], 2);
    }

    #[test]
    fn ecmp_next_hops_spread() {
        let (t, s, a, b, d) = diamond();
        let hops = t.ecmp_next_hops(s, d, |_| true);
        let devs: Vec<DeviceId> = hops.iter().map(|&(v, _)| v).collect();
        assert!(devs.contains(&a));
        assert!(devs.contains(&b));
    }

    #[test]
    fn link_filter_narrows_paths() {
        let (t, s, _a, b, d) = diamond();
        // Disable the first link (s-a): all paths must go via b.
        let down = LinkId(0);
        let hops = t.ecmp_next_hops(s, d, |l| l != down);
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].0, b);
    }

    #[test]
    fn ecmp_path_reaches_destination() {
        let (t, s, _, _, d) = diamond();
        for hash in 0..8u64 {
            let p = t.ecmp_path(s, d, hash, |_| true).unwrap();
            assert_eq!(p.first(), Some(&s));
            assert_eq!(p.last(), Some(&d));
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Tor);
        assert!(t.ecmp_path(a, b, 0, |_| true).is_none());
        assert!(t.ecmp_next_hops(a, b, |_| true).is_empty());
    }
}
