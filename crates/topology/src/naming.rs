//! Hierarchical device naming.
//!
//! Production networks name devices from a well-defined identifier space
//! (paper §3.1): `dc01.pod03.tor07`. Names are hierarchical, lowercase, and
//! zero-padded so that textual prefixes align with topological containment
//! (`dc1` vs `dc10` ambiguity cannot arise).

/// The role a device plays in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// An end host attached to a ToR.
    Host,
    /// Top-of-rack switch.
    Tor,
    /// Pod aggregation switch.
    Agg,
    /// Datacenter core/spine switch.
    Core,
    /// Point-of-presence edge device.
    Pop,
    /// Backbone router.
    Backbone,
}

impl Role {
    /// The lowercase name-segment prefix for the role.
    pub fn prefix(self) -> &'static str {
        match self {
            Role::Host => "host",
            Role::Tor => "tor",
            Role::Agg => "agg",
            Role::Core => "core",
            Role::Pop => "pop",
            Role::Backbone => "bb",
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Formats a datacenter name: `dc01`.
pub fn dc_name(dc: u32) -> String {
    format!("dc{dc:02}")
}

/// Formats a pod name segment: `pod03`.
pub fn pod_segment(pod: u32) -> String {
    format!("pod{pod:02}")
}

/// Formats a full switch name: `dc01.pod03.tor07`.
pub fn switch_name(dc: u32, pod: u32, role: Role, idx: u32) -> String {
    format!("dc{dc:02}.pod{pod:02}.{}{idx:02}", role.prefix())
}

/// Formats a core switch name: `dc01.core.c03`.
pub fn core_name(dc: u32, idx: u32) -> String {
    format!("dc{dc:02}.core.c{idx:02}")
}

/// Formats a host name: `dc01.pod03.tor07.host02`.
pub fn host_name(dc: u32, pod: u32, tor: u32, idx: u32) -> String {
    format!("dc{dc:02}.pod{pod:02}.tor{tor:02}.host{idx:02}")
}

/// A parsed device name, exposing the hierarchy levels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsedName {
    /// Datacenter number.
    pub dc: u32,
    /// Pod number if the device is inside a pod.
    pub pod: Option<u32>,
    /// Role of the device.
    pub role: Role,
    /// Index within its role group.
    pub idx: u32,
}

/// Parses a device name produced by this module's formatters.
///
/// Returns `None` for names outside the scheme (the system treats such
/// devices as opaque leaves; only scheme-generated names participate in the
/// hierarchy arithmetic).
pub fn parse_name(name: &str) -> Option<ParsedName> {
    let mut parts = name.split('.');
    let dc_part = parts.next()?;
    let dc: u32 = dc_part.strip_prefix("dc")?.parse().ok()?;
    let second = parts.next()?;
    if second == "core" {
        let c = parts.next()?;
        let idx: u32 = c.strip_prefix('c')?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        return Some(ParsedName {
            dc,
            pod: None,
            role: Role::Core,
            idx,
        });
    }
    let pod: u32 = second.strip_prefix("pod")?.parse().ok()?;
    let third = parts.next()?;
    let (role, rest) = if let Some(r) = third.strip_prefix("tor") {
        (Role::Tor, r)
    } else if let Some(r) = third.strip_prefix("agg") {
        (Role::Agg, r)
    } else if let Some(r) = third.strip_prefix("sw") {
        // Generic production switches are modelled as ToRs.
        (Role::Tor, r)
    } else {
        return None;
    };
    let idx: u32 = rest.parse().ok()?;
    match parts.next() {
        None => Some(ParsedName {
            dc,
            pod: Some(pod),
            role,
            idx,
        }),
        Some(host) => {
            let hidx: u32 = host.strip_prefix("host")?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            // Host names carry the ToR index in `idx`'s place; expose the
            // host index.
            let _ = idx;
            Some(ParsedName {
                dc,
                pod: Some(pod),
                role: Role::Host,
                idx: hidx,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_is_zero_padded() {
        assert_eq!(dc_name(1), "dc01");
        assert_eq!(switch_name(1, 3, Role::Tor, 7), "dc01.pod03.tor07");
        assert_eq!(core_name(12, 0), "dc12.core.c00");
        assert_eq!(host_name(1, 2, 3, 4), "dc01.pod02.tor03.host04");
    }

    #[test]
    fn parse_round_trips() {
        let p = parse_name("dc01.pod03.tor07").unwrap();
        assert_eq!(p.dc, 1);
        assert_eq!(p.pod, Some(3));
        assert_eq!(p.role, Role::Tor);
        assert_eq!(p.idx, 7);

        let c = parse_name("dc12.core.c05").unwrap();
        assert_eq!(c.dc, 12);
        assert_eq!(c.pod, None);
        assert_eq!(c.role, Role::Core);

        let h = parse_name("dc01.pod02.tor03.host04").unwrap();
        assert_eq!(h.role, Role::Host);
        assert_eq!(h.idx, 4);
    }

    #[test]
    fn parse_rejects_foreign_names() {
        for bad in [
            "",
            "dc",
            "dcxx.pod01.tor01",
            "dc01",
            "rack5",
            "dc01.pod01.fw01",
        ] {
            assert!(parse_name(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn generic_sw_prefix_parses_as_tor() {
        let p = parse_name("dc02.pod10.sw45").unwrap();
        assert_eq!(p.role, Role::Tor);
        assert_eq!(p.idx, 45);
    }
}
