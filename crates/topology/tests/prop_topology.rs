//! Property tests for the topology substrate.

use occam_topology::{FatTree, ProductionScheme, RegionSpec, Role};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-tree structural counts for any even arity.
    #[test]
    fn fattree_counts(half in 1u32..5) {
        let k = half * 2;
        let ft = FatTree::build(1, k).unwrap();
        prop_assert_eq!(ft.cores.len() as u32, half * half);
        prop_assert_eq!(ft.aggs.iter().map(Vec::len).sum::<usize>() as u32, k * half);
        prop_assert_eq!(ft.tors.iter().map(Vec::len).sum::<usize>() as u32, k * half);
        prop_assert_eq!(ft.all_hosts().len() as u32, k * half * half);
        // Every ToR has degree k/2 hosts + k/2 aggs.
        for pod in &ft.tors {
            for &tor in pod {
                prop_assert_eq!(ft.topo.neighbors(tor).len() as u32, k);
            }
        }
    }

    /// All hosts are pairwise connected and within diameter 6.
    #[test]
    fn fattree_connectivity(half in 1u32..4, a in 0usize..32, b in 0usize..32) {
        let ft = FatTree::build(1, half * 2).unwrap();
        let hosts = ft.all_hosts();
        let (a, b) = (a % hosts.len(), b % hosts.len());
        prop_assume!(a != b);
        let dist = ft.topo.bfs_distances(hosts[a], |_| true);
        let d = dist[hosts[b].0 as usize];
        prop_assert!((2..=6).contains(&d), "distance {d}");
    }

    /// Region specs: device_indices is consistent with contains/overlaps.
    #[test]
    fn region_spec_consistency(
        dc1 in 1u32..4, lo1 in 0u32..6, w1 in 0u32..4,
        dc2 in 1u32..4, lo2 in 0u32..6, w2 in 0u32..4,
    ) {
        let scheme = ProductionScheme { num_dcs: 4, pods_per_dc: 10, switches_per_pod: 8 };
        let a = RegionSpec::PodRange { dc: dc1, lo: lo1, hi: lo1 + w1 };
        let b = RegionSpec::PodRange { dc: dc2, lo: lo2, hi: lo2 + w2 };
        let ia: std::collections::BTreeSet<u32> = a.device_indices(&scheme).into_iter().collect();
        let ib: std::collections::BTreeSet<u32> = b.device_indices(&scheme).into_iter().collect();
        prop_assert_eq!(a.overlaps(&b, &scheme), !ia.is_disjoint(&ib));
        prop_assert_eq!(a.contains(&b, &scheme), ib.is_subset(&ia));
        prop_assert_eq!(a.device_count(&scheme) as usize, ia.len());
    }

    /// Region regexes compile and match exactly the enumerated devices.
    #[test]
    fn region_regex_agrees_with_indices(dc in 1u32..3, lo in 0u32..4, w in 0u32..3) {
        let scheme = ProductionScheme { num_dcs: 3, pods_per_dc: 6, switches_per_pod: 4 };
        let spec = RegionSpec::PodRange { dc, lo, hi: lo + w };
        let pattern = occam_regex::Pattern::new(&spec.to_regex(&scheme)).unwrap();
        let members: std::collections::BTreeSet<u32> =
            spec.device_indices(&scheme).into_iter().collect();
        for idx in 0..scheme.total_devices() as u32 {
            let name = scheme.device_name_at(idx);
            prop_assert_eq!(
                pattern.matches(&name),
                members.contains(&idx),
                "device {} vs region {:?}", name, spec
            );
        }
    }

    /// Host-role devices never appear in all_switches.
    #[test]
    fn switches_exclude_hosts(half in 1u32..4) {
        let ft = FatTree::build(1, half * 2).unwrap();
        for id in ft.all_switches() {
            prop_assert_ne!(ft.topo.device(id).role, Role::Host);
        }
    }
}
