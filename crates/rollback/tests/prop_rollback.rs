//! Property tests for rollback-plan generation.
//!
//! Strategy: generate a random *valid* task (a complete log under the
//! Table 1 grammar), truncate it at an arbitrary failure point, generate a
//! plan, and run both the forward prefix and the plan against an abstract
//! state machine. The plan must restore the database, leave no device
//! drained, and leave no test environment up — for every truncation point
//! of every generated task.

use occam_rollback::{parse_log, rollback_plan, LogEntry, OpType, UndoStep};
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a complete, grammar-valid sequence of op types.
fn arb_task() -> impl Strategy<Value = Vec<OpType>> {
    // A step: cfg_change, testing, or (recursively) offline.
    let leaf = prop_oneof![
        (1usize..4).prop_map(|n| {
            let mut v = vec![OpType::DbChange; n];
            v.push(OpType::PushCfg);
            v
        }),
        (0usize..4).prop_map(|n| {
            let mut v = vec![OpType::Prepare];
            v.extend(std::iter::repeat_n(OpType::Test, n));
            v.push(OpType::Unprepare);
            v
        }),
    ];
    let step = leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            2 => inner.clone(),
            1 => proptest::collection::vec(inner, 1..3).prop_map(|steps| {
                let mut v = vec![OpType::Drain];
                for s in steps {
                    v.extend(s);
                }
                v.push(OpType::Undrain);
                v
            }),
        ]
    });
    proptest::collection::vec(step, 1..5).prop_map(|steps| steps.concat())
}

/// Abstract machine tracking the effects the plan must undo.
#[derive(Clone, PartialEq, Debug)]
struct Machine {
    /// Database "rows": one counter per DB_CHANGE index writes row 0 with a
    /// new version; revert restores the prior version.
    db: i64,
    /// History of db values so reverts can restore (entry index → value
    /// before that write).
    before: HashMap<usize, i64>,
    /// Last-pushed configuration (mirrors `db` at push time).
    config: i64,
    /// Net drain depth (0 = all traffic flowing).
    drain_depth: i64,
    /// Net prepared-environment depth (0 = no temp env).
    prepare_depth: i64,
}

impl Machine {
    fn new() -> Machine {
        Machine {
            db: 0,
            before: HashMap::new(),
            config: 0,
            drain_depth: 0,
            prepare_depth: 0,
        }
    }

    fn run_forward(&mut self, log: &[OpType]) {
        for (i, t) in log.iter().enumerate() {
            match t {
                OpType::DbChange => {
                    self.before.insert(i, self.db);
                    self.db = i as i64 + 1;
                }
                OpType::PushCfg => self.config = self.db,
                OpType::Drain => self.drain_depth += 1,
                OpType::Undrain => self.drain_depth -= 1,
                OpType::Prepare => self.prepare_depth += 1,
                OpType::Unprepare => self.prepare_depth -= 1,
                OpType::Test => {}
            }
        }
    }

    fn run_plan(&mut self, plan: &[UndoStep]) {
        for s in plan {
            match s {
                UndoStep::RevertDb { entry } => {
                    self.db = *self.before.get(entry).expect("entry was a DB write");
                }
                UndoStep::PushCfg { .. } => self.config = self.db,
                UndoStep::Redrain { .. } => self.drain_depth += 1,
                UndoStep::Undrain { .. } => self.drain_depth -= 1,
                UndoStep::Unprepare { .. } => self.prepare_depth -= 1,
            }
        }
    }
}

fn to_entries(types: &[OpType]) -> Vec<LogEntry> {
    types
        .iter()
        .map(|&t| LogEntry::ok(t, t.name().to_lowercase()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every prefix of a valid task parses, and its rollback plan restores
    /// the abstract state.
    #[test]
    fn plan_restores_state_at_every_failure_point(task in arb_task(), cut in 0usize..64) {
        let cut = cut % (task.len() + 1);
        let prefix = &task[..cut];
        let log = to_entries(prefix);
        let tree = parse_log(&log)
            .unwrap_or_else(|e| panic!("prefix of valid task failed to parse: {e}"));
        let plan = rollback_plan(&tree);

        let mut m = Machine::new();
        m.run_forward(prefix);
        m.run_plan(&plan.steps);

        prop_assert_eq!(m.db, 0, "database not restored");
        prop_assert_eq!(m.drain_depth, 0, "devices left drained (or over-undrained)");
        prop_assert_eq!(m.prepare_depth, 0, "test environment leaked");
        // If any DB write happened and the plan reverted it, the pushed
        // config must be consistent with the restored database whenever the
        // task had pushed at all.
        if prefix.contains(&OpType::PushCfg) {
            prop_assert_eq!(m.config, 0, "device config inconsistent with restored DB");
        }
    }

    /// Plans never revert an entry that is not a DB_CHANGE, never undrain
    /// without a matching logged DRAIN, and reference only in-range entries.
    #[test]
    fn plan_references_are_well_formed(task in arb_task(), cut in 0usize..64) {
        let cut = cut % (task.len() + 1);
        let prefix = &task[..cut];
        let log = to_entries(prefix);
        let plan = rollback_plan(&parse_log(&log).unwrap());
        for s in &plan.steps {
            match s {
                UndoStep::RevertDb { entry } => {
                    prop_assert_eq!(prefix[*entry], OpType::DbChange);
                }
                UndoStep::PushCfg { db_entries } => {
                    prop_assert!(!db_entries.is_empty());
                    for &e in db_entries {
                        prop_assert_eq!(prefix[e], OpType::DbChange);
                    }
                }
                UndoStep::Redrain { drain_entry } | UndoStep::Undrain { drain_entry } => {
                    prop_assert_eq!(prefix[*drain_entry], OpType::Drain);
                }
                UndoStep::Unprepare { prepare_entry } => {
                    prop_assert_eq!(prefix[*prepare_entry], OpType::Prepare);
                }
            }
        }
    }

    /// A complete (non-failed) testing-only task yields an empty plan; a
    /// task cut inside testing yields exactly one UNPREPARE.
    #[test]
    fn testing_blocks_are_side_effect_free(n_tests in 0usize..4, cut in 0usize..8) {
        let mut task = vec![OpType::Prepare];
        task.extend(std::iter::repeat_n(OpType::Test, n_tests));
        task.push(OpType::Unprepare);
        let cut = cut % (task.len() + 1);
        let plan = rollback_plan(&parse_log(&to_entries(&task[..cut])).unwrap());
        if cut == task.len() || cut == 0 {
            prop_assert!(plan.is_empty());
        } else {
            prop_assert_eq!(plan.steps.len(), 1);
            let is_unprepare = matches!(plan.steps[0], UndoStep::Unprepare { .. });
            prop_assert!(is_unprepare);
        }
    }
}
