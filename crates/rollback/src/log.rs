//! The typed execution log a task accumulates.
//!
//! The runtime records every stateful operation (database writes and device
//! functions) together with its Table 2 type; on failure, the log's
//! successful prefix is parsed against the Table 1 grammar to synthesize a
//! rollback plan.

use crate::optype::OpType;

/// Completion status of one logged operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpStatus {
    /// The operation completed and its effects are visible.
    Ok,
    /// The operation failed; its effects did not commit.
    Failed,
}

/// One logged stateful operation.
#[derive(Clone, PartialEq, Debug)]
pub struct LogEntry {
    /// The Table 2 type label.
    pub typ: OpType,
    /// Human-readable form, e.g. `set(FIRMWARE_VERSION)` or
    /// `apply(f_drain)`.
    pub label: String,
    /// Devices the operation touched.
    pub devices: Vec<String>,
    /// Completion status.
    pub status: OpStatus,
}

impl LogEntry {
    /// A successful entry.
    pub fn ok(typ: OpType, label: impl Into<String>) -> LogEntry {
        LogEntry {
            typ,
            label: label.into(),
            devices: Vec::new(),
            status: OpStatus::Ok,
        }
    }

    /// A failed entry.
    pub fn failed(typ: OpType, label: impl Into<String>) -> LogEntry {
        LogEntry {
            typ,
            label: label.into(),
            devices: Vec::new(),
            status: OpStatus::Failed,
        }
    }

    /// Attaches the devices the operation touched.
    pub fn with_devices(mut self, devices: Vec<String>) -> LogEntry {
        self.devices = devices;
        self
    }
}

/// Renders a log as the paper does: `DRAIN → DB_CHANGE → … → X` with `X`
/// marking a failed step.
pub fn render_log(log: &[LogEntry]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for e in log {
        parts.push(e.typ.name().to_string());
        if e.status == OpStatus::Failed {
            parts.push("X".to_string());
            break;
        }
    }
    parts.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_failure() {
        let log = vec![
            LogEntry::ok(OpType::Drain, "apply(f_drain)"),
            LogEntry::ok(OpType::DbChange, "set(FIRMWARE_VERSION)"),
            LogEntry::failed(OpType::Test, "apply(f_optic_test)"),
        ];
        assert_eq!(render_log(&log), "DRAIN -> DB_CHANGE -> TEST -> X");
    }

    #[test]
    fn render_success_has_no_marker() {
        let log = vec![
            LogEntry::ok(OpType::Drain, "d"),
            LogEntry::ok(OpType::Undrain, "u"),
        ];
        assert_eq!(render_log(&log), "DRAIN -> UNDRAIN");
    }

    #[test]
    fn builder_helpers() {
        let e = LogEntry::ok(OpType::Drain, "apply(f_drain)")
            .with_devices(vec!["dc01.pod00.sw00".into()]);
        assert_eq!(e.devices.len(), 1);
        assert_eq!(e.status, OpStatus::Ok);
    }
}
