//! # occam-rollback
//!
//! Rollback-plan generation for failed management tasks (paper §6).
//!
//! A task's stateful operations are recorded in a typed execution log
//! ([`LogEntry`], with the Table 2 type labels). On failure, the log's
//! successful prefix is parsed against the Table 1 grammar into a syntax
//! tree (Figure 6), and the tree is walked with the per-pattern reversal
//! rules to produce a concrete [`RollbackPlan`].
//!
//! The key insight reproduced here is that correct reversal order depends
//! on operation *semantics*, not just reverse chronology: a `cfg_change`
//! rolls back database-first-then-push (same order as execution), and a
//! completed `offline` block must re-drain before undoing its interior.
//!
//! # Examples
//!
//! ```
//! use occam_rollback::{parse_log, rollback_plan, LogEntry, OpType};
//!
//! // The paper's failed firmware upgrade:
//! // DRAIN -> set -> set -> f_push -> f_alloc_ip -> ping -> optic -> X.
//! let mut log = vec![
//!     LogEntry::ok(OpType::Drain, "apply(f_drain)"),
//!     LogEntry::ok(OpType::DbChange, "set(FIRMWARE_VERSION)"),
//!     LogEntry::ok(OpType::DbChange, "set(FIRMWARE_BINARY)"),
//!     LogEntry::ok(OpType::PushCfg, "apply(f_push)"),
//!     LogEntry::ok(OpType::Prepare, "apply(f_alloc_ip)"),
//!     LogEntry::ok(OpType::Test, "apply(f_ping_test)"),
//!     LogEntry::failed(OpType::Test, "apply(f_optic_test)"),
//! ];
//! let tree = parse_log(&log).unwrap();
//! let plan = rollback_plan(&tree);
//! assert_eq!(
//!     plan.arrow_notation(),
//!     "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN",
//! );
//! # let _ = &mut log;
//! ```

pub mod grammar;
pub mod log;
pub mod optype;
pub mod plan;

pub use grammar::{parse_log, render_tree, GrammarError, Step, SyntaxTree};
pub use log::{render_log, LogEntry, OpStatus};
pub use optype::{func_optype, OpType};
pub use plan::{rollback_plan, RollbackPlan, UndoStep};
