//! The Table 1 grammar: parsing a typed execution log into a syntax tree.
//!
//! A complete log matches the *normal* patterns P1–P5; a log truncated by a
//! failure matches the *failure* patterns P6–P10, in which exactly the last
//! step may be broken (an unfinished `cfg_change`, `offline`, or `testing`
//! block). The parser is a recursive descent over the sequence of
//! [`OpType`] labels, producing the "syntax tree"-like structure of the
//! paper's Figure 6.

use crate::log::{LogEntry, OpStatus};
use crate::optype::OpType;

/// A parsed step (pattern P2/P7). Indices reference entries of the parsed
/// log slice.
#[derive(Clone, PartialEq, Debug)]
pub enum Step {
    /// P3/P8: a series of database updates, then (if complete) a config
    /// push.
    CfgChange {
        /// Indices of the `DB_CHANGE` entries, in execution order.
        db: Vec<usize>,
        /// Index of the `PUSH_CFG` entry; `None` marks a broken block.
        push: Option<usize>,
    },
    /// P4/P9: drain, inner sequence, then (if complete) undrain.
    Offline {
        /// Index of the `DRAIN` entry.
        drain: usize,
        /// The inner maintenance sequence.
        inner: Vec<Step>,
        /// Index of the `UNDRAIN` entry; `None` marks a broken block.
        undrain: Option<usize>,
    },
    /// P5/P10: prepare, tests, then (if complete) unprepare.
    Testing {
        /// Index of the `PREPARE` entry.
        prepare: usize,
        /// Indices of the `TEST` entries.
        tests: Vec<usize>,
        /// Index of the `UNPREPARE` entry; `None` marks a broken block.
        unprepare: Option<usize>,
    },
}

impl Step {
    /// True if this step (or any nested step) is a broken failure pattern.
    pub fn is_broken(&self) -> bool {
        match self {
            Step::CfgChange { push, .. } => push.is_none(),
            Step::Offline { inner, undrain, .. } => {
                undrain.is_none() || inner.iter().any(Step::is_broken)
            }
            Step::Testing { unprepare, .. } => unprepare.is_none(),
        }
    }
}

/// The parsed log: a sequence of steps (pattern P1/P6).
#[derive(Clone, PartialEq, Debug)]
pub struct SyntaxTree {
    /// Top-level steps in execution order.
    pub steps: Vec<Step>,
    /// Number of log entries consumed (the successful prefix).
    pub consumed: usize,
}

impl SyntaxTree {
    /// True if the log matched a failure pattern (some block is broken).
    pub fn is_failure(&self) -> bool {
        self.steps.iter().any(Step::is_broken)
    }
}

/// An error parsing a log against the grammar.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GrammarError {
    /// Index of the offending entry.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for GrammarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log entry {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for GrammarError {}

struct Parser<'a> {
    types: &'a [OpType],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<OpType> {
        self.types.get(self.pos).copied()
    }

    fn err(&self, msg: impl Into<String>) -> GrammarError {
        GrammarError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    /// seq := step* (stops at UNDRAIN, which closes an enclosing block, or
    /// at end of input).
    fn parse_seq(&mut self) -> Result<Vec<Step>, GrammarError> {
        let mut steps = Vec::new();
        while let Some(t) = self.peek() {
            match t {
                OpType::Undrain => break,
                _ => steps.push(self.parse_step()?),
            }
        }
        Ok(steps)
    }

    fn parse_step(&mut self) -> Result<Step, GrammarError> {
        match self.peek() {
            Some(OpType::DbChange) => self.parse_cfg_change(),
            // A push with no preceding database writes re-applies current
            // state: a cfg_change with an empty db_list (generalizing P3;
            // its rollback is empty).
            Some(OpType::PushCfg) => {
                let push = self.pos;
                self.pos += 1;
                Ok(Step::CfgChange {
                    db: Vec::new(),
                    push: Some(push),
                })
            }
            Some(OpType::Drain) => self.parse_offline(),
            Some(OpType::Prepare) => self.parse_testing(),
            Some(other) => Err(self.err(format!(
                "unexpected {other} at step boundary (expected DB_CHANGE, PUSH_CFG, DRAIN, or PREPARE)"
            ))),
            None => Err(self.err("unexpected end of log")),
        }
    }

    /// cfg_change := DB_CHANGE+ PUSH_CFG | DB_CHANGE+ (broken, only at end).
    fn parse_cfg_change(&mut self) -> Result<Step, GrammarError> {
        let mut db = Vec::new();
        while self.peek() == Some(OpType::DbChange) {
            db.push(self.pos);
            self.pos += 1;
        }
        match self.peek() {
            Some(OpType::PushCfg) => {
                let push = self.pos;
                self.pos += 1;
                Ok(Step::CfgChange {
                    db,
                    push: Some(push),
                })
            }
            None => Ok(Step::CfgChange { db, push: None }),
            // A db_list not followed by PUSH_CFG mid-log: the grammar allows
            // a broken cfg_change only at the truncation point.
            Some(other) => Err(self.err(format!(
                "db_list followed by {other}; expected PUSH_CFG or end of log"
            ))),
        }
    }

    /// offline := DRAIN seq UNDRAIN | DRAIN seq | DRAIN (broken at end).
    fn parse_offline(&mut self) -> Result<Step, GrammarError> {
        let drain = self.pos;
        self.pos += 1;
        let inner = self.parse_seq()?;
        match self.peek() {
            Some(OpType::Undrain) => {
                let undrain = self.pos;
                self.pos += 1;
                Ok(Step::Offline {
                    drain,
                    inner,
                    undrain: Some(undrain),
                })
            }
            None => Ok(Step::Offline {
                drain,
                inner,
                undrain: None,
            }),
            Some(other) => Err(self.err(format!("offline block interrupted by {other}"))),
        }
    }

    /// testing := PREPARE TEST* UNPREPARE | PREPARE TEST* (broken at end).
    fn parse_testing(&mut self) -> Result<Step, GrammarError> {
        let prepare = self.pos;
        self.pos += 1;
        let mut tests = Vec::new();
        while self.peek() == Some(OpType::Test) {
            tests.push(self.pos);
            self.pos += 1;
        }
        match self.peek() {
            Some(OpType::Unprepare) => {
                let unprepare = self.pos;
                self.pos += 1;
                Ok(Step::Testing {
                    prepare,
                    tests,
                    unprepare: Some(unprepare),
                })
            }
            None => Ok(Step::Testing {
                prepare,
                tests,
                unprepare: None,
            }),
            Some(other) => Err(self.err(format!(
                "testing block contains {other}; expected TEST or UNPREPARE"
            ))),
        }
    }
}

/// Parses the successful prefix of a log into a syntax tree.
///
/// A trailing failed entry is excluded: its effects did not commit, so it
/// needs no undoing (the paper's example likewise does not re-run the
/// failed `f_optic_test`). Entries after the first failure are rejected.
pub fn parse_log(log: &[LogEntry]) -> Result<SyntaxTree, GrammarError> {
    let mut types = Vec::with_capacity(log.len());
    for (i, e) in log.iter().enumerate() {
        match e.status {
            OpStatus::Ok => types.push(e.typ),
            OpStatus::Failed => {
                if i + 1 != log.len() {
                    return Err(GrammarError {
                        at: i,
                        msg: "entries recorded after a failed operation".into(),
                    });
                }
            }
        }
    }
    let mut p = Parser {
        types: &types,
        pos: 0,
    };
    let steps = p.parse_seq()?;
    if p.pos != types.len() {
        // An UNDRAIN with no matching DRAIN stops parse_seq early.
        return Err(p.err("UNDRAIN without an open DRAIN block"));
    }
    Ok(SyntaxTree {
        steps,
        consumed: types.len(),
    })
}

/// Renders the syntax tree in an indented, Figure 6-like form.
pub fn render_tree(tree: &SyntaxTree, log: &[LogEntry]) -> String {
    fn step(out: &mut String, s: &Step, log: &[LogEntry], depth: usize) {
        let pad = "  ".repeat(depth);
        let lbl = |i: usize| {
            log.get(i)
                .map(|e| e.label.clone())
                .unwrap_or_else(|| format!("#{i}"))
        };
        match s {
            Step::CfgChange { db, push } => {
                let tag = if push.is_some() {
                    "cfg_change"
                } else {
                    "b_cfg_change"
                };
                out.push_str(&format!("{pad}{tag}\n"));
                for &i in db {
                    out.push_str(&format!("{pad}  DB_CHANGE {}\n", lbl(i)));
                }
                if let Some(p) = push {
                    out.push_str(&format!("{pad}  PUSH_CFG {}\n", lbl(*p)));
                }
            }
            Step::Offline {
                drain,
                inner,
                undrain,
            } => {
                let tag = if undrain.is_some() && !inner.iter().any(Step::is_broken) {
                    "offline"
                } else {
                    "b_offline"
                };
                out.push_str(&format!("{pad}{tag}\n"));
                out.push_str(&format!("{pad}  DRAIN {}\n", lbl(*drain)));
                for st in inner {
                    step(out, st, log, depth + 1);
                }
                if let Some(u) = undrain {
                    out.push_str(&format!("{pad}  UNDRAIN {}\n", lbl(*u)));
                }
            }
            Step::Testing {
                prepare,
                tests,
                unprepare,
            } => {
                let tag = if unprepare.is_some() {
                    "testing"
                } else {
                    "b_testing"
                };
                out.push_str(&format!("{pad}{tag}\n"));
                out.push_str(&format!("{pad}  PREPARE {}\n", lbl(*prepare)));
                for &t in tests {
                    out.push_str(&format!("{pad}  TEST {}\n", lbl(t)));
                }
                if let Some(u) = unprepare {
                    out.push_str(&format!("{pad}  UNPREPARE {}\n", lbl(*u)));
                }
            }
        }
    }
    let root = if tree.is_failure() { "b_seq" } else { "seq" };
    let mut out = format!("{root}\n");
    for s in &tree.steps {
        step(&mut out, s, log, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogEntry;

    fn entries(types: &[OpType]) -> Vec<LogEntry> {
        types
            .iter()
            .map(|&t| LogEntry::ok(t, t.name().to_lowercase()))
            .collect()
    }

    use OpType::*;

    #[test]
    fn parses_complete_firmware_upgrade() {
        // DRAIN (DB DB PUSH) (PREPARE TEST TEST UNPREPARE) UNDRAIN.
        let log = entries(&[
            Drain, DbChange, DbChange, PushCfg, Prepare, Test, Test, Unprepare, Undrain,
        ]);
        let tree = parse_log(&log).unwrap();
        assert!(!tree.is_failure());
        assert_eq!(tree.steps.len(), 1);
        match &tree.steps[0] {
            Step::Offline { inner, undrain, .. } => {
                assert!(undrain.is_some());
                assert_eq!(inner.len(), 2);
                assert!(
                    matches!(inner[0], Step::CfgChange { ref db, push: Some(_) } if db.len() == 2)
                );
                assert!(matches!(
                    inner[1],
                    Step::Testing {
                        unprepare: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("expected offline, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_failure_example() {
        // DRAIN DB DB PUSH PREPARE TEST TEST, then f_optic_test fails.
        let mut log = entries(&[Drain, DbChange, DbChange, PushCfg, Prepare, Test, Test]);
        log.push(LogEntry::failed(Test, "apply(f_optic_test)"));
        let tree = parse_log(&log).unwrap();
        assert!(tree.is_failure());
        match &tree.steps[0] {
            Step::Offline { inner, undrain, .. } => {
                assert!(undrain.is_none(), "drain block is broken");
                assert!(matches!(
                    inner[1],
                    Step::Testing {
                        unprepare: None,
                        ..
                    }
                ));
            }
            other => panic!("expected b_offline, got {other:?}"),
        }
    }

    #[test]
    fn broken_cfg_change_only_at_end() {
        // DB DB at end: broken cfg_change, fine.
        let log = entries(&[DbChange, DbChange]);
        let tree = parse_log(&log).unwrap();
        assert!(tree.is_failure());
        // DB followed by DRAIN mid-log: grammar violation.
        let log = entries(&[DbChange, Drain]);
        assert!(parse_log(&log).is_err());
    }

    #[test]
    fn nested_offline_blocks() {
        // DRAIN (DRAIN (DB PUSH) UNDRAIN) UNDRAIN.
        let log = entries(&[Drain, Drain, DbChange, PushCfg, Undrain, Undrain]);
        let tree = parse_log(&log).unwrap();
        assert!(!tree.is_failure());
        match &tree.steps[0] {
            Step::Offline { inner, .. } => {
                assert!(matches!(inner[0], Step::Offline { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_drain_is_broken_offline() {
        let log = entries(&[Drain]);
        let tree = parse_log(&log).unwrap();
        assert!(tree.is_failure());
        assert!(matches!(
            tree.steps[0],
            Step::Offline { undrain: None, ref inner, .. } if inner.is_empty()
        ));
    }

    #[test]
    fn bare_prepare_is_broken_testing() {
        let log = entries(&[Prepare]);
        let tree = parse_log(&log).unwrap();
        assert!(matches!(
            tree.steps[0],
            Step::Testing { unprepare: None, ref tests, .. } if tests.is_empty()
        ));
    }

    #[test]
    fn rejects_malformed_logs() {
        for bad in [
            vec![Undrain],
            vec![Unprepare],
            vec![Test],
            vec![Drain, Undrain, Undrain],
            vec![Prepare, DbChange, Unprepare],
        ] {
            assert!(parse_log(&entries(&bad)).is_err(), "{bad:?}");
        }
        // A bare PUSH_CFG is a cfg_change with an empty db_list — valid,
        // complete, and with an empty rollback.
        let tree = parse_log(&entries(&[PushCfg])).unwrap();
        assert!(!tree.is_failure());
    }

    #[test]
    fn entries_after_failure_rejected() {
        let log = vec![
            LogEntry::failed(DbChange, "set(X)"),
            LogEntry::ok(PushCfg, "apply(f_push)"),
        ];
        assert!(parse_log(&log).is_err());
    }

    #[test]
    fn failed_tail_entry_is_excluded() {
        let mut log = entries(&[DbChange]);
        log.push(LogEntry::failed(PushCfg, "apply(f_push)"));
        let tree = parse_log(&log).unwrap();
        assert_eq!(tree.consumed, 1);
        assert!(matches!(tree.steps[0], Step::CfgChange { push: None, .. }));
    }

    #[test]
    fn empty_log_is_empty_success() {
        let tree = parse_log(&[]).unwrap();
        assert!(tree.steps.is_empty());
        assert!(!tree.is_failure());
    }

    #[test]
    fn render_marks_broken_blocks() {
        let mut log = entries(&[Drain, DbChange]);
        log.push(LogEntry::failed(PushCfg, "apply(f_push)"));
        let tree = parse_log(&log).unwrap();
        let s = render_tree(&tree, &log);
        assert!(s.starts_with("b_seq"));
        assert!(s.contains("b_offline"));
        assert!(s.contains("b_cfg_change"));
    }
}
