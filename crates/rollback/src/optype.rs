//! Operation type labels (paper Table 2).
//!
//! A small, fixed set of types is attached to the stateful operations a
//! task performs; the rollback grammar (Table 1) is written over these
//! types, not over concrete device functions.

/// The type label of a logged management operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpType {
    /// A `set(·)` database write.
    DbChange,
    /// A device function pushing configuration (`apply(f_push)`).
    PushCfg,
    /// A device function taking devices offline (`apply(f_drain)`).
    Drain,
    /// A device function restoring traffic (`apply(f_undrain)`).
    Undrain,
    /// Setting up a temporary test environment (`apply(f_alloc_ip)`).
    Prepare,
    /// Tearing down a test environment (`apply(f_dealloc_ip)`).
    Unprepare,
    /// Running a test (`apply(f_ping_test)`, `apply(f_optic_test)`).
    Test,
}

impl OpType {
    /// The label used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            OpType::DbChange => "DB_CHANGE",
            OpType::PushCfg => "PUSH_CFG",
            OpType::Drain => "DRAIN",
            OpType::Undrain => "UNDRAIN",
            OpType::Prepare => "PREPARE",
            OpType::Unprepare => "UNPREPARE",
            OpType::Test => "TEST",
        }
    }
}

impl std::fmt::Display for OpType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps a device-function name to its type label, mirroring Table 2.
///
/// Returns `None` for functions outside the labelled subset (they are
/// treated as untyped steps and rolled back by their registered inverses,
/// pattern P1).
pub fn func_optype(func: &str) -> Option<OpType> {
    match func {
        "f_push" => Some(OpType::PushCfg),
        "f_drain" => Some(OpType::Drain),
        "f_undrain" => Some(OpType::Undrain),
        "f_alloc_ip" => Some(OpType::Prepare),
        "f_dealloc_ip" => Some(OpType::Unprepare),
        "f_ping_test" | "f_optic_test" => Some(OpType::Test),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_mapping() {
        assert_eq!(func_optype("f_push"), Some(OpType::PushCfg));
        assert_eq!(func_optype("f_drain"), Some(OpType::Drain));
        assert_eq!(func_optype("f_undrain"), Some(OpType::Undrain));
        assert_eq!(func_optype("f_alloc_ip"), Some(OpType::Prepare));
        assert_eq!(func_optype("f_dealloc_ip"), Some(OpType::Unprepare));
        assert_eq!(func_optype("f_ping_test"), Some(OpType::Test));
        assert_eq!(func_optype("f_optic_test"), Some(OpType::Test));
        assert_eq!(func_optype("f_mystery"), None);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(OpType::DbChange.to_string(), "DB_CHANGE");
        assert_eq!(OpType::PushCfg.to_string(), "PUSH_CFG");
    }
}
