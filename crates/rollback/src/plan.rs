//! Rollback-plan generation: walking the syntax tree with the reversal
//! rules of Table 1.
//!
//! The plan is a sequence of concrete undo steps referencing log entries,
//! so the executor (or the human operator) can recover the exact devices
//! and old attribute values involved.

use crate::grammar::{Step, SyntaxTree};
use crate::log::LogEntry;

/// One step of a rollback plan.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UndoStep {
    /// Restore the database state overwritten by the `DB_CHANGE` at `entry`.
    RevertDb {
        /// Log index of the write to revert.
        entry: usize,
    },
    /// Re-push device configuration so physical state matches the reverted
    /// database rows (the non-linear case of pattern P3: database first,
    /// *then* the config push).
    PushCfg {
        /// Log indices of the reverted `DB_CHANGE` writes this push covers.
        db_entries: Vec<usize>,
    },
    /// Re-drain devices before undoing work inside a *completed* offline
    /// block (pattern P4's rollback starts with DRAIN).
    Redrain {
        /// Log index of the original `DRAIN`.
        drain_entry: usize,
    },
    /// Restore traffic to the devices drained at `drain_entry`.
    Undrain {
        /// Log index of the original `DRAIN`.
        drain_entry: usize,
    },
    /// Tear down the test environment set up at `prepare_entry`.
    Unprepare {
        /// Log index of the original `PREPARE`.
        prepare_entry: usize,
    },
}

/// A complete rollback plan.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RollbackPlan {
    /// Undo steps in execution order.
    pub steps: Vec<UndoStep>,
}

impl RollbackPlan {
    /// True if nothing needs undoing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the plan in the paper's arrow notation, e.g.
    /// `UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN`.
    pub fn arrow_notation(&self) -> String {
        let parts: Vec<&str> = self
            .steps
            .iter()
            .map(|s| match s {
                UndoStep::RevertDb { .. } => "r(DB_CHANGE)",
                UndoStep::PushCfg { .. } => "PUSH_CFG",
                UndoStep::Redrain { .. } => "DRAIN",
                UndoStep::Undrain { .. } => "UNDRAIN",
                UndoStep::Unprepare { .. } => "UNPREPARE",
            })
            .collect();
        parts.join(" -> ")
    }

    /// Renders operator-facing step descriptions with device context drawn
    /// from the log.
    pub fn describe(&self, log: &[LogEntry]) -> Vec<String> {
        let devices = |i: usize| -> String {
            match log.get(i) {
                Some(e) if !e.devices.is_empty() => format!(" on [{}]", e.devices.join(", ")),
                _ => String::new(),
            }
        };
        let label = |i: usize| -> String {
            log.get(i)
                .map(|e| e.label.clone())
                .unwrap_or_else(|| format!("#{i}"))
        };
        self.steps
            .iter()
            .map(|s| match s {
                UndoStep::RevertDb { entry } => {
                    format!("revert {}{}", label(*entry), devices(*entry))
                }
                UndoStep::PushCfg { db_entries } => {
                    let first = db_entries.first().copied().unwrap_or(0);
                    format!("push configuration{}", devices(first))
                }
                UndoStep::Redrain { drain_entry } => {
                    format!("re-drain traffic{}", devices(*drain_entry))
                }
                UndoStep::Undrain { drain_entry } => {
                    format!("undrain traffic{}", devices(*drain_entry))
                }
                UndoStep::Unprepare { prepare_entry } => {
                    format!("tear down test environment{}", devices(*prepare_entry))
                }
            })
            .collect()
    }
}

/// Generates the rollback plan for a parsed log (Table 1 reversal rules).
pub fn rollback_plan(tree: &SyntaxTree) -> RollbackPlan {
    let mut steps = Vec::new();
    emit_seq(&tree.steps, &mut steps);
    RollbackPlan { steps }
}

/// r(seq): undo steps in reverse execution order (P1/P6).
fn emit_seq(seq: &[Step], out: &mut Vec<UndoStep>) {
    for step in seq.iter().rev() {
        emit_step(step, out);
    }
}

fn emit_step(step: &Step, out: &mut Vec<UndoStep>) {
    match step {
        // P3: r(cfg_change) = r(db_list) -> PUSH_CFG. The database reverts
        // first and only then the configuration is pushed — same order as
        // execution, not a naive reversal.
        // P8: a broken cfg_change never pushed, so only the DB reverts.
        Step::CfgChange { db, push } => {
            for &e in db.iter().rev() {
                out.push(UndoStep::RevertDb { entry: e });
            }
            if let Some(p) = push {
                // A bare push (no preceding DB writes) still changed device
                // state, so the undo must re-push from the database; its
                // device list comes from the push entry itself.
                let db_entries = if db.is_empty() { vec![*p] } else { db.clone() };
                out.push(UndoStep::PushCfg { db_entries });
            }
        }
        // P4: r(offline) = DRAIN -> r(seq) -> UNDRAIN (devices must be
        // offline again while the inner work is undone).
        // P9: broken offline is still drained, so no re-drain.
        Step::Offline {
            drain,
            inner,
            undrain,
        } => {
            let completed = undrain.is_some();
            if completed {
                out.push(UndoStep::Redrain {
                    drain_entry: *drain,
                });
            }
            emit_seq(inner, out);
            out.push(UndoStep::Undrain {
                drain_entry: *drain,
            });
        }
        // P5: a completed testing block is side-effect free (environment
        // set up and torn down, tests read-only): nothing to undo.
        // P10: a broken one still has its environment up.
        Step::Testing {
            prepare, unprepare, ..
        } => {
            if unprepare.is_none() {
                out.push(UndoStep::Unprepare {
                    prepare_entry: *prepare,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::parse_log;
    use crate::log::LogEntry;
    use crate::optype::OpType::*;

    fn ok_entries(types: &[crate::optype::OpType]) -> Vec<LogEntry> {
        types
            .iter()
            .map(|&t| LogEntry::ok(t, t.name().to_lowercase()))
            .collect()
    }

    fn plan_for(types: &[crate::optype::OpType]) -> RollbackPlan {
        rollback_plan(&parse_log(&ok_entries(types)).unwrap())
    }

    #[test]
    fn paper_firmware_failure_plan() {
        // §6 example: DRAIN DB DB PUSH PREPARE TEST TEST -> X.
        let plan = plan_for(&[Drain, DbChange, DbChange, PushCfg, Prepare, Test, Test]);
        assert_eq!(
            plan.arrow_notation(),
            "UNPREPARE -> r(DB_CHANGE) -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN"
        );
        // The DB reverts happen in reverse write order (entry 2 then 1).
        assert_eq!(plan.steps[1], UndoStep::RevertDb { entry: 2 });
        assert_eq!(plan.steps[2], UndoStep::RevertDb { entry: 1 });
    }

    #[test]
    fn completed_task_plan_rewinds_with_redrain() {
        // A fully completed offline block: rollback per P4 is
        // DRAIN -> r(inner) -> UNDRAIN.
        let plan = plan_for(&[Drain, DbChange, PushCfg, Prepare, Test, Unprepare, Undrain]);
        assert_eq!(
            plan.arrow_notation(),
            "DRAIN -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN"
        );
    }

    #[test]
    fn broken_db_list_reverts_without_push() {
        // P8: DB DB (push never ran).
        let plan = plan_for(&[DbChange, DbChange]);
        assert_eq!(plan.arrow_notation(), "r(DB_CHANGE) -> r(DB_CHANGE)");
        assert_eq!(plan.steps[0], UndoStep::RevertDb { entry: 1 });
    }

    #[test]
    fn bare_drain_plan_is_undrain() {
        // P9 third case: DRAIN -> X. Plan: UNDRAIN.
        let plan = plan_for(&[Drain]);
        assert_eq!(plan.arrow_notation(), "UNDRAIN");
    }

    #[test]
    fn bare_prepare_plan_is_unprepare() {
        // P10 second case.
        let plan = plan_for(&[Prepare]);
        assert_eq!(plan.arrow_notation(), "UNPREPARE");
    }

    #[test]
    fn completed_testing_needs_no_undo() {
        let plan = plan_for(&[Prepare, Test, Test, Unprepare]);
        assert!(plan.is_empty());
    }

    #[test]
    fn multi_step_sequences_reverse() {
        // Two cfg_changes in sequence: the later one reverts first.
        let plan = plan_for(&[DbChange, PushCfg, DbChange, PushCfg]);
        assert_eq!(
            plan.arrow_notation(),
            "r(DB_CHANGE) -> PUSH_CFG -> r(DB_CHANGE) -> PUSH_CFG"
        );
        assert_eq!(plan.steps[0], UndoStep::RevertDb { entry: 2 });
        assert_eq!(plan.steps[2], UndoStep::RevertDb { entry: 0 });
    }

    #[test]
    fn nested_offline_plan_order() {
        // DRAIN₀ (DB₁ PUSH₂) DRAIN₃ (DB₄ PUSH₅) -> X (inner block broken).
        let plan = plan_for(&[Drain, DbChange, PushCfg, Drain, DbChange, PushCfg]);
        // Undo inner drained block first: r(DB₄) PUSH UNDRAIN(₃); then the
        // outer completed cfg_change: r(DB₁) PUSH; then UNDRAIN(₀).
        assert_eq!(
            plan.arrow_notation(),
            "r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN"
        );
        assert_eq!(plan.steps[2], UndoStep::Undrain { drain_entry: 3 });
        assert_eq!(plan.steps[5], UndoStep::Undrain { drain_entry: 0 });
    }

    #[test]
    fn describe_includes_devices() {
        let log = vec![
            LogEntry::ok(Drain, "apply(f_drain)").with_devices(vec!["dc01.pod00.sw00".into()]),
            LogEntry::ok(DbChange, "set(FIRMWARE_VERSION)")
                .with_devices(vec!["dc01.pod00.sw00".into()]),
        ];
        let plan = rollback_plan(&parse_log(&log).unwrap());
        let desc = plan.describe(&log);
        assert_eq!(desc.len(), 2);
        assert!(desc[0].contains("revert set(FIRMWARE_VERSION)"));
        assert!(desc[0].contains("dc01.pod00.sw00"));
        assert!(desc[1].contains("undrain"));
    }

    #[test]
    fn empty_log_empty_plan() {
        let plan = plan_for(&[]);
        assert!(plan.is_empty());
        assert_eq!(plan.arrow_notation(), "");
    }
}
