//! Per-switch emulated state.

/// Traffic classes used by the emulation case studies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlowClass {
    /// Ordinary user traffic.
    Background,
    /// Traffic that a `denylist` task blocks.
    Suspicious,
    /// Traffic that a `middlebox_rerouting` task steers through a
    /// middlebox.
    Inspected,
}

/// The mutable state of one emulated switch.
///
/// This mirrors what the paper's bmv2 devices expose through P4Runtime:
/// drain state, the running data-plane program, firmware, temporary test
/// addressing, and ACL (denylist) entries.
#[derive(Clone, Debug)]
pub struct SwitchState {
    /// Drained switches carry no traffic; the control plane routes around
    /// them.
    pub drained: bool,
    /// True while a data-plane upgrade is in progress. An *undrained*
    /// upgrading switch black-holes traffic — the hazard of case study #1.
    pub upgrading: bool,
    /// Installed firmware version.
    pub firmware: String,
    /// Name of the running data-plane program.
    pub dataplane: String,
    /// Temporary test IP allocated by `f_alloc_ip`.
    pub test_ip: Option<String>,
    /// Traffic classes this switch drops (ACL denylist).
    pub denylist: Vec<FlowClass>,
    /// Generation counter bumped by every config push (visible for tests).
    pub config_generation: u64,
}

impl Default for SwitchState {
    fn default() -> Self {
        SwitchState {
            drained: false,
            upgrading: false,
            firmware: "fw-1.0.0".to_string(),
            dataplane: "ecmp_v1".to_string(),
            test_ip: None,
            denylist: Vec::new(),
            config_generation: 0,
        }
    }
}

impl SwitchState {
    /// True if the switch forwards a packet of `class`.
    pub fn forwards(&self, class: FlowClass) -> bool {
        !self.denylist.contains(&class)
    }

    /// True if the switch corrupts transiting traffic (upgrading while
    /// carrying traffic).
    pub fn black_holes(&self) -> bool {
        self.upgrading && !self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_switch_forwards_everything() {
        let s = SwitchState::default();
        assert!(s.forwards(FlowClass::Background));
        assert!(s.forwards(FlowClass::Suspicious));
        assert!(!s.black_holes());
        assert!(!s.drained);
    }

    #[test]
    fn denylist_blocks_class() {
        let mut s = SwitchState::default();
        s.denylist.push(FlowClass::Suspicious);
        assert!(!s.forwards(FlowClass::Suspicious));
        assert!(s.forwards(FlowClass::Background));
    }

    #[test]
    fn upgrade_without_drain_black_holes() {
        let mut s = SwitchState {
            upgrading: true,
            ..SwitchState::default()
        };
        assert!(s.black_holes());
        s.drained = true;
        assert!(
            !s.black_holes(),
            "a drained switch carries no traffic to corrupt"
        );
    }
}
