//! A fault-injecting decorator over any [`DeviceService`].
//!
//! The netdb layer has injected query faults since the beginning (the
//! paper's dominant failure class); this shim brings the *device* layer to
//! parity so chaos campaigns can drive faults through every stateful
//! boundary. It wraps an inner service and, per `execute` call, may:
//!
//! - **fail the call** (deterministically by sequence number or with a
//!   seeded probability, via the shared [`FaultPlan`] type) — surfaced as
//!   [`FuncError::Injected`], the transient class retry policies act on;
//! - **delay the call** (seeded latency spikes modelling slow management
//!   sessions);
//! - **wedge named devices** ("stuck" devices whose management session
//!   never answers: every call touching them fails until unstuck).
//!
//! Faults can be paused wholesale ([`FaultyService::set_enabled`]) so a
//! campaign's recovery and verification phases run fault-free without
//! disturbing the seeded fault stream.

use crate::funcs::{FuncArgs, FuncError, FuncResult};
use crate::service::DeviceService;
use occam_netdb::{FaultInjector, FaultPlan};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Latency-spike configuration for [`FaultyService`].
#[derive(Clone, Debug, Default)]
pub struct LatencyPlan {
    /// Probability in `[0, 1]` that an `execute` call is delayed.
    pub rate: f64,
    /// The delay applied when a spike fires.
    pub delay: Duration,
    /// Seed for the spike stream (independent of the failure stream).
    pub seed: u64,
}

impl LatencyPlan {
    /// No latency spikes.
    pub fn none() -> LatencyPlan {
        LatencyPlan::default()
    }

    /// Spikes each call with probability `rate`, sleeping `delay`.
    pub fn new(rate: f64, delay: Duration, seed: u64) -> LatencyPlan {
        LatencyPlan {
            rate: rate.clamp(0.0, 1.0),
            delay,
            seed,
        }
    }
}

/// A [`DeviceService`] decorator injecting per-operation failures, latency
/// spikes, and stuck devices (see the module docs).
pub struct FaultyService {
    inner: Arc<dyn DeviceService>,
    injector: FaultInjector,
    latency: Mutex<LatencyPlan>,
    latency_rng: Mutex<StdRng>,
    stuck: Mutex<HashSet<String>>,
    enabled: AtomicBool,
    spikes: AtomicU64,
    stuck_hits: AtomicU64,
}

impl FaultyService {
    /// Wraps `inner`, failing `execute` calls per `plan` (the same
    /// [`FaultPlan`] type the netdb injector consumes — build one with
    /// `FaultPlan::builder()`).
    pub fn new(inner: Arc<dyn DeviceService>, plan: FaultPlan) -> FaultyService {
        FaultyService {
            inner,
            injector: FaultInjector::new(plan),
            latency: Mutex::new(LatencyPlan::none()),
            latency_rng: Mutex::new(StdRng::seed_from_u64(0)),
            stuck: Mutex::new(HashSet::new()),
            enabled: AtomicBool::new(true),
            spikes: AtomicU64::new(0),
            stuck_hits: AtomicU64::new(0),
        }
    }

    /// Installs a latency-spike plan (reseeds the spike stream).
    pub fn set_latency(&self, plan: LatencyPlan) {
        *self.latency_rng.lock() = StdRng::seed_from_u64(plan.seed);
        *self.latency.lock() = plan;
    }

    /// Replaces the failure plan (restarts the operation sequence, like
    /// [`FaultInjector::set_plan`]).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.injector.set_plan(plan);
    }

    /// Marks a device stuck: every `execute` naming it fails until
    /// [`FaultyService::unstick_all`].
    pub fn stick_device(&self, name: impl Into<String>) {
        self.stuck.lock().insert(name.into());
    }

    /// Clears the stuck-device set.
    pub fn unstick_all(&self) {
        self.stuck.lock().clear();
    }

    /// Pauses (`false`) or resumes (`true`) all fault behaviors — failures,
    /// spikes, and stuck devices — without disturbing the seeded streams.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
        self.injector.set_enabled(enabled);
    }

    /// The underlying failure injector (counters, plan swaps).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Latency spikes fired so far.
    pub fn spikes_fired(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// Calls failed because they touched a stuck device.
    pub fn stuck_hits(&self) -> u64 {
        self.stuck_hits.load(Ordering::Relaxed)
    }

    /// The wrapped service (for downcasts past the shim).
    pub fn inner(&self) -> &Arc<dyn DeviceService> {
        &self.inner
    }
}

impl DeviceService for FaultyService {
    fn execute(&self, func: &str, devices: &[String], args: &FuncArgs) -> FuncResult {
        if self.enabled.load(Ordering::SeqCst) {
            {
                let stuck = self.stuck.lock();
                if let Some(d) = devices.iter().find(|d| stuck.contains(*d)) {
                    self.stuck_hits.fetch_add(1, Ordering::Relaxed);
                    return Err(FuncError::Precondition(format!(
                        "management session to {d} is wedged (stuck device)"
                    )));
                }
            }
            let spike = {
                let plan = self.latency.lock();
                if plan.rate > 0.0 && self.latency_rng.lock().random::<f64>() < plan.rate {
                    Some(plan.delay)
                } else {
                    None
                }
            };
            if let Some(delay) = spike {
                self.spikes.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
            }
            if let Some(nth) = self.injector.check() {
                return Err(FuncError::Injected {
                    func: func.to_string(),
                    nth,
                });
            }
        }
        self.inner.execute(func, devices, args)
    }

    fn advance(&self, ticks: u64) {
        self.inner.advance(ticks);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::EmuNet;
    use crate::service::EmuService;
    use occam_topology::FatTree;

    fn substrate() -> (Arc<EmuService>, String) {
        let ft = FatTree::build(1, 4).unwrap();
        let net = EmuNet::from_fattree(&ft);
        let name = {
            let topo = &net.topo;
            topo.device(ft.aggs[0][0]).name.clone()
        };
        (Arc::new(EmuService::new(net)), name)
    }

    #[test]
    fn injected_failures_follow_the_plan_and_passthrough_otherwise() {
        let (inner, agg) = substrate();
        let svc = FaultyService::new(inner.clone(), FaultPlan::fail_at([1]));
        let devs = vec![agg.clone()];
        svc.execute("f_drain", &devs, &FuncArgs::none()).unwrap();
        let err = svc
            .execute("f_undrain", &devs, &FuncArgs::none())
            .unwrap_err();
        assert!(matches!(err, FuncError::Injected { nth: 1, .. }));
        assert!(err.is_transient());
        // The failed call never reached the inner service.
        let net = inner.net();
        let guard = net.lock();
        let id = guard.device_by_name(&agg).unwrap();
        assert!(guard.switch(id).unwrap().drained, "drain landed");
        assert_eq!(svc.injector().failures_injected(), 1);
    }

    #[test]
    fn stuck_devices_fail_until_unstuck_and_pause_disables_everything() {
        let (inner, agg) = substrate();
        let svc = FaultyService::new(inner, FaultPlan::none());
        let devs = vec![agg.clone()];
        svc.stick_device(&agg);
        let err = svc
            .execute("f_drain", &devs, &FuncArgs::none())
            .unwrap_err();
        assert!(matches!(err, FuncError::Precondition(_)));
        assert!(!err.is_transient(), "wedged session needs an operator");
        assert_eq!(svc.stuck_hits(), 1);
        // Paused faults pass straight through, stuck set intact.
        svc.set_enabled(false);
        svc.execute("f_drain", &devs, &FuncArgs::none()).unwrap();
        svc.set_enabled(true);
        let err = svc
            .execute("f_undrain", &devs, &FuncArgs::none())
            .unwrap_err();
        assert!(matches!(err, FuncError::Precondition(_)));
        svc.unstick_all();
        svc.execute("f_undrain", &devs, &FuncArgs::none()).unwrap();
    }

    #[test]
    fn latency_spikes_are_seeded_and_counted() {
        let (inner, agg) = substrate();
        let svc = FaultyService::new(inner, FaultPlan::none());
        svc.set_latency(LatencyPlan::new(1.0, Duration::from_millis(1), 7));
        let devs = vec![agg];
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            svc.execute("f_optic_test", &devs, &FuncArgs::one("admin", "active"))
                .ok();
        }
        assert_eq!(svc.spikes_fired(), 3);
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }
}
