//! The device-function library — Occam's fixed set of reusable device-level
//! operations (the "Building Blocks" of CORNET-style workflow systems).
//!
//! Each function is executed against the emulated network through the
//! management plane. The library supports deterministic fault injection by
//! function name and invocation ordinal, which the rollback experiments use
//! to fail a task at every step.

use crate::net::EmuNet;
use crate::switch::FlowClass;
use occam_topology::DeviceId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Key-value arguments to a device function.
#[derive(Clone, Default, Debug)]
pub struct FuncArgs(pub HashMap<String, String>);

impl FuncArgs {
    /// No arguments.
    pub fn none() -> FuncArgs {
        FuncArgs::default()
    }

    /// A single key-value pair.
    pub fn one(key: &str, value: &str) -> FuncArgs {
        let mut m = HashMap::new();
        m.insert(key.to_string(), value.to_string());
        FuncArgs(m)
    }

    /// Adds a pair (builder style).
    pub fn with(mut self, key: &str, value: &str) -> FuncArgs {
        self.0.insert(key.to_string(), value.to_string());
        self
    }

    /// Fetches a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }
}

/// An error executing a device function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FuncError {
    /// The function name is not in the library.
    UnknownFunc(String),
    /// A device name did not resolve.
    UnknownDevice(String),
    /// The device exists but is not a managed switch.
    NotASwitch(String),
    /// A precondition failed (e.g. ping without a test IP).
    Precondition(String),
    /// An injected fault fired.
    Injected {
        /// Function name.
        func: String,
        /// Which invocation (0-based) failed.
        nth: u64,
    },
}

impl std::fmt::Display for FuncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuncError::UnknownFunc(n) => write!(f, "unknown device function {n}"),
            FuncError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            FuncError::NotASwitch(d) => write!(f, "{d} is not a managed switch"),
            FuncError::Precondition(m) => write!(f, "precondition failed: {m}"),
            FuncError::Injected { func, nth } => {
                write!(f, "injected failure: {func} invocation #{nth}")
            }
        }
    }
}

impl FuncError {
    /// Whether retrying the operation can plausibly succeed.
    ///
    /// Injected faults model the flaky management-session RPC failures of
    /// the paper's platform: the device is fine, the call never landed, so
    /// a retry is safe. The other classes are semantic (unknown function
    /// or device, failed precondition) and fail identically on re-execution.
    pub fn is_transient(&self) -> bool {
        matches!(self, FuncError::Injected { .. })
    }
}

impl std::error::Error for FuncError {}

/// Result of a device function: a human-readable summary.
pub type FuncResult = Result<String, FuncError>;

/// The names of every function in the library.
pub const FUNC_NAMES: &[&str] = &[
    "f_drain",
    "f_undrain",
    "f_push",
    "f_upgrade_data_plane",
    "f_turnup_link",
    "f_alloc_ip",
    "f_dealloc_ip",
    "f_ping_test",
    "f_optic_test",
    "f_denylist",
    "f_undenylist",
    "f_reroute_middlebox",
    "f_create_config",
];

/// The function library with per-function fault injection and counters.
#[derive(Debug, Default)]
pub struct FuncLibrary {
    /// `func → invocation ordinals that must fail`.
    faults: Mutex<HashMap<String, HashSet<u64>>>,
    counts: Mutex<HashMap<String, u64>>,
}

impl FuncLibrary {
    /// Creates a library with no injected faults.
    pub fn new() -> FuncLibrary {
        FuncLibrary::default()
    }

    /// Injects a failure on the `nth` (0-based) future invocation of
    /// `func`, counted from now.
    pub fn fail_at(&self, func: &str, nth: u64) {
        let current = self.counts.lock().get(func).copied().unwrap_or(0);
        self.faults
            .lock()
            .entry(func.to_string())
            .or_default()
            .insert(current + nth);
    }

    /// Clears all injected faults.
    pub fn clear_faults(&self) {
        self.faults.lock().clear();
    }

    /// Invocation count of a function.
    pub fn invocations(&self, func: &str) -> u64 {
        self.counts.lock().get(func).copied().unwrap_or(0)
    }

    fn check_fault(&self, func: &str) -> Result<u64, FuncError> {
        let mut counts = self.counts.lock();
        let nth = counts.entry(func.to_string()).or_insert(0);
        let this = *nth;
        *nth += 1;
        drop(counts);
        if self
            .faults
            .lock()
            .get(func)
            .is_some_and(|s| s.contains(&this))
        {
            Err(FuncError::Injected {
                func: func.to_string(),
                nth: this,
            })
        } else {
            Ok(this)
        }
    }

    fn resolve(net: &EmuNet, names: &[String]) -> Result<Vec<DeviceId>, FuncError> {
        names
            .iter()
            .map(|n| {
                let id = net
                    .device_by_name(n)
                    .ok_or_else(|| FuncError::UnknownDevice(n.clone()))?;
                if net.switch(id).is_none() {
                    return Err(FuncError::NotASwitch(n.clone()));
                }
                Ok(id)
            })
            .collect()
    }

    /// Executes `func` on the named devices.
    pub fn execute(
        &self,
        net: &mut EmuNet,
        func: &str,
        devices: &[String],
        args: &FuncArgs,
    ) -> FuncResult {
        if !FUNC_NAMES.contains(&func) {
            return Err(FuncError::UnknownFunc(func.to_string()));
        }
        self.check_fault(func)?;
        let ids = Self::resolve(net, devices)?;
        match func {
            "f_drain" => {
                for &id in &ids {
                    net.switch_mut(id).expect("resolved").drained = true;
                }
                Ok(format!("drained {} devices", ids.len()))
            }
            "f_undrain" => {
                for &id in &ids {
                    net.switch_mut(id).expect("resolved").drained = false;
                }
                Ok(format!("undrained {} devices", ids.len()))
            }
            "f_push" => {
                // Pushing configuration writes the device's full admin
                // state. `admin` defaults to `active`: a task unaware of a
                // concurrent drain will overwrite it — the exact race of
                // case study #1.
                let drained = matches!(args.get("admin"), Some("drained"));
                for &id in &ids {
                    let s = net.switch_mut(id).expect("resolved");
                    s.drained = drained;
                    if let Some(fw) = args.get("firmware") {
                        s.firmware = fw.to_string();
                    }
                    s.config_generation += 1;
                }
                Ok(format!("pushed config to {} devices", ids.len()))
            }
            "f_upgrade_data_plane" => {
                let program = args.get("program").unwrap_or("ecmp_v2");
                match args.get("phase") {
                    Some("begin") => {
                        for &id in &ids {
                            net.switch_mut(id).expect("resolved").upgrading = true;
                        }
                        Ok("upgrade started".to_string())
                    }
                    Some("commit") => {
                        for &id in &ids {
                            let s = net.switch_mut(id).expect("resolved");
                            s.dataplane = program.to_string();
                            s.upgrading = false;
                        }
                        Ok(format!("upgraded to {program}"))
                    }
                    _ => {
                        for &id in &ids {
                            let s = net.switch_mut(id).expect("resolved");
                            s.dataplane = program.to_string();
                        }
                        Ok(format!("upgraded to {program}"))
                    }
                }
            }
            "f_turnup_link" => {
                let mut n = 0;
                for &id in &ids {
                    for &(_, link) in net.topo.neighbors(id).to_vec().iter() {
                        if !net.link_is_up(link) {
                            net.set_link(link, true);
                            n += 1;
                        }
                    }
                }
                Ok(format!("turned up {n} links"))
            }
            "f_alloc_ip" => {
                for (i, &id) in ids.iter().enumerate() {
                    let ip = args
                        .get("ip")
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("198.51.100.{}", i + 1));
                    net.switch_mut(id).expect("resolved").test_ip = Some(ip);
                }
                Ok(format!("allocated test IPs on {} devices", ids.len()))
            }
            "f_dealloc_ip" => {
                for &id in &ids {
                    net.switch_mut(id).expect("resolved").test_ip = None;
                }
                Ok(format!("deallocated test IPs on {} devices", ids.len()))
            }
            "f_ping_test" => {
                for (&id, name) in ids.iter().zip(devices) {
                    if net.switch(id).expect("resolved").test_ip.is_none() {
                        return Err(FuncError::Precondition(format!(
                            "{name} has no test IP allocated"
                        )));
                    }
                }
                Ok(format!("ping ok on {} devices", ids.len()))
            }
            "f_optic_test" => Ok(format!("optics ok on {} devices", ids.len())),
            "f_denylist" => {
                let class = parse_class(args.get("class"))?;
                for &id in &ids {
                    let s = net.switch_mut(id).expect("resolved");
                    if !s.denylist.contains(&class) {
                        s.denylist.push(class);
                    }
                }
                Ok(format!("denylisted {class:?} on {} devices", ids.len()))
            }
            "f_undenylist" => {
                let class = parse_class(args.get("class"))?;
                for &id in &ids {
                    net.switch_mut(id)
                        .expect("resolved")
                        .denylist
                        .retain(|&c| c != class);
                }
                Ok(format!(
                    "removed {class:?} denylist on {} devices",
                    ids.len()
                ))
            }
            "f_reroute_middlebox" => {
                if args.get("enable") == Some("false") {
                    net.middlebox = None;
                    Ok("middlebox rerouting disabled".to_string())
                } else {
                    let mb = *ids.first().ok_or_else(|| {
                        FuncError::Precondition("middlebox device required".into())
                    })?;
                    net.middlebox = Some(mb);
                    Ok(format!("rerouting inspected traffic via {}", devices[0]))
                }
            }
            "f_create_config" => Ok(format!("generated configs for {} devices", ids.len())),
            _ => unreachable!("membership checked against FUNC_NAMES"),
        }
    }
}

fn parse_class(arg: Option<&str>) -> Result<FlowClass, FuncError> {
    match arg {
        Some("suspicious") | None => Ok(FlowClass::Suspicious),
        Some("background") => Ok(FlowClass::Background),
        Some("inspected") => Ok(FlowClass::Inspected),
        Some(other) => Err(FuncError::Precondition(format!(
            "unknown traffic class {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_topology::FatTree;

    fn setup() -> (EmuNet, FuncLibrary, Vec<String>) {
        let ft = FatTree::build(1, 4).unwrap();
        let net = EmuNet::from_fattree(&ft);
        let devs = vec![net.topo.device(ft.aggs[0][0]).name.clone()];
        (net, FuncLibrary::new(), devs)
    }

    #[test]
    fn drain_undrain_cycle() {
        let (mut net, lib, devs) = setup();
        lib.execute(&mut net, "f_drain", &devs, &FuncArgs::none())
            .unwrap();
        let id = net.device_by_name(&devs[0]).unwrap();
        assert!(net.switch(id).unwrap().drained);
        lib.execute(&mut net, "f_undrain", &devs, &FuncArgs::none())
            .unwrap();
        assert!(!net.switch(id).unwrap().drained);
    }

    #[test]
    fn push_overwrites_drain_by_default() {
        let (mut net, lib, devs) = setup();
        let id = net.device_by_name(&devs[0]).unwrap();
        lib.execute(&mut net, "f_drain", &devs, &FuncArgs::none())
            .unwrap();
        lib.execute(&mut net, "f_push", &devs, &FuncArgs::none())
            .unwrap();
        assert!(
            !net.switch(id).unwrap().drained,
            "default push resets admin state"
        );
        // Pushing with admin=drained preserves the drain.
        lib.execute(&mut net, "f_drain", &devs, &FuncArgs::none())
            .unwrap();
        lib.execute(
            &mut net,
            "f_push",
            &devs,
            &FuncArgs::one("admin", "drained"),
        )
        .unwrap();
        assert!(net.switch(id).unwrap().drained);
        assert_eq!(net.switch(id).unwrap().config_generation, 2);
    }

    #[test]
    fn upgrade_phases() {
        let (mut net, lib, devs) = setup();
        let id = net.device_by_name(&devs[0]).unwrap();
        lib.execute(
            &mut net,
            "f_upgrade_data_plane",
            &devs,
            &FuncArgs::one("phase", "begin"),
        )
        .unwrap();
        assert!(net.switch(id).unwrap().upgrading);
        lib.execute(
            &mut net,
            "f_upgrade_data_plane",
            &devs,
            &FuncArgs::one("phase", "commit").with("program", "ecmp_v2"),
        )
        .unwrap();
        let s = net.switch(id).unwrap();
        assert!(!s.upgrading);
        assert_eq!(s.dataplane, "ecmp_v2");
    }

    #[test]
    fn ping_requires_alloc_ip() {
        let (mut net, lib, devs) = setup();
        let err = lib
            .execute(&mut net, "f_ping_test", &devs, &FuncArgs::none())
            .unwrap_err();
        assert!(matches!(err, FuncError::Precondition(_)));
        lib.execute(&mut net, "f_alloc_ip", &devs, &FuncArgs::none())
            .unwrap();
        lib.execute(&mut net, "f_ping_test", &devs, &FuncArgs::none())
            .unwrap();
        // Another workflow deallocates (the case study #4 interleaving bug).
        lib.execute(&mut net, "f_dealloc_ip", &devs, &FuncArgs::none())
            .unwrap();
        assert!(lib
            .execute(&mut net, "f_ping_test", &devs, &FuncArgs::none())
            .is_err());
    }

    #[test]
    fn fault_injection_fails_exact_invocation() {
        let (mut net, lib, devs) = setup();
        lib.execute(&mut net, "f_optic_test", &devs, &FuncArgs::none())
            .unwrap();
        lib.fail_at("f_optic_test", 1); // the second invocation from now
        lib.execute(&mut net, "f_optic_test", &devs, &FuncArgs::none())
            .unwrap();
        let err = lib
            .execute(&mut net, "f_optic_test", &devs, &FuncArgs::none())
            .unwrap_err();
        assert!(matches!(err, FuncError::Injected { nth: 2, .. }));
        assert_eq!(lib.invocations("f_optic_test"), 3);
    }

    #[test]
    fn unknown_func_and_device_rejected() {
        let (mut net, lib, devs) = setup();
        assert!(matches!(
            lib.execute(&mut net, "f_bogus", &devs, &FuncArgs::none()),
            Err(FuncError::UnknownFunc(_))
        ));
        assert!(matches!(
            lib.execute(&mut net, "f_drain", &["nope".into()], &FuncArgs::none()),
            Err(FuncError::UnknownDevice(_))
        ));
        assert!(matches!(
            lib.execute(
                &mut net,
                "f_drain",
                &["dc01.pod00.tor00.host00".into()],
                &FuncArgs::none()
            ),
            Err(FuncError::NotASwitch(_))
        ));
    }

    #[test]
    fn denylist_roundtrip() {
        let (mut net, lib, devs) = setup();
        let id = net.device_by_name(&devs[0]).unwrap();
        lib.execute(
            &mut net,
            "f_denylist",
            &devs,
            &FuncArgs::one("class", "suspicious"),
        )
        .unwrap();
        assert!(!net.switch(id).unwrap().forwards(FlowClass::Suspicious));
        lib.execute(
            &mut net,
            "f_undenylist",
            &devs,
            &FuncArgs::one("class", "suspicious"),
        )
        .unwrap();
        assert!(net.switch(id).unwrap().forwards(FlowClass::Suspicious));
    }

    #[test]
    fn middlebox_toggle() {
        let (mut net, lib, devs) = setup();
        lib.execute(&mut net, "f_reroute_middlebox", &devs, &FuncArgs::none())
            .unwrap();
        assert!(net.middlebox.is_some());
        lib.execute(
            &mut net,
            "f_reroute_middlebox",
            &devs,
            &FuncArgs::one("enable", "false"),
        )
        .unwrap();
        assert!(net.middlebox.is_none());
    }

    #[test]
    fn turnup_links_raises_down_links() {
        let (mut net, lib, devs) = setup();
        let id = net.device_by_name(&devs[0]).unwrap();
        let (_, link) = net.topo.neighbors(id)[0];
        net.set_link(link, false);
        lib.execute(&mut net, "f_turnup_link", &devs, &FuncArgs::none())
            .unwrap();
        assert!(net.link_is_up(link));
    }
}
