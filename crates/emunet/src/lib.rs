//! # occam-emunet
//!
//! The emulated network substrate — the role played by Mininet + bmv2 +
//! P4Runtime in the Occam paper's evaluation platform (§7).
//!
//! The emulator models a datacenter fabric at flow granularity: software
//! switches with drain state, data-plane programs, firmware, ACLs, and test
//! addressing; links that can be up or down; and host-to-host flows routed
//! by ECMP each tick. That is exactly the observability the paper's case
//! studies need (traffic-rate timelines during conflicting management
//! tasks, Figures 12–13).
//!
//! Management code reaches devices only through the [`DeviceService`]
//! trait — the stand-in for the RPC boundary to vendor services — and the
//! device-function library ([`FuncLibrary`]) provides the reusable
//! building-block operations of Table 2 with deterministic fault injection.
//!
//! # Examples
//!
//! ```
//! use occam_emunet::{DeviceService, EmuNet, EmuService, FlowClass, FuncArgs};
//! use occam_topology::FatTree;
//!
//! let ft = FatTree::build(1, 6).unwrap(); // the paper's k=6 fabric
//! let mut net = EmuNet::from_fattree(&ft);
//! let flow = net.add_flow(ft.hosts[0][0][0], ft.hosts[3][0][0], 100.0, FlowClass::Background);
//! let svc = EmuService::new(net);
//!
//! // Drain one aggregation switch; ECMP keeps the flow alive.
//! let agg = { let n = svc.net(); let g = n.lock(); g.topo.device(ft.aggs[0][0]).name.clone() };
//! svc.execute("f_drain", &[agg], &FuncArgs::none()).unwrap();
//! let sample = svc.step();
//! assert_eq!(sample.flow_rate[&flow].1, 100.0);
//! ```

pub mod faults;
pub mod funcs;
pub mod net;
pub mod service;
pub mod switch;

pub use faults::{FaultyService, LatencyPlan};
pub use funcs::{FuncArgs, FuncError, FuncLibrary, FuncResult, FUNC_NAMES};
pub use net::{Delivery, EmuNet, Flow, TrafficSample};
pub use service::{DeviceService, EmuService, UnreachableService};
pub use switch::{FlowClass, SwitchState};
