//! The management-plane service boundary.
//!
//! In the paper's platform, Occam tasks reach physical devices through
//! infrastructure services over RPC (P4Runtime toward bmv2 switches). This
//! trait is that boundary: the runtime programs against [`DeviceService`],
//! and the in-process implementation drives the emulated network. A real
//! deployment would implement the same trait against vendor services.

use crate::funcs::{FuncArgs, FuncError, FuncLibrary, FuncResult};
use crate::net::{EmuNet, TrafficSample};
use parking_lot::Mutex;
use std::sync::Arc;

/// The channel through which management code touches physical devices.
pub trait DeviceService: Send + Sync {
    /// Executes a device function on the named devices.
    fn execute(&self, func: &str, devices: &[String], args: &FuncArgs) -> FuncResult;

    /// Advances emulated time by `ticks` (no-op for real deployments where
    /// time advances on its own).
    fn advance(&self, ticks: u64);

    /// Downcast support, so harnesses can reach implementation-specific
    /// surface (e.g. the emulator's fault injector) through a trait object.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// In-process service driving an [`EmuNet`].
pub struct EmuService {
    net: Arc<Mutex<EmuNet>>,
    lib: Arc<FuncLibrary>,
}

impl EmuService {
    /// Wraps an emulated network.
    pub fn new(net: EmuNet) -> EmuService {
        EmuService {
            net: Arc::new(Mutex::new(net)),
            lib: Arc::new(FuncLibrary::new()),
        }
    }

    /// Shared handle to the network (for assertions and traffic setup).
    pub fn net(&self) -> Arc<Mutex<EmuNet>> {
        Arc::clone(&self.net)
    }

    /// The function library (for fault injection).
    pub fn library(&self) -> Arc<FuncLibrary> {
        Arc::clone(&self.lib)
    }

    /// Steps the network once and returns the traffic sample.
    pub fn step(&self) -> TrafficSample {
        self.net.lock().step()
    }
}

impl DeviceService for EmuService {
    fn execute(&self, func: &str, devices: &[String], args: &FuncArgs) -> FuncResult {
        let mut net = self.net.lock();
        self.lib.execute(&mut net, func, devices, args)
    }

    fn advance(&self, ticks: u64) {
        self.net.lock().run(ticks);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A service wrapper that fails every call (for error-path tests).
pub struct UnreachableService;

impl DeviceService for UnreachableService {
    fn execute(&self, func: &str, _devices: &[String], _args: &FuncArgs) -> FuncResult {
        Err(FuncError::Precondition(format!(
            "management interface unreachable while executing {func}"
        )))
    }

    fn advance(&self, _ticks: u64) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::FlowClass;
    use occam_topology::FatTree;

    #[test]
    fn service_executes_against_shared_net() {
        let ft = FatTree::build(1, 4).unwrap();
        let mut net = EmuNet::from_fattree(&ft);
        let f = net.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[1][0][0],
            10.0,
            FlowClass::Background,
        );
        let svc = EmuService::new(net);
        let agg = {
            let n = svc.net();
            let guard = n.lock();
            guard.topo.device(ft.aggs[0][0]).name.clone()
        };
        svc.execute("f_drain", std::slice::from_ref(&agg), &FuncArgs::none())
            .unwrap();
        let sample = svc.step();
        assert_eq!(
            sample.flow_rate[&f].1, 10.0,
            "ECMP routes around one drained agg"
        );
        svc.advance(3);
        assert_eq!(svc.net().lock().now(), 4);
    }

    #[test]
    fn unreachable_service_always_errors() {
        let svc = UnreachableService;
        assert!(svc.execute("f_drain", &[], &FuncArgs::none()).is_err());
    }
}
