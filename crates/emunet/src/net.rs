//! The emulated network: topology + switch states + flows + discrete-time
//! traffic stepping.

use crate::switch::{FlowClass, SwitchState};
use occam_topology::{DeviceId, FatTree, LinkId, Role, Topology};
use std::collections::HashMap;

/// A unidirectional traffic flow between two hosts.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Flow identifier.
    pub id: u64,
    /// Source host.
    pub src: DeviceId,
    /// Destination host.
    pub dst: DeviceId,
    /// Offered rate (Mbps).
    pub rate: f64,
    /// Traffic class.
    pub class: FlowClass,
}

/// Delivery outcome of one flow at one tick.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Delivery {
    /// Delivered end to end at the offered rate.
    Delivered,
    /// Delivered, but below the offered rate: some link on the path is
    /// over capacity and flows share it proportionally.
    Throttled,
    /// No usable path existed (drain/link-down isolation).
    NoPath,
    /// The path traversed an upgrading, undrained switch.
    BlackHoled,
    /// A switch on the path denylisted the flow's class.
    Blocked,
}

/// One tick's traffic snapshot.
#[derive(Clone, Debug, Default)]
pub struct TrafficSample {
    /// Tick number.
    pub tick: u64,
    /// Delivered rate transiting each switch (Mbps).
    pub switch_rate: HashMap<DeviceId, f64>,
    /// Per-flow outcome and delivered rate.
    pub flow_rate: HashMap<u64, (Delivery, f64)>,
}

impl TrafficSample {
    /// Total delivered rate across a set of flows.
    pub fn delivered(&self, flows: &[u64]) -> f64 {
        flows
            .iter()
            .filter_map(|f| self.flow_rate.get(f))
            .map(|(_, r)| r)
            .sum()
    }
}

/// The emulated network.
#[derive(Clone, Debug)]
pub struct EmuNet {
    /// The underlying topology graph.
    pub topo: Topology,
    state: HashMap<DeviceId, SwitchState>,
    link_up: Vec<bool>,
    /// Per-link capacity (Mbps); `f64::INFINITY` disables congestion.
    link_capacity: Vec<f64>,
    flows: Vec<Flow>,
    next_flow: u64,
    tick: u64,
    /// Designated middlebox for `middlebox_rerouting` (case study #2).
    pub middlebox: Option<DeviceId>,
    history: Vec<TrafficSample>,
}

impl EmuNet {
    /// Builds an emulated network over a Fat-tree; all links start up and
    /// all switches undrained.
    pub fn from_fattree(ft: &FatTree) -> EmuNet {
        let topo = ft.topo.clone();
        let mut state = HashMap::new();
        for (id, d) in topo.devices() {
            if d.role != Role::Host {
                state.insert(id, SwitchState::default());
            }
        }
        let link_up = vec![true; topo.num_links()];
        let link_capacity = vec![f64::INFINITY; topo.num_links()];
        EmuNet {
            topo,
            state,
            link_up,
            link_capacity,
            flows: Vec::new(),
            next_flow: 0,
            tick: 0,
            middlebox: None,
            history: Vec::new(),
        }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Switch state accessor.
    pub fn switch(&self, id: DeviceId) -> Option<&SwitchState> {
        self.state.get(&id)
    }

    /// Mutable switch state accessor (device functions use this).
    pub fn switch_mut(&mut self, id: DeviceId) -> Option<&mut SwitchState> {
        self.state.get_mut(&id)
    }

    /// Resolves a device name to its id.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.topo.device_by_name(name)
    }

    /// Sets a link up or down.
    pub fn set_link(&mut self, link: LinkId, up: bool) {
        if let Some(slot) = self.link_up.get_mut(link.0 as usize) {
            *slot = up;
        }
    }

    /// Link state.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up.get(link.0 as usize).copied().unwrap_or(false)
    }

    /// Sets one link's capacity in Mbps (`f64::INFINITY` = uncongested).
    pub fn set_link_capacity(&mut self, link: LinkId, mbps: f64) {
        if let Some(slot) = self.link_capacity.get_mut(link.0 as usize) {
            *slot = mbps.max(0.0);
        }
    }

    /// Sets every link's capacity in Mbps.
    pub fn set_all_link_capacities(&mut self, mbps: f64) {
        for slot in self.link_capacity.iter_mut() {
            *slot = mbps.max(0.0);
        }
    }

    /// A link's capacity in Mbps.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.link_capacity
            .get(link.0 as usize)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Finds the link between two devices, if any.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> Option<LinkId> {
        self.topo
            .neighbors(a)
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, l)| l)
    }

    /// Adds a flow; returns its id.
    pub fn add_flow(&mut self, src: DeviceId, dst: DeviceId, rate: f64, class: FlowClass) -> u64 {
        let id = self.next_flow;
        self.next_flow += 1;
        self.flows.push(Flow {
            id,
            src,
            dst,
            rate,
            class,
        });
        id
    }

    /// Removes a flow.
    pub fn remove_flow(&mut self, id: u64) {
        self.flows.retain(|f| f.id != id);
    }

    /// True if a link is usable by the routing layer: up, and neither
    /// endpoint is a drained switch (hosts are never drained).
    fn usable(&self, link: LinkId) -> bool {
        if !self.link_is_up(link) {
            return false;
        }
        let l = self.topo.link(link);
        for end in [l.a_end, l.z_end] {
            if let Some(s) = self.state.get(&end) {
                if s.drained {
                    return false;
                }
            }
        }
        true
    }

    /// Computes the path a flow takes right now, including any middlebox
    /// detour for [`FlowClass::Inspected`] traffic.
    pub fn flow_path(&self, flow: &Flow) -> Option<Vec<DeviceId>> {
        let usable = |l: LinkId| self.usable(l);
        match (flow.class, self.middlebox) {
            (FlowClass::Inspected, Some(mb)) if mb != flow.src && mb != flow.dst => {
                let first = self.topo.ecmp_path(flow.src, mb, flow.id, usable)?;
                let second = self.topo.ecmp_path(mb, flow.dst, flow.id, usable)?;
                let mut path = first;
                path.extend_from_slice(&second[1..]);
                Some(path)
            }
            _ => self.topo.ecmp_path(flow.src, flow.dst, flow.id, usable),
        }
    }

    /// Advances one tick: routes every flow, classifies its delivery,
    /// applies link-capacity sharing, and records per-switch throughput.
    pub fn step(&mut self) -> TrafficSample {
        let mut sample = TrafficSample {
            tick: self.tick,
            ..TrafficSample::default()
        };
        let flows = self.flows.clone();
        // Pass 1: route every flow, classify switch-level outcomes.
        let mut routed: Vec<(u64, f64, Vec<DeviceId>)> = Vec::new();
        for flow in &flows {
            match self.flow_path(flow) {
                None => {
                    sample.flow_rate.insert(flow.id, (Delivery::NoPath, 0.0));
                }
                Some(path) => {
                    let mut outcome = Delivery::Delivered;
                    for dev in &path {
                        if let Some(s) = self.state.get(dev) {
                            if s.black_holes() {
                                outcome = Delivery::BlackHoled;
                                break;
                            }
                            if !s.forwards(flow.class) {
                                outcome = Delivery::Blocked;
                                break;
                            }
                        }
                    }
                    if outcome == Delivery::Delivered {
                        routed.push((flow.id, flow.rate, path));
                    } else {
                        sample.flow_rate.insert(flow.id, (outcome, 0.0));
                    }
                }
            }
        }
        // Pass 2: congestion — offered load per link; over-capacity links
        // scale their flows proportionally (a flow gets the minimum share
        // along its path).
        let mut offered: HashMap<LinkId, f64> = HashMap::new();
        let link_of = |topo: &Topology, a: DeviceId, b: DeviceId| -> Option<LinkId> {
            topo.neighbors(a)
                .iter()
                .find(|&&(n, _)| n == b)
                .map(|&(_, l)| l)
        };
        for (_, rate, path) in &routed {
            for hop in path.windows(2) {
                if let Some(l) = link_of(&self.topo, hop[0], hop[1]) {
                    *offered.entry(l).or_insert(0.0) += rate;
                }
            }
        }
        for (id, rate, path) in routed {
            let mut factor = 1.0f64;
            for hop in path.windows(2) {
                if let Some(l) = link_of(&self.topo, hop[0], hop[1]) {
                    let cap = self.link_capacity(l);
                    let load = offered.get(&l).copied().unwrap_or(0.0);
                    if load > cap {
                        factor = factor.min(cap / load);
                    }
                }
            }
            let delivered = rate * factor;
            let outcome = if factor < 1.0 {
                Delivery::Throttled
            } else {
                Delivery::Delivered
            };
            sample.flow_rate.insert(id, (outcome, delivered));
            if delivered > 0.0 {
                for dev in &path {
                    if self.state.contains_key(dev) {
                        *sample.switch_rate.entry(*dev).or_insert(0.0) += delivered;
                    }
                }
            }
        }
        self.tick += 1;
        self.history.push(sample.clone());
        sample
    }

    /// Runs `n` ticks, returning the last sample.
    pub fn run(&mut self, n: u64) -> TrafficSample {
        let mut last = TrafficSample::default();
        for _ in 0..n {
            last = self.step();
        }
        last
    }

    /// The recorded per-tick history.
    pub fn history(&self) -> &[TrafficSample] {
        &self.history
    }

    /// The currently installed flows (update planners read these to
    /// derive the traffic classes a change must preserve).
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (EmuNet, FatTree) {
        let ft = FatTree::build(1, 4).unwrap();
        (EmuNet::from_fattree(&ft), ft)
    }

    #[test]
    fn background_flow_delivers() {
        let (mut n, ft) = net();
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[2][1][1],
            100.0,
            FlowClass::Background,
        );
        let s = n.step();
        assert_eq!(s.flow_rate[&f], (Delivery::Delivered, 100.0));
        // Some switch carried the traffic.
        assert!(s.switch_rate.values().any(|&r| r > 0.0));
    }

    #[test]
    fn drained_switch_is_routed_around() {
        let (mut n, ft) = net();
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[2][0][0],
            50.0,
            FlowClass::Background,
        );
        // Drain one pod agg; ECMP has a redundant agg.
        let agg = ft.aggs[0][0];
        n.switch_mut(agg).unwrap().drained = true;
        let s = n.step();
        assert_eq!(s.flow_rate[&f], (Delivery::Delivered, 50.0));
        assert_eq!(
            s.switch_rate.get(&agg),
            None,
            "drained switch carries nothing"
        );
    }

    #[test]
    fn draining_the_only_tor_kills_the_flow() {
        let (mut n, ft) = net();
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[2][0][0],
            50.0,
            FlowClass::Background,
        );
        n.switch_mut(ft.tors[0][0]).unwrap().drained = true;
        let s = n.step();
        assert_eq!(s.flow_rate[&f], (Delivery::NoPath, 0.0));
    }

    #[test]
    fn upgrading_undrained_switch_black_holes() {
        let (mut n, ft) = net();
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[0][1][0],
            10.0,
            FlowClass::Background,
        );
        // Both aggs upgrade while carrying traffic: every intra-pod
        // cross-ToR path black-holes.
        for &agg in &ft.aggs[0] {
            n.switch_mut(agg).unwrap().upgrading = true;
        }
        let s = n.step();
        assert_eq!(s.flow_rate[&f].0, Delivery::BlackHoled);
    }

    #[test]
    fn denylist_blocks_suspicious_only() {
        let (mut n, ft) = net();
        let sus = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[0][0][1],
            5.0,
            FlowClass::Suspicious,
        );
        let bg = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[0][0][1],
            5.0,
            FlowClass::Background,
        );
        n.switch_mut(ft.tors[0][0])
            .unwrap()
            .denylist
            .push(FlowClass::Suspicious);
        let s = n.step();
        assert_eq!(s.flow_rate[&sus].0, Delivery::Blocked);
        assert_eq!(s.flow_rate[&bg].0, Delivery::Delivered);
    }

    #[test]
    fn link_down_forces_detour_or_kills() {
        let (mut n, ft) = net();
        let host = ft.hosts[0][0][0];
        let tor = ft.tors[0][0];
        let f = n.add_flow(host, ft.hosts[1][0][0], 20.0, FlowClass::Background);
        let l = n.link_between(host, tor).unwrap();
        n.set_link(l, false);
        let s = n.step();
        assert_eq!(s.flow_rate[&f].0, Delivery::NoPath);
        n.set_link(l, true);
        let s = n.step();
        assert_eq!(s.flow_rate[&f].0, Delivery::Delivered);
    }

    #[test]
    fn middlebox_detour_for_inspected_class() {
        let (mut n, ft) = net();
        let mb = ft.aggs[3][1];
        n.middlebox = Some(mb);
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[1][0][0],
            30.0,
            FlowClass::Inspected,
        );
        let flow = n.flows.iter().find(|fl| fl.id == f).unwrap().clone();
        let path = n.flow_path(&flow).unwrap();
        assert!(
            path.contains(&mb),
            "inspected traffic detours via middlebox"
        );
        let s = n.step();
        assert_eq!(s.flow_rate[&f].0, Delivery::Delivered);
        assert!(s.switch_rate[&mb] >= 30.0);
    }

    #[test]
    fn congested_link_shares_capacity_proportionally() {
        let (mut n, ft) = net();
        // Two same-ToR flows share the single host access link of the
        // destination? Use two flows from different hosts to the same host:
        // its access link is the bottleneck.
        let dst = ft.hosts[0][0][0];
        let f1 = n.add_flow(ft.hosts[0][0][1], dst, 60.0, FlowClass::Background);
        let f2 = n.add_flow(ft.hosts[0][1][0], dst, 60.0, FlowClass::Background);
        let tor = ft.tors[0][0];
        let access = n.link_between(dst, tor).unwrap();
        n.set_link_capacity(access, 60.0);
        let s = n.step();
        let (d1, r1) = s.flow_rate[&f1];
        let (d2, r2) = s.flow_rate[&f2];
        assert_eq!(d1, Delivery::Throttled);
        assert_eq!(d2, Delivery::Throttled);
        assert!((r1 + r2 - 60.0).abs() < 1e-6, "{r1} + {r2}");
        assert!((r1 - 30.0).abs() < 1e-6, "equal shares: {r1}");
    }

    #[test]
    fn infinite_capacity_never_throttles() {
        let (mut n, ft) = net();
        let f = n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[1][0][0],
            1e9,
            FlowClass::Background,
        );
        let s = n.step();
        assert_eq!(s.flow_rate[&f].0, Delivery::Delivered);
    }

    #[test]
    fn history_accumulates() {
        let (mut n, ft) = net();
        n.add_flow(
            ft.hosts[0][0][0],
            ft.hosts[0][0][1],
            1.0,
            FlowClass::Background,
        );
        n.run(5);
        assert_eq!(n.history().len(), 5);
        assert_eq!(n.history()[4].tick, 4);
        assert_eq!(n.now(), 5);
    }
}
