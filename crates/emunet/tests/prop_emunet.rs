//! Property tests for the emulated network: routing and delivery
//! invariants under random drain/link/deny configurations.

use occam_emunet::{Delivery, EmuNet, FlowClass};
use occam_topology::{DeviceId, FatTree, LinkId};
use proptest::prelude::*;

fn build() -> (EmuNet, FatTree) {
    let ft = FatTree::build(1, 4).unwrap();
    (EmuNet::from_fattree(&ft), ft)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever subset of aggs/cores is drained and links are down, every
    /// flow either delivers at full rate over a live path or is classified
    /// NoPath — never silently partial.
    #[test]
    fn delivery_is_all_or_nothing(
        drained in proptest::collection::vec(any::<bool>(), 12),
        down_links in proptest::collection::vec(0u32..100, 0..6),
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..5),
    ) {
        let (mut net, ft) = build();
        // Drain a subset of non-ToR switches (aggs then cores).
        let mut idx = 0;
        for pod in &ft.aggs {
            for &agg in pod {
                if drained.get(idx).copied().unwrap_or(false) {
                    net.switch_mut(agg).unwrap().drained = true;
                }
                idx += 1;
            }
        }
        for &core in &ft.cores {
            if drained.get(idx).copied().unwrap_or(false) {
                net.switch_mut(core).unwrap().drained = true;
            }
            idx += 1;
        }
        for l in &down_links {
            let link = LinkId(l % ft.topo.num_links() as u32);
            net.set_link(link, false);
        }
        let hosts = ft.all_hosts();
        let flows: Vec<u64> = pairs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| net.add_flow(hosts[a], hosts[b], 10.0, FlowClass::Background))
            .collect();
        let sample = net.step();
        for f in flows {
            let (d, r) = sample.flow_rate[&f];
            match d {
                Delivery::Delivered => prop_assert_eq!(r, 10.0),
                Delivery::NoPath => prop_assert_eq!(r, 0.0),
                other => prop_assert!(
                    matches!(other, Delivery::BlackHoled | Delivery::Blocked) && r == 0.0
                ),
            }
        }
    }

    /// Per-switch throughput equals the sum of delivered flows whose path
    /// crosses that switch (conservation).
    #[test]
    fn switch_rates_are_conserved(pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..6)) {
        let (mut net, ft) = build();
        let hosts = ft.all_hosts();
        for &(a, b) in pairs.iter().filter(|(a, b)| a != b) {
            net.add_flow(hosts[a], hosts[b], 7.0, FlowClass::Background);
        }
        let sample = net.step();
        let delivered: f64 = sample.flow_rate.values().map(|&(_, r)| r).sum();
        let total_switch: f64 = sample.switch_rate.values().sum();
        // Every delivered flow crosses at least one switch (its ToR), and
        // at most 5 switches (ToR-Agg-Core-Agg-ToR) in a k=4 tree.
        prop_assert!(total_switch >= delivered - 1e-9);
        prop_assert!(total_switch <= delivered * 5.0 + 1e-9);
    }

    /// With everything healthy, every host pair is mutually reachable and
    /// the chosen ECMP path is loop-free.
    #[test]
    fn healthy_fabric_fully_connected(a in 0usize..16, b in 0usize..16, hash in any::<u64>()) {
        prop_assume!(a != b);
        let (net, ft) = build();
        let hosts = ft.all_hosts();
        let path = net
            .topo
            .ecmp_path(hosts[a], hosts[b], hash, |l| net.link_is_up(l))
            .expect("healthy fabric is connected");
        let unique: std::collections::HashSet<DeviceId> = path.iter().copied().collect();
        prop_assert_eq!(unique.len(), path.len(), "loop-free path");
        prop_assert!(path.len() <= 7);
    }

    /// Draining a switch never *creates* connectivity: the set of
    /// delivered flows after a drain is a subset of before.
    #[test]
    fn drain_is_monotone(pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..6),
                         victim in 0usize..4) {
        let (mut net, ft) = build();
        let hosts = ft.all_hosts();
        let flows: Vec<u64> = pairs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| net.add_flow(hosts[a], hosts[b], 5.0, FlowClass::Background))
            .collect();
        let before = net.step();
        // Drain every agg of one pod: the pod's hosts lose cross-pod paths.
        for &agg in &ft.aggs[victim] {
            net.switch_mut(agg).unwrap().drained = true;
        }
        let after = net.step();
        for f in flows {
            let was = before.flow_rate[&f].0 == Delivery::Delivered;
            let is = after.flow_rate[&f].0 == Delivery::Delivered;
            prop_assert!(was || !is, "drain created connectivity for flow {f}");
        }
    }
}
