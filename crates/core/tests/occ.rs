//! Integration tests for the optimistic (OCC) execution mode and its
//! interaction with the online serializability certifier (DESIGN.md §16).

use occam_cert::Certifier;
use occam_core::{Isolation, Runtime, TaskError, TaskState};
use occam_emunet::{EmuNet, EmuService};
use occam_netdb::{attrs, AttrValue, Database};
use occam_sched::Policy;
use occam_topology::FatTree;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A k=4 Fat-tree runtime with every switch in the database, bound to a
/// fresh registry so `core.occ.*` counters can be asserted.
fn runtime() -> Runtime {
    let ft = FatTree::build(1, 4).unwrap();
    let reg = occam_obs::Registry::new();
    let db = Arc::new(Database::with_obs(&reg));
    for (_, d) in ft
        .topo
        .devices()
        .filter(|(_, d)| d.role != occam_topology::Role::Host)
    {
        db.insert_device(
            &d.name,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )
        .unwrap();
    }
    let service = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
    Runtime::with_obs(db, service, Policy::Ldsf, &reg)
}

#[test]
fn occ_task_commits_without_locks() {
    let rt = runtime();
    let rt2 = rt.clone();
    let report = rt
        .task("occ_writer")
        .isolation(Isolation::Occ { max_retries: 3 })
        .run(move |ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set("X", 7i64.into())?;
            // Optimistic execution takes no tree locks: nothing to block
            // on, nothing for a deadlock cycle to include.
            assert_eq!(rt2.active_objects(), 0, "OCC holds no object-tree nodes");
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(rt.obs().counter("core.occ.commits").get(), 1);
    assert_eq!(rt.obs().counter("core.occ.aborts").get(), 0);
    // The staged batch is published and durable.
    let snap = rt.db().query_snapshot().unwrap();
    let pat = occam_regex::Pattern::from_glob("dc01.pod00.*").unwrap();
    for (_, v) in snap.get_attr(&pat, "X") {
        assert_eq!(v, AttrValue::from(7i64));
    }
}

#[test]
fn occ_reads_its_own_staged_writes() {
    let rt = runtime();
    let report = rt
        .task("read_your_writes")
        .isolation(Isolation::Occ { max_retries: 0 })
        .run(|ctx| {
            let net = ctx.network("dc01.pod00.tor00")?;
            net.set("X", 42i64.into())?;
            let vals = net.get("X")?;
            assert_eq!(vals.get("dc01.pod00.tor00"), Some(&AttrValue::from(42i64)));
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
}

#[test]
fn occ_conflict_retries_then_falls_back_to_2pl() {
    let rt = runtime();
    let db = Arc::clone(rt.db());
    let executions = Arc::new(AtomicU32::new(0));
    let ex = Arc::clone(&executions);
    let report = rt
        .task("contended")
        .isolation(Isolation::Occ { max_retries: 1 })
        .run(move |ctx| {
            let n = ex.fetch_add(1, Ordering::SeqCst);
            let net = ctx.network("dc01.pod00.tor00")?;
            let _ = net.get("X")?;
            if n < 2 {
                // Sabotage the first two (optimistic) attempts: another
                // commit touches the read/write shard after our snapshot.
                let pat = occam_regex::Pattern::from_glob("dc01.pod00.tor00").unwrap();
                db.set_attr(&pat, "interference", AttrValue::from(i64::from(n)))
                    .unwrap();
            }
            net.set("X", 1i64.into())?;
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
    // Attempt 1 (OCC) conflicts, attempt 2 (OCC retry) conflicts, the
    // driver exhausts max_retries=1 and re-executes under 2PL.
    assert_eq!(executions.load(Ordering::SeqCst), 3);
    assert_eq!(report.attempts, 3);
    assert_eq!(rt.obs().counter("core.occ.aborts").get(), 2);
    assert_eq!(rt.obs().counter("core.occ.fallbacks").get(), 1);
    assert_eq!(rt.obs().counter("core.occ.commits").get(), 0);
    // The 2PL attempt's write is published — nothing lost.
    let snap = rt.db().query_snapshot().unwrap();
    let pat = occam_regex::Pattern::from_glob("dc01.pod00.tor00").unwrap();
    assert_eq!(
        snap.get_attr(&pat, "X").get("dc01.pod00.tor00"),
        Some(&AttrValue::from(1i64))
    );
}

#[test]
fn occ_apply_falls_back_immediately() {
    let rt = runtime();
    let executions = Arc::new(AtomicU32::new(0));
    let ex = Arc::clone(&executions);
    let report = rt
        .task("drainer")
        .isolation(Isolation::Occ { max_retries: 5 })
        .run(move |ctx| {
            ex.fetch_add(1, Ordering::SeqCst);
            let net = ctx.network("dc01.pod00.*")?;
            net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            // Physical side effects cannot be staged: the optimistic
            // attempt aborts before the RPC is issued.
            net.apply("f_drain")?;
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(
        executions.load(Ordering::SeqCst),
        2,
        "one OCC attempt aborted pre-RPC, one 2PL re-execution"
    );
    assert_eq!(rt.obs().counter("core.occ.fallbacks").get(), 1);
    assert_eq!(rt.obs().counter("core.occ.commits").get(), 0);
}

#[test]
fn occ_readonly_task_never_conflicts() {
    let rt = runtime();
    let db = Arc::clone(rt.db());
    let report = rt
        .task("auditor")
        .isolation(Isolation::Occ { max_retries: 0 })
        .run(move |ctx| {
            let net = ctx.network_read("dc01.*")?;
            let statuses = net.get(attrs::DEVICE_STATUS)?;
            assert!(!statuses.is_empty());
            // A concurrent commit after our snapshot must not abort a
            // read-only optimistic task: its whole execution is one
            // consistent snapshot.
            let pat = occam_regex::Pattern::from_glob("dc01.pod00.tor00").unwrap();
            db.set_attr(&pat, "Y", AttrValue::from(1i64)).unwrap();
            let _ = net.view()?;
            Ok(())
        });
    assert_eq!(report.state, TaskState::Completed);
    assert_eq!(rt.obs().counter("core.occ.aborts").get(), 0);
    assert_eq!(rt.obs().counter("core.occ.commits").get(), 1);
}

#[test]
fn certifier_sees_footprints_from_both_isolation_modes() {
    let rt = runtime();
    let cert = Arc::new(Certifier::with_obs(rt.obs()));
    rt.attach_certifier(Arc::clone(&cert));
    let r1 = rt.task("pessimist").run(|ctx| {
        let net = ctx.network("dc01.pod00.tor00")?;
        let _ = net.get("X")?;
        net.set("X", 1i64.into())?;
        Ok(())
    });
    let r2 = rt
        .task("optimist")
        .isolation(Isolation::Occ { max_retries: 3 })
        .run(|ctx| {
            let net = ctx.network("dc01.pod00.tor01")?;
            let _ = net.get("X")?;
            net.set("X", 2i64.into())?;
            Ok(())
        });
    assert_eq!(r1.state, TaskState::Completed);
    assert_eq!(r2.state, TaskState::Completed);
    assert_eq!(cert.committed(), 2);
    assert!(cert.is_acyclic(), "{:?}", cert.first_violation());
    assert_eq!(cert.violations(), 0);
    assert_eq!(cert.window_len(), 0, "window drains with nothing in flight");
    rt.detach_certifier();
}

#[test]
fn certified_aborted_task_is_abandoned() {
    let rt = runtime();
    let cert = Arc::new(Certifier::new());
    rt.attach_certifier(Arc::clone(&cert));
    let report = rt.task("failer").run(|ctx| {
        let net = ctx.network("dc01.pod00.tor00")?;
        net.set("X", 1i64.into())?;
        Err(TaskError::Failed("deliberate".into()))
    });
    assert_eq!(report.state, TaskState::Aborted);
    assert_eq!(cert.committed(), 0, "aborted footprint never ingested");
    assert_eq!(cert.window_len(), 0, "abandoned token releases its floor");
}
