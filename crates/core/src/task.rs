//! Task context, execution log, and reports.

use crate::error::TaskResult;
use crate::network::Network;
use crate::runtime::Runtime;
use crate::TaskError;
use occam_netdb::{AttrValue, LinkKey};
use occam_objtree::{LockMode, ObjectId, TaskId};
use occam_rollback::{parse_log, rollback_plan, LogEntry, RollbackPlan};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation handle shared between a task and its
/// submitter.
///
/// Cancellation is *checkpoint-based*: setting the flag never interrupts a
/// running operation. The task observes it at its next checkpoint — lock
/// acquisition ([`TaskCtx::network`] and friends, including while blocked
/// waiting for a lock) or any stateful [`crate::Network`] operation — and
/// aborts with [`TaskError::Cancelled`], releasing all locks and producing
/// a normal rollback suggestion for any work already done.
///
/// If the cancelled task may be blocked on a lock, follow the `cancel()`
/// with [`crate::Runtime::wake_lock_waiters`] so it re-checks promptly.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, non-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Lifecycle state of a task (paper §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Enqueued, not yet selected to run.
    Submitted,
    /// Running with some progress made.
    Active,
    /// Successfully finished; all changes committed.
    Completed,
    /// Hit a runtime failure; rollback suggested.
    Aborted,
}

/// Undo payload paired with one execution-log entry.
#[derive(Clone, PartialEq, Debug)]
pub enum UndoRecord {
    /// Old per-device values overwritten by a `set()` (None = attribute was
    /// absent).
    Db {
        /// Attribute written.
        attr: String,
        /// `(device, previous value)` pairs.
        old: Vec<(String, Option<AttrValue>)>,
    },
    /// Old per-link values overwritten by a `set_links()`.
    LinkDb {
        /// Attribute written.
        attr: String,
        /// `(link, previous value)` pairs.
        old: Vec<(LinkKey, Option<AttrValue>)>,
    },
    /// A device row was inserted by the task (undo: delete it).
    Inserted {
        /// Device name.
        name: String,
    },
    /// A device row was deleted by the task (undo: re-insert it with its
    /// attributes and links).
    Removed {
        /// Device name.
        name: String,
        /// The attributes the row had.
        attrs: Vec<(String, AttrValue)>,
        /// The links the device had: `(peer, link attributes)`.
        links: Vec<(String, Vec<(String, AttrValue)>)>,
    },
    /// No database payload (device functions).
    None,
}

/// The result of running one Occam task.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Task identifier.
    pub task_id: TaskId,
    /// Task name (for operators).
    pub name: String,
    /// Final lifecycle state.
    pub state: TaskState,
    /// The error that aborted the task, if any.
    pub error: Option<TaskError>,
    /// The typed execution log (rollback grammar input).
    pub log: Vec<LogEntry>,
    /// Undo payloads parallel to `log`.
    pub undo: Vec<UndoRecord>,
    /// Untyped operations outside the rollback grammar (informational).
    pub activity: Vec<String>,
    /// Offset from task start at which each log entry was recorded
    /// (parallel to `log`) — the paper's per-operation progress tracking.
    pub op_offsets: Vec<std::time::Duration>,
    /// Total wall time of the task.
    pub wall: std::time::Duration,
    /// Suggested rollback plan (aborted tasks with a parseable log).
    pub rollback: Option<RollbackPlan>,
    /// Present when the log failed to parse against the grammar.
    pub rollback_error: Option<String>,
    /// How many executions this report covers (1 unless a retry policy
    /// re-executed the task; see `TaskBuilder::retry`). The log, undo,
    /// and rollback fields always describe the *final* attempt.
    pub attempts: u32,
}

impl TaskReport {
    /// Operator-facing rollback step descriptions.
    pub fn rollback_steps(&self) -> Vec<String> {
        self.rollback
            .as_ref()
            .map(|p| p.describe(&self.log))
            .unwrap_or_default()
    }
}

/// The per-task execution context handed to management programs.
///
/// All stateful interaction with the network goes through
/// [`TaskCtx::network`] / [`TaskCtx::network_read`]; everything else a
/// program does is stateless local computation (paper §3.2).
pub struct TaskCtx {
    runtime: Runtime,
    task_id: TaskId,
    name: String,
    urgent: bool,
    cancel: CancelToken,
    started: std::time::Instant,
    pub(crate) log: Mutex<Vec<LogEntry>>,
    pub(crate) undo: Mutex<Vec<UndoRecord>>,
    pub(crate) activity: Mutex<Vec<String>>,
    op_offsets: Mutex<Vec<std::time::Duration>>,
    covering: Mutex<Vec<ObjectId>>,
}

impl TaskCtx {
    pub(crate) fn new(
        runtime: Runtime,
        task_id: TaskId,
        name: String,
        urgent: bool,
        cancel: CancelToken,
    ) -> TaskCtx {
        TaskCtx {
            runtime,
            task_id,
            name,
            urgent,
            cancel,
            started: std::time::Instant::now(),
            log: Mutex::new(Vec::new()),
            undo: Mutex::new(Vec::new()),
            activity: Mutex::new(Vec::new()),
            op_offsets: Mutex::new(Vec::new()),
            covering: Mutex::new(Vec::new()),
        }
    }

    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        self.task_id
    }

    /// This task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the task was submitted urgent.
    pub fn urgent(&self) -> bool {
        self.urgent
    }

    /// The cancellation token this task observes at checkpoints.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Checkpoint: returns [`TaskError::Cancelled`] if cancellation has
    /// been requested. Called automatically on lock acquisition and every
    /// stateful [`crate::Network`] operation; long stateless computations
    /// may call it explicitly.
    pub fn check_cancelled(&self) -> TaskResult<()> {
        if self.cancel.is_cancelled() {
            Err(TaskError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The runtime this task runs under.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Creates a network object over `scope` (glob syntax, e.g.
    /// `dc01.pod03.*`) with write intent: `get`, `set`, and `apply` are all
    /// allowed, and the region is locked exclusively.
    ///
    /// Blocks until the lock is granted; may fail as a deadlock victim.
    pub fn network(&self, scope: &str) -> TaskResult<Network<'_>> {
        let pattern = self
            .runtime
            .pattern_cache()
            .get(&occam_regex::glob_to_regex(scope))?;
        let covering = self.runtime.acquire(self, &pattern, LockMode::Exclusive)?;
        Ok(Network::new(self, pattern, covering, LockMode::Exclusive))
    }

    /// Creates a read-only network object over `scope` (shared lock); only
    /// `get` operations are allowed.
    pub fn network_read(&self, scope: &str) -> TaskResult<Network<'_>> {
        let pattern = self
            .runtime
            .pattern_cache()
            .get(&occam_regex::glob_to_regex(scope))?;
        let covering = self.runtime.acquire(self, &pattern, LockMode::Shared)?;
        Ok(Network::new(self, pattern, covering, LockMode::Shared))
    }

    /// Creates a write-intent network object from a raw regex scope.
    pub fn network_regex(&self, regex: &str) -> TaskResult<Network<'_>> {
        let pattern = self.runtime.pattern_cache().get(regex)?;
        let covering = self.runtime.acquire(self, &pattern, LockMode::Exclusive)?;
        Ok(Network::new(self, pattern, covering, LockMode::Exclusive))
    }

    /// Creates a write-intent network object scoped to exactly the given
    /// device names (the paper's `to_regex(dev_names)` helper).
    pub fn network_of_devices<S: AsRef<str>>(&self, names: &[S]) -> TaskResult<Network<'_>> {
        let pattern = occam_regex::Pattern::from_names(names)?;
        let covering = self.runtime.acquire(self, &pattern, LockMode::Exclusive)?;
        Ok(Network::new(self, pattern, covering, LockMode::Exclusive))
    }

    pub(crate) fn record_covering(&self, ids: &[ObjectId]) {
        self.covering.lock().extend_from_slice(ids);
    }

    pub(crate) fn take_covering(&self) -> Vec<ObjectId> {
        std::mem::take(&mut *self.covering.lock())
    }

    pub(crate) fn push_log(&self, entry: LogEntry, undo: UndoRecord) {
        self.log.lock().push(entry);
        self.undo.lock().push(undo);
        self.op_offsets.lock().push(self.started.elapsed());
    }

    pub(crate) fn push_activity(&self, line: String) {
        self.activity.lock().push(line);
    }

    pub(crate) fn into_report(self, outcome: (TaskState, Option<TaskError>)) -> TaskReport {
        let (state, error) = outcome;
        let wall = self.started.elapsed();
        let log = self.log.into_inner();
        let undo = self.undo.into_inner();
        let activity = self.activity.into_inner();
        let op_offsets = self.op_offsets.into_inner();
        let (rollback, rollback_error) = if state == TaskState::Aborted {
            match parse_log(&log) {
                Ok(tree) => (Some(rollback_plan(&tree)), None),
                Err(e) => (None, Some(e.to_string())),
            }
        } else {
            (None, None)
        };
        if let Some(plan) = &rollback {
            let obs = self.runtime.obs_handles();
            obs.rollback_plans.inc();
            obs.events.record(occam_obs::EventKind::RollbackPlanned {
                task: self.task_id.0,
                steps: plan.steps.len() as u64,
            });
        }
        TaskReport {
            task_id: self.task_id,
            name: self.name,
            state,
            error,
            log,
            undo,
            activity,
            op_offsets,
            wall,
            rollback,
            rollback_error,
            attempts: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_rollback::OpType;

    #[test]
    fn report_generation_for_aborted_task() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(1), "t".into(), false, CancelToken::new());
        ctx.push_log(
            LogEntry::ok(OpType::DbChange, "set(X)"),
            UndoRecord::Db {
                attr: "X".into(),
                old: vec![("d".into(), None)],
            },
        );
        let report = ctx.into_report((TaskState::Aborted, Some(TaskError::Failed("x".into()))));
        assert_eq!(report.state, TaskState::Aborted);
        let plan = report.rollback.as_ref().unwrap();
        assert_eq!(plan.arrow_notation(), "r(DB_CHANGE)");
        assert_eq!(report.rollback_steps().len(), 1);
    }

    #[test]
    fn op_offsets_track_progress_monotonically() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("timed").run(|ctx| {
            let net = ctx.network("dc01.pod00.agg00")?;
            net.apply("f_drain")?;
            std::thread::sleep(std::time::Duration::from_millis(10));
            net.apply("f_undrain")?;
            Ok(())
        });
        assert_eq!(report.op_offsets.len(), report.log.len());
        assert!(report.op_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(report.wall >= *report.op_offsets.last().unwrap());
        assert!(report.op_offsets[1] - report.op_offsets[0] >= std::time::Duration::from_millis(9));
    }

    #[test]
    fn completed_task_has_no_plan() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(2), "t".into(), false, CancelToken::new());
        let report = ctx.into_report((TaskState::Completed, None));
        assert!(report.rollback.is_none());
        assert!(report.error.is_none());
    }

    #[test]
    fn malformed_log_reports_grammar_error() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(3), "t".into(), false, CancelToken::new());
        // UNDRAIN without DRAIN: outside the grammar.
        ctx.push_log(
            LogEntry::ok(OpType::Undrain, "apply(f_undrain)"),
            UndoRecord::None,
        );
        let report = ctx.into_report((TaskState::Aborted, Some(TaskError::Failed("x".into()))));
        assert!(report.rollback.is_none());
        assert!(report.rollback_error.is_some());
    }
}
