//! Task context, execution log, and reports.

use crate::error::TaskResult;
use crate::network::Network;
use crate::runtime::Runtime;
use crate::TaskError;
use occam_cert::Footprint;
use occam_netdb::{
    route_prefix, AttrValue, LinkKey, ShardRoute, StagedStore, StoreSnapshot, NUM_SHARDS,
};
use occam_objtree::{LockMode, ObjectId, TaskId};
use occam_regex::Pattern;
use occam_rollback::{parse_log, rollback_plan, LogEntry, RollbackPlan};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation handle shared between a task and its
/// submitter.
///
/// Cancellation is *checkpoint-based*: setting the flag never interrupts a
/// running operation. The task observes it at its next checkpoint — lock
/// acquisition ([`TaskCtx::network`] and friends, including while blocked
/// waiting for a lock) or any stateful [`crate::Network`] operation — and
/// aborts with [`TaskError::Cancelled`], releasing all locks and producing
/// a normal rollback suggestion for any work already done.
///
/// If the cancelled task may be blocked on a lock, follow the `cancel()`
/// with [`crate::Runtime::wake_lock_waiters`] so it re-checks promptly.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, non-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Lifecycle state of a task (paper §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Enqueued, not yet selected to run.
    Submitted,
    /// Running with some progress made.
    Active,
    /// Successfully finished; all changes committed.
    Completed,
    /// Hit a runtime failure; rollback suggested.
    Aborted,
}

/// Undo payload paired with one execution-log entry.
#[derive(Clone, PartialEq, Debug)]
pub enum UndoRecord {
    /// Old per-device values overwritten by a `set()` (None = attribute was
    /// absent).
    Db {
        /// Attribute written.
        attr: String,
        /// `(device, previous value)` pairs.
        old: Vec<(String, Option<AttrValue>)>,
    },
    /// Old per-link values overwritten by a `set_links()`.
    LinkDb {
        /// Attribute written.
        attr: String,
        /// `(link, previous value)` pairs.
        old: Vec<(LinkKey, Option<AttrValue>)>,
    },
    /// A device row was inserted by the task (undo: delete it).
    Inserted {
        /// Device name.
        name: String,
    },
    /// A device row was deleted by the task (undo: re-insert it with its
    /// attributes and links).
    Removed {
        /// Device name.
        name: String,
        /// The attributes the row had.
        attrs: Vec<(String, AttrValue)>,
        /// The links the device had: `(peer, link attributes)`.
        links: Vec<(String, Vec<(String, AttrValue)>)>,
    },
    /// No database payload (device functions).
    None,
}

/// The result of running one Occam task.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Task identifier.
    pub task_id: TaskId,
    /// Task name (for operators).
    pub name: String,
    /// Final lifecycle state.
    pub state: TaskState,
    /// The error that aborted the task, if any.
    pub error: Option<TaskError>,
    /// The typed execution log (rollback grammar input).
    pub log: Vec<LogEntry>,
    /// Undo payloads parallel to `log`.
    pub undo: Vec<UndoRecord>,
    /// Untyped operations outside the rollback grammar (informational).
    pub activity: Vec<String>,
    /// Offset from task start at which each log entry was recorded
    /// (parallel to `log`) — the paper's per-operation progress tracking.
    pub op_offsets: Vec<std::time::Duration>,
    /// Total wall time of the task.
    pub wall: std::time::Duration,
    /// Suggested rollback plan (aborted tasks with a parseable log).
    pub rollback: Option<RollbackPlan>,
    /// Present when the log failed to parse against the grammar.
    pub rollback_error: Option<String>,
    /// How many executions this report covers (1 unless a retry policy
    /// re-executed the task; see `TaskBuilder::retry`). The log, undo,
    /// and rollback fields always describe the *final* attempt.
    pub attempts: u32,
}

impl TaskReport {
    /// Operator-facing rollback step descriptions.
    pub fn rollback_steps(&self) -> Vec<String> {
        self.rollback
            .as_ref()
            .map(|p| p.describe(&self.log))
            .unwrap_or_default()
    }
}

/// Execution state of one optimistic ([`crate::Isolation::Occ`]) task
/// attempt: the staged fork, the shard-granular read set, and the
/// write rows pending certification.
pub(crate) struct OccState {
    pub(crate) staged: StagedStore,
    /// Shards whose contents any read may have depended on; validated
    /// (alongside the staged dirty shards) at [`occam_netdb::Database::occ_publish`].
    pub(crate) read_shards: BTreeSet<usize>,
    /// Commit count of the frozen base snapshot — the count every read
    /// in this attempt observes.
    pub(crate) base_commits: u64,
    /// Device rows written (staged) so far, recorded into the certifier
    /// footprint at the publish sequence once validation passes.
    pub(crate) pending_rows: Vec<String>,
    /// Scopes the staged writes cover. A write-bearing commit briefly
    /// acquires exclusive 2PL locks over these before validating, so an
    /// optimistic publish can never land inside a pessimistic task's
    /// critical section (Silo-style commit-time locking, DESIGN.md §16).
    pub(crate) write_patterns: Vec<Pattern>,
    /// Set when the program performed an operation that cannot be
    /// staged; the attempt must abort and re-execute under 2PL.
    pub(crate) needs_fallback: Option<String>,
}

impl OccState {
    pub(crate) fn new(base: StoreSnapshot) -> OccState {
        OccState {
            base_commits: base.commits(),
            staged: StagedStore::new(base),
            read_shards: BTreeSet::new(),
            pending_rows: Vec::new(),
            write_patterns: Vec::new(),
            needs_fallback: None,
        }
    }

    /// Tracks a scoped read: the shard its literal prefix routes to, or
    /// every shard when the scope cannot be pinned.
    pub(crate) fn track_pattern(&mut self, pattern: &Pattern) {
        match route_prefix(&pattern.literal_prefix()) {
            ShardRoute::One(i) => {
                self.read_shards.insert(i);
            }
            ShardRoute::All => {
                self.read_shards.extend(0..NUM_SHARDS);
            }
        }
    }
}

/// The per-task execution context handed to management programs.
///
/// All stateful interaction with the network goes through
/// [`TaskCtx::network`] / [`TaskCtx::network_read`]; everything else a
/// program does is stateless local computation (paper §3.2).
pub struct TaskCtx {
    runtime: Runtime,
    task_id: TaskId,
    name: String,
    urgent: bool,
    cancel: CancelToken,
    started: std::time::Instant,
    pub(crate) log: Mutex<Vec<LogEntry>>,
    pub(crate) undo: Mutex<Vec<UndoRecord>>,
    pub(crate) activity: Mutex<Vec<String>>,
    op_offsets: Mutex<Vec<std::time::Duration>>,
    covering: Mutex<Vec<ObjectId>>,
    /// Present iff this attempt executes optimistically.
    pub(crate) occ: Mutex<Option<OccState>>,
    /// Read/write footprint emitted to the serializability certifier
    /// when one is attached ([`Runtime::attach_certifier`]).
    footprint: Mutex<Footprint>,
    certified: AtomicBool,
}

impl TaskCtx {
    pub(crate) fn new(
        runtime: Runtime,
        task_id: TaskId,
        name: String,
        urgent: bool,
        cancel: CancelToken,
    ) -> TaskCtx {
        TaskCtx {
            runtime,
            task_id,
            name,
            urgent,
            cancel,
            started: std::time::Instant::now(),
            log: Mutex::new(Vec::new()),
            undo: Mutex::new(Vec::new()),
            activity: Mutex::new(Vec::new()),
            op_offsets: Mutex::new(Vec::new()),
            covering: Mutex::new(Vec::new()),
            occ: Mutex::new(None),
            footprint: Mutex::new(Footprint::new()),
            certified: AtomicBool::new(false),
        }
    }

    /// Switches this attempt to optimistic execution over `base`.
    pub(crate) fn enable_occ(&self, base: StoreSnapshot) {
        *self.occ.lock() = Some(OccState::new(base));
    }

    /// Whether this attempt is executing optimistically.
    pub(crate) fn occ_active(&self) -> bool {
        self.occ.lock().is_some()
    }

    /// Marks the task as certified: stateful operations record their
    /// read/write footprint for the serializability certifier.
    pub(crate) fn set_certified(&self) {
        self.certified.store(true, Ordering::Relaxed);
    }

    pub(crate) fn certified(&self) -> bool {
        self.certified.load(Ordering::Relaxed)
    }

    /// Records one scoped read observed at commit count `at`.
    pub(crate) fn record_read(&self, pattern: &Pattern, at: u64) {
        if self.certified() {
            self.footprint.lock().read(pattern.clone(), at);
        }
    }

    /// Records one device-row write visible at commit count `count`.
    pub(crate) fn record_write(&self, row: &str, count: u64) {
        if self.certified() {
            self.footprint.lock().write(row, count);
        }
    }

    /// Records a link write: both endpoint rows at `count`.
    pub(crate) fn record_link_write(&self, key: &LinkKey, count: u64) {
        if self.certified() {
            let mut fp = self.footprint.lock();
            fp.write(key.0.clone(), count);
            fp.write(key.1.clone(), count);
        }
    }

    pub(crate) fn take_footprint(&self) -> Footprint {
        std::mem::take(&mut *self.footprint.lock())
    }

    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        self.task_id
    }

    /// This task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the task was submitted urgent.
    pub fn urgent(&self) -> bool {
        self.urgent
    }

    /// The cancellation token this task observes at checkpoints.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Checkpoint: returns [`TaskError::Cancelled`] if cancellation has
    /// been requested. Called automatically on lock acquisition and every
    /// stateful [`crate::Network`] operation; long stateless computations
    /// may call it explicitly.
    pub fn check_cancelled(&self) -> TaskResult<()> {
        if self.cancel.is_cancelled() {
            Err(TaskError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The runtime this task runs under.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Locks `pattern` in `mode` — or, under optimistic execution, skips
    /// the lock tree entirely: conflicts are caught by commit-time
    /// validation instead of prevented by locks (that is the fast path).
    fn scope_object(&self, pattern: Pattern, mode: LockMode) -> TaskResult<Network<'_>> {
        if self.occ_active() {
            self.check_cancelled()?;
            return Ok(Network::new(self, pattern, Vec::new(), mode));
        }
        let covering = self.runtime.acquire(self, &pattern, mode)?;
        Ok(Network::new(self, pattern, covering, mode))
    }

    /// Creates a network object over `scope` (glob syntax, e.g.
    /// `dc01.pod03.*`) with write intent: `get`, `set`, and `apply` are all
    /// allowed, and the region is locked exclusively.
    ///
    /// Blocks until the lock is granted; may fail as a deadlock victim.
    /// Under [`crate::Isolation::Occ`] no locks are taken and the object
    /// reads from the attempt's frozen snapshot, staging its writes.
    pub fn network(&self, scope: &str) -> TaskResult<Network<'_>> {
        let pattern = self
            .runtime
            .pattern_cache()
            .get(&occam_regex::glob_to_regex(scope))?;
        self.scope_object(pattern, LockMode::Exclusive)
    }

    /// Creates a read-only network object over `scope` (shared lock); only
    /// `get` operations are allowed.
    pub fn network_read(&self, scope: &str) -> TaskResult<Network<'_>> {
        let pattern = self
            .runtime
            .pattern_cache()
            .get(&occam_regex::glob_to_regex(scope))?;
        self.scope_object(pattern, LockMode::Shared)
    }

    /// Creates a write-intent network object from a raw regex scope.
    pub fn network_regex(&self, regex: &str) -> TaskResult<Network<'_>> {
        let pattern = self.runtime.pattern_cache().get(regex)?;
        self.scope_object(pattern, LockMode::Exclusive)
    }

    /// Creates a write-intent network object scoped to exactly the given
    /// device names (the paper's `to_regex(dev_names)` helper).
    pub fn network_of_devices<S: AsRef<str>>(&self, names: &[S]) -> TaskResult<Network<'_>> {
        let pattern = occam_regex::Pattern::from_names(names)?;
        self.scope_object(pattern, LockMode::Exclusive)
    }

    pub(crate) fn record_covering(&self, ids: &[ObjectId]) {
        self.covering.lock().extend_from_slice(ids);
    }

    pub(crate) fn take_covering(&self) -> Vec<ObjectId> {
        std::mem::take(&mut *self.covering.lock())
    }

    pub(crate) fn push_log(&self, entry: LogEntry, undo: UndoRecord) {
        self.log.lock().push(entry);
        self.undo.lock().push(undo);
        self.op_offsets.lock().push(self.started.elapsed());
    }

    pub(crate) fn push_activity(&self, line: String) {
        self.activity.lock().push(line);
    }

    pub(crate) fn into_report(self, outcome: (TaskState, Option<TaskError>)) -> TaskReport {
        let (state, error) = outcome;
        let wall = self.started.elapsed();
        let log = self.log.into_inner();
        let undo = self.undo.into_inner();
        let activity = self.activity.into_inner();
        let op_offsets = self.op_offsets.into_inner();
        let (rollback, rollback_error) = if state == TaskState::Aborted {
            match parse_log(&log) {
                Ok(tree) => (Some(rollback_plan(&tree)), None),
                Err(e) => (None, Some(e.to_string())),
            }
        } else {
            (None, None)
        };
        if let Some(plan) = &rollback {
            let obs = self.runtime.obs_handles();
            obs.rollback_plans.inc();
            obs.events.record(occam_obs::EventKind::RollbackPlanned {
                task: self.task_id.0,
                steps: plan.steps.len() as u64,
            });
        }
        TaskReport {
            task_id: self.task_id,
            name: self.name,
            state,
            error,
            log,
            undo,
            activity,
            op_offsets,
            wall,
            rollback,
            rollback_error,
            attempts: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_rollback::OpType;

    #[test]
    fn report_generation_for_aborted_task() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(1), "t".into(), false, CancelToken::new());
        ctx.push_log(
            LogEntry::ok(OpType::DbChange, "set(X)"),
            UndoRecord::Db {
                attr: "X".into(),
                old: vec![("d".into(), None)],
            },
        );
        let report = ctx.into_report((TaskState::Aborted, Some(TaskError::Failed("x".into()))));
        assert_eq!(report.state, TaskState::Aborted);
        let plan = report.rollback.as_ref().unwrap();
        assert_eq!(plan.arrow_notation(), "r(DB_CHANGE)");
        assert_eq!(report.rollback_steps().len(), 1);
    }

    #[test]
    fn op_offsets_track_progress_monotonically() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("timed").run(|ctx| {
            let net = ctx.network("dc01.pod00.agg00")?;
            net.apply("f_drain")?;
            std::thread::sleep(std::time::Duration::from_millis(10));
            net.apply("f_undrain")?;
            Ok(())
        });
        assert_eq!(report.op_offsets.len(), report.log.len());
        assert!(report.op_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(report.wall >= *report.op_offsets.last().unwrap());
        assert!(report.op_offsets[1] - report.op_offsets[0] >= std::time::Duration::from_millis(9));
    }

    #[test]
    fn completed_task_has_no_plan() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(2), "t".into(), false, CancelToken::new());
        let report = ctx.into_report((TaskState::Completed, None));
        assert!(report.rollback.is_none());
        assert!(report.error.is_none());
    }

    #[test]
    fn malformed_log_reports_grammar_error() {
        let rt = crate::test_support::tiny_runtime();
        let ctx = TaskCtx::new(rt, TaskId(3), "t".into(), false, CancelToken::new());
        // UNDRAIN without DRAIN: outside the grammar.
        ctx.push_log(
            LogEntry::ok(OpType::Undrain, "apply(f_undrain)"),
            UndoRecord::None,
        );
        let report = ctx.into_report((TaskState::Aborted, Some(TaskError::Failed("x".into()))));
        assert!(report.rollback.is_none());
        assert!(report.rollback_error.is_some());
    }
}
