//! The network object: the paper's core programming abstraction (§3).
//!
//! A `Network` scopes a region of devices; `get`/`set` operate on the
//! logical state in the source-of-truth database, `apply` executes device
//! functions on the physical network through the management-plane service.
//! Every stateful operation is recorded in the task's typed execution log
//! for rollback-plan generation.

use crate::error::{TaskError, TaskResult};
use crate::task::{TaskCtx, UndoRecord};
use occam_emunet::FuncArgs;
use occam_netdb::{AttrValue, LinkKey, ReadSource, ReadView, StoreSnapshot, WriteOp};
use occam_objtree::{LockMode, ObjectId};
use occam_regex::Pattern;
use occam_rollback::{func_optype, LogEntry, OpStatus};
use std::collections::BTreeMap;

/// A logically centralized view over a region of the network.
///
/// Created by [`TaskCtx::network`] (exclusive intent) or
/// [`TaskCtx::network_read`] (shared intent); the runtime holds the
/// region's locks until the whole task commits or aborts (strict 2PL), so
/// dropping or [`Network::close`]-ing the object does *not* release them.
pub struct Network<'t> {
    ctx: &'t TaskCtx,
    pattern: Pattern,
    #[allow(dead_code)]
    covering: Vec<ObjectId>,
    mode: LockMode,
}

impl<'t> Network<'t> {
    pub(crate) fn new(
        ctx: &'t TaskCtx,
        pattern: Pattern,
        covering: Vec<ObjectId>,
        mode: LockMode,
    ) -> Network<'t> {
        Network {
            ctx,
            pattern,
            covering,
            mode,
        }
    }

    /// The compiled scope of this object.
    pub fn scope(&self) -> &Pattern {
        &self.pattern
    }

    fn require_write(&self, what: &str) -> TaskResult<()> {
        if self.mode == LockMode::Exclusive {
            Ok(())
        } else {
            let _ = what;
            Err(TaskError::ReadOnlyObject {
                scope: self.pattern.source().to_string(),
            })
        }
    }

    /// Under optimistic execution: tracks this object's scope in the
    /// attempt's read set, records the read for certification, and
    /// returns a read-your-writes overlay of the frozen snapshot.
    /// Returns `None` under 2PL.
    fn occ_overlay(&self) -> Option<StoreSnapshot> {
        let mut slot = self.ctx.occ.lock();
        let st = slot.as_mut()?;
        st.track_pattern(&self.pattern);
        let at = st.base_commits;
        let overlay = st.staged.overlay();
        drop(slot);
        self.ctx.record_read(&self.pattern, at);
        Some(overlay)
    }

    /// One consistent read snapshot for the 2PL path, recorded in the
    /// certifier footprint at its exact commit count.
    fn read_snapshot(&self) -> TaskResult<StoreSnapshot> {
        let snap = self.ctx.runtime().db().query_snapshot()?;
        self.ctx.record_read(&self.pattern, snap.commits());
        Ok(snap)
    }

    /// Stages one batch under optimistic execution, tracking the rows it
    /// writes for certification.
    fn occ_stage(&self, ops: &[WriteOp], rows: Vec<String>, label: &str) -> TaskResult<()> {
        let mut slot = self.ctx.occ.lock();
        let st = slot.as_mut().expect("occ_stage only under OCC");
        match st.staged.apply(ops) {
            Ok(()) => {
                st.pending_rows.extend(rows);
                st.write_patterns.push(self.pattern.clone());
                drop(slot);
                // Staged writes publish only if commit-time validation
                // passes, so they sit outside the rollback grammar: an
                // aborted optimistic attempt has nothing to undo.
                self.ctx
                    .push_activity(format!("occ staged {label} ({} ops)", ops.len()));
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The device names currently in the region (from the database).
    pub fn devices(&self) -> TaskResult<Vec<String>> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_get.inc();
        if let Some(snap) = self.occ_overlay() {
            return Ok(snap.select_devices(&self.pattern));
        }
        Ok(self.read_snapshot()?.select_devices(&self.pattern))
    }

    /// Reads one attribute for every device in the region: the paper's
    /// `get()`, returning a dictionary keyed on device ids.
    pub fn get(&self, attr: &str) -> TaskResult<BTreeMap<String, AttrValue>> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_get.inc();
        if let Some(snap) = self.occ_overlay() {
            return Ok(snap.get_attr(&self.pattern, attr));
        }
        Ok(self.read_snapshot()?.get_attr(&self.pattern, attr))
    }

    /// Reads the full attribute map of every device in the region.
    pub fn get_all(&self) -> TaskResult<BTreeMap<String, BTreeMap<String, AttrValue>>> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_get.inc();
        if let Some(snap) = self.occ_overlay() {
            return Ok(snap.get_all(&self.pattern));
        }
        Ok(self.read_snapshot()?.get_all(&self.pattern))
    }

    /// Reads one attribute across the links touching the region; link keys
    /// are `(a_end, z_end)` pairs, as in the paper's link-status example.
    pub fn get_links(&self, attr: &str) -> TaskResult<BTreeMap<LinkKey, AttrValue>> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_get.inc();
        if let Some(snap) = self.occ_overlay() {
            return Ok(snap.get_link_attr(&self.pattern, attr));
        }
        Ok(self.read_snapshot()?.get_link_attr(&self.pattern, attr))
    }

    /// Takes a consistent lock-free view of the whole store, scoped reads
    /// included: all reads against the returned handle observe the same
    /// committed version, so multi-attribute audits cannot tear across a
    /// concurrent commit. Counted and fault-injected like any other query.
    ///
    /// When a replica read router is attached
    /// ([`crate::Runtime::attach_read_router`]) the view is served
    /// from a caught-up follower within the router's staleness bound —
    /// still one consistent committed version, possibly a few commits
    /// behind the leader ([`ReadView::source`] says which; the lag is
    /// surfaced in `netdb.repl.read_lag_commits`). Under optimistic
    /// execution the view is the attempt's own overlay, and the whole
    /// store joins the attempt's read set (a full view can depend on
    /// anything).
    pub fn view(&self) -> TaskResult<ReadView> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_get.inc();
        let everything = self.ctx.runtime().pattern_cache().get(".*")?;
        {
            let mut slot = self.ctx.occ.lock();
            if let Some(st) = slot.as_mut() {
                st.track_pattern(&everything);
                let at = st.base_commits;
                let overlay = st.staged.overlay();
                drop(slot);
                self.ctx.record_read(&everything, at);
                return Ok(ReadView::new(overlay, ReadSource::Leader));
            }
        }
        let view = self.ctx.runtime().routed_view()?;
        self.ctx.record_read(&everything, view.commits());
        Ok(view)
    }

    /// Writes one attribute on every device in the region: the paper's
    /// `set()`. Returns the devices written. Logged as `DB_CHANGE` with the
    /// overwritten values for rollback; under optimistic execution the
    /// write is staged privately instead (nothing to roll back until it
    /// publishes).
    pub fn set(&self, attr: &str, value: AttrValue) -> TaskResult<Vec<String>> {
        self.ctx.check_cancelled()?;
        self.require_write("set")?;
        self.ctx.runtime().obs_handles().ops_set.inc();
        let label = format!("set({attr})");
        if let Some(snap) = self.occ_overlay() {
            let devices = snap.select_devices(&self.pattern);
            let ops: Vec<WriteOp> = devices
                .iter()
                .map(|n| WriteOp::SetDeviceAttr {
                    name: n.clone(),
                    attr: attr.to_string(),
                    value: value.clone(),
                })
                .collect();
            self.occ_stage(&ops, devices.clone(), &label)?;
            return Ok(devices);
        }
        let db = self.ctx.runtime().db();
        // Capture previous values (absent = None) for the undo payload.
        type Captured = (Vec<String>, Vec<(String, Option<AttrValue>)>);
        let capture = || -> Result<Captured, TaskError> {
            // One snapshot: names and previous values are mutually
            // consistent even against concurrent writers.
            let snap = self.read_snapshot()?;
            let devices = snap.select_devices(&self.pattern);
            let current = snap.get_attr(&self.pattern, attr);
            let old = devices
                .iter()
                .map(|d| (d.clone(), current.get(d).cloned()))
                .collect();
            Ok((devices, old))
        };
        let (devices, old) = match capture() {
            Ok(x) => x,
            Err(e) => {
                self.ctx.push_log(
                    LogEntry::failed(occam_rollback::OpType::DbChange, &label),
                    UndoRecord::None,
                );
                return Err(e);
            }
        };
        match db.set_attr_seq(&self.pattern, attr, value) {
            Ok((written, seq)) => {
                for d in &written {
                    self.ctx.record_write(d, seq + 1);
                }
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices: devices.clone(),
                        status: OpStatus::Ok,
                    },
                    UndoRecord::Db {
                        attr: attr.to_string(),
                        old,
                    },
                );
                Ok(written)
            }
            Err(e) => {
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices,
                        status: OpStatus::Failed,
                    },
                    UndoRecord::None,
                );
                Err(e.into())
            }
        }
    }

    /// Writes one attribute with distinct per-device values (the paper's
    /// dictionary-valued `set`). All named devices must be in scope.
    pub fn set_per_device(
        &self,
        values: &BTreeMap<String, AttrValue>,
        attr: &str,
    ) -> TaskResult<()> {
        self.ctx.check_cancelled()?;
        self.require_write("set_per_device")?;
        self.ctx.runtime().obs_handles().ops_set.inc();
        for d in values.keys() {
            if !self.pattern.matches(d) {
                return Err(TaskError::Failed(format!(
                    "device {d} outside object scope {}",
                    self.pattern.source()
                )));
            }
        }
        let label = format!("set({attr})");
        if self.ctx.occ_active() {
            let ops: Vec<WriteOp> = values
                .iter()
                .map(|(n, v)| WriteOp::SetDeviceAttr {
                    name: n.clone(),
                    attr: attr.to_string(),
                    value: v.clone(),
                })
                .collect();
            return self.occ_stage(&ops, values.keys().cloned().collect(), &label);
        }
        let db = self.ctx.runtime().db();
        let current = self.read_snapshot()?.get_attr(&self.pattern, attr);
        let old: Vec<(String, Option<AttrValue>)> = values
            .keys()
            .map(|d| (d.clone(), current.get(d).cloned()))
            .collect();
        match db.set_attr_per_device(values, attr) {
            Ok(seq) => {
                for d in values.keys() {
                    self.ctx.record_write(d, seq + 1);
                }
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices: values.keys().cloned().collect(),
                        status: OpStatus::Ok,
                    },
                    UndoRecord::Db {
                        attr: attr.to_string(),
                        old,
                    },
                );
                Ok(())
            }
            Err(e) => {
                self.ctx.push_log(
                    LogEntry::failed(occam_rollback::OpType::DbChange, &label),
                    UndoRecord::None,
                );
                Err(e.into())
            }
        }
    }

    /// Writes one attribute on every link touching the region. Logged as
    /// `DB_CHANGE`.
    pub fn set_links(&self, attr: &str, value: AttrValue) -> TaskResult<Vec<LinkKey>> {
        self.ctx.check_cancelled()?;
        self.require_write("set_links")?;
        self.ctx.runtime().obs_handles().ops_set.inc();
        let label = format!("set_links({attr})");
        if let Some(snap) = self.occ_overlay() {
            let keys = snap.links_touching(&self.pattern);
            let ops: Vec<WriteOp> = keys
                .iter()
                .map(|(a, z)| WriteOp::SetLinkAttr {
                    a_end: a.clone(),
                    z_end: z.clone(),
                    attr: attr.to_string(),
                    value: value.clone(),
                })
                .collect();
            // A link write touches both endpoint rows.
            let rows = keys
                .iter()
                .flat_map(|(a, z)| [a.clone(), z.clone()])
                .collect();
            self.occ_stage(&ops, rows, &label)?;
            return Ok(keys);
        }
        let db = self.ctx.runtime().db();
        let snap = self.read_snapshot()?;
        let current = snap.get_link_attr(&self.pattern, attr);
        let keys = snap.links_touching(&self.pattern);
        let old: Vec<(LinkKey, Option<AttrValue>)> = keys
            .iter()
            .map(|k| (k.clone(), current.get(k).cloned()))
            .collect();
        match db.set_link_attr_scope_seq(&self.pattern, attr, value) {
            Ok((written, seq)) => {
                for k in &written {
                    self.ctx.record_link_write(k, seq + 1);
                }
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices: keys.iter().map(|(a, z)| format!("{a}<->{z}")).collect(),
                        status: OpStatus::Ok,
                    },
                    UndoRecord::LinkDb {
                        attr: attr.to_string(),
                        old,
                    },
                );
                Ok(written)
            }
            Err(e) => {
                self.ctx.push_log(
                    LogEntry::failed(occam_rollback::OpType::DbChange, &label),
                    UndoRecord::None,
                );
                Err(e.into())
            }
        }
    }

    /// Inserts a new device row into the source of truth. The name must be
    /// inside this object's scope — which is exactly why scopes are
    /// symbolic regexes (paper §3.1): the region covers devices that are
    /// *being added* by the task, so the lock protects them before they
    /// exist.
    ///
    /// Logged as `DB_CHANGE`; rollback deletes the row again.
    pub fn insert_device(&self, name: &str, attrs: Vec<(String, AttrValue)>) -> TaskResult<()> {
        self.ctx.check_cancelled()?;
        self.require_write("insert_device")?;
        self.ctx.runtime().obs_handles().ops_set.inc();
        if !self.pattern.matches(name) {
            return Err(TaskError::Failed(format!(
                "device {name} outside object scope {}",
                self.pattern.source()
            )));
        }
        let label = format!("insert_device({name})");
        if self.ctx.occ_active() {
            let ops = [WriteOp::InsertDevice {
                name: name.to_string(),
                attrs,
            }];
            return self.occ_stage(&ops, vec![name.to_string()], &label);
        }
        let db = self.ctx.runtime().db();
        match db.insert_device(name, attrs) {
            Ok(seq) => {
                self.ctx.record_write(name, seq + 1);
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices: vec![name.to_string()],
                        status: OpStatus::Ok,
                    },
                    UndoRecord::Inserted {
                        name: name.to_string(),
                    },
                );
                Ok(())
            }
            Err(e) => {
                self.ctx.push_log(
                    LogEntry::failed(occam_rollback::OpType::DbChange, &label),
                    UndoRecord::None,
                );
                Err(e.into())
            }
        }
    }

    /// Logically deletes a device row (and its links) from the source of
    /// truth — the first half of the paper's §2.3 migration example. Other
    /// tasks cannot observe the intermediate state because the region stays
    /// locked until the whole task commits.
    ///
    /// Logged as `DB_CHANGE`; rollback re-inserts the row with its
    /// attributes and links.
    pub fn remove_device(&self, name: &str) -> TaskResult<()> {
        self.ctx.check_cancelled()?;
        self.require_write("remove_device")?;
        self.ctx.runtime().obs_handles().ops_set.inc();
        if !self.pattern.matches(name) {
            return Err(TaskError::Failed(format!(
                "device {name} outside object scope {}",
                self.pattern.source()
            )));
        }
        let label = format!("remove_device({name})");
        let one = Pattern::from_names(&[name])?;
        if self.ctx.occ_active() {
            // The delete cascades into the links' peer rows; record them
            // as written so the certifier sees the cascade.
            let snap = self.occ_overlay().expect("occ active");
            let mut rows = vec![name.to_string()];
            for (a, z) in snap.links_touching(&one) {
                rows.push(if a == name { z } else { a });
            }
            let ops = [WriteOp::DeleteDevice {
                name: name.to_string(),
            }];
            return self.occ_stage(&ops, rows, &label);
        }
        let db = self.ctx.runtime().db();
        // Capture the row and its links for the undo payload — one
        // consistent snapshot for both.
        let snap = self.read_snapshot()?;
        let attrs: Vec<(String, AttrValue)> = snap
            .get_all(&one)
            .remove(name)
            .map(|m| m.into_iter().collect())
            .unwrap_or_default();
        let mut links = Vec::new();
        for (a, z) in snap.links_touching(&one) {
            let peer = if a == name { z.clone() } else { a.clone() };
            let attrs = snap.link_attrs(&a, &z).unwrap_or_default();
            links.push((peer, attrs.into_iter().collect()));
        }
        match db.delete_device(name) {
            Ok(seq) => {
                self.ctx.record_write(name, seq + 1);
                for (peer, _) in &links {
                    self.ctx.record_write(peer, seq + 1);
                }
                self.ctx.push_log(
                    LogEntry {
                        typ: occam_rollback::OpType::DbChange,
                        label,
                        devices: vec![name.to_string()],
                        status: OpStatus::Ok,
                    },
                    UndoRecord::Removed {
                        name: name.to_string(),
                        attrs,
                        links,
                    },
                );
                Ok(())
            }
            Err(e) => {
                self.ctx.push_log(
                    LogEntry::failed(occam_rollback::OpType::DbChange, &label),
                    UndoRecord::None,
                );
                Err(e.into())
            }
        }
    }

    /// Executes a device function on every device in the region: the
    /// paper's `apply(func)`.
    pub fn apply(&self, func: &str) -> TaskResult<String> {
        self.apply_with(func, &FuncArgs::none())
    }

    /// `apply` with function arguments.
    ///
    /// Device functions have physical side effects that cannot be staged
    /// and validated optimistically, so under [`crate::Isolation::Occ`]
    /// the attempt aborts with [`TaskError::OccFallback`] and the driver
    /// transparently re-executes the whole task under 2PL.
    pub fn apply_with(&self, func: &str, args: &FuncArgs) -> TaskResult<String> {
        self.ctx.check_cancelled()?;
        self.ctx.runtime().obs_handles().ops_apply.inc();
        self.require_write("apply")?;
        {
            let mut slot = self.ctx.occ.lock();
            if let Some(st) = slot.as_mut() {
                let why = format!("apply({func}) has physical side effects");
                st.needs_fallback = Some(why.clone());
                return Err(TaskError::OccFallback(why));
            }
        }
        let devices = self.devices()?;
        let label = format!("apply({func})");
        let result = self.ctx.runtime().service().execute(func, &devices, args);
        match func_optype(func) {
            Some(typ) => {
                let status = if result.is_ok() {
                    OpStatus::Ok
                } else {
                    OpStatus::Failed
                };
                self.ctx.push_log(
                    LogEntry {
                        typ,
                        label,
                        devices,
                        status,
                    },
                    UndoRecord::None,
                );
            }
            None => {
                // Untyped device functions sit outside the Table 1 grammar;
                // they are recorded for the operator but not parsed.
                self.ctx.push_activity(format!(
                    "{label} on {} devices: {}",
                    devices.len(),
                    match &result {
                        Ok(msg) => msg.clone(),
                        Err(e) => format!("FAILED: {e}"),
                    }
                ));
            }
        }
        result.map_err(TaskError::from)
    }

    /// Marks the object finished. The serialization point for the whole
    /// task is task commit; locks are held until then (strict 2PL), so
    /// `close` is a readability marker, mirroring the paper's examples.
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use occam_netdb::attrs;

    #[test]
    fn get_set_roundtrip_and_log() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("maintenance").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            let statuses = net.get(attrs::DEVICE_STATUS)?;
            assert!(!statuses.is_empty());
            assert!(statuses
                .values()
                .all(|v| v.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE)));
            net.close();
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
        assert_eq!(report.log.len(), 1);
        assert!(matches!(report.undo[0], UndoRecord::Db { .. }));
    }

    #[test]
    fn read_object_rejects_writes() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("reader").run(|ctx| {
            let net = ctx.network_read("dc01.pod00.*")?;
            let err = net.set("X", 1i64.into()).unwrap_err();
            assert!(matches!(err, TaskError::ReadOnlyObject { .. }));
            let err = net.apply("f_drain").unwrap_err();
            assert!(matches!(err, TaskError::ReadOnlyObject { .. }));
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
    }

    #[test]
    fn apply_executes_and_logs_typed_funcs() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("drainer").run(|ctx| {
            let net = ctx.network("dc01.pod00.agg00")?;
            net.apply("f_drain")?;
            net.apply("f_undrain")?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
        assert_eq!(report.log.len(), 2);
        assert_eq!(report.log[0].typ, occam_rollback::OpType::Drain);
        assert_eq!(report.log[1].typ, occam_rollback::OpType::Undrain);
        assert_eq!(report.log[0].devices, vec!["dc01.pod00.agg00".to_string()]);
    }

    #[test]
    fn untyped_funcs_go_to_activity_log() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("config").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.apply("f_create_config")?;
            Ok(())
        });
        assert!(report.log.is_empty());
        assert_eq!(report.activity.len(), 1);
        assert!(report.activity[0].contains("f_create_config"));
    }

    #[test]
    fn set_per_device_rejects_out_of_scope() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("oops").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            let mut m = BTreeMap::new();
            m.insert("dc01.pod01.tor00".to_string(), AttrValue::Int(1));
            net.set_per_device(&m, "X")
        });
        assert_eq!(report.state, TaskState::Aborted);
        assert!(matches!(report.error, Some(TaskError::Failed(_))));
    }

    #[test]
    fn dynamic_object_from_devices() {
        // The paper's turnup_links_subnet pattern: build an object over a
        // computed device list.
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("subnet").run(|ctx| {
            let net = ctx.network_read("dc01.*")?;
            let devs = net.devices()?;
            let picked: Vec<String> = devs.into_iter().take(2).collect();
            let subnet = ctx.network_of_devices(&picked)?;
            assert_eq!(subnet.devices()?.len(), 2);
            subnet.set("MARK", 1i64.into())?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
    }

    #[test]
    fn failed_device_function_aborts_with_plan() {
        let rt = crate::test_support::tiny_runtime();
        // Fail the next optic test.
        crate::test_support::emu_service(&rt)
            .library()
            .fail_at("f_optic_test", 0);
        let report = rt.task("upgrade").run(|ctx| {
            let net = ctx.network("dc01.pod00.agg00")?;
            net.apply("f_drain")?;
            net.set(attrs::FIRMWARE_VERSION, "fw-2".into())?;
            net.apply("f_push")?;
            net.apply("f_alloc_ip")?;
            net.apply("f_ping_test")?;
            net.apply("f_optic_test")?;
            net.apply("f_dealloc_ip")?;
            net.apply("f_undrain")?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Aborted);
        let plan = report.rollback.as_ref().expect("plan");
        assert_eq!(
            plan.arrow_notation(),
            "UNPREPARE -> r(DB_CHANGE) -> PUSH_CFG -> UNDRAIN"
        );
    }
}
