//! The unified task-submission API.
//!
//! Historically the runtime grew six overlapping entry points — one per
//! combination of urgency, cancellation, and execution vehicle. Those
//! shims are gone; all submission goes through one fluent builder:
//!
//! ```
//! use occam_core::{RetryPolicy, CancelToken, TaskState};
//! use occam_emunet::{EmuNet, EmuService};
//! use occam_netdb::{attrs, Database};
//! use occam_topology::FatTree;
//! use std::sync::Arc;
//!
//! # let ft = FatTree::build(1, 4).unwrap();
//! # let db = Arc::new(Database::new());
//! # for (_, d) in ft.topo.devices().filter(|(_, d)| d.role != occam_topology::Role::Host) {
//! #     db.insert_device(&d.name, vec![]).unwrap();
//! # }
//! # let rt = occam_core::Runtime::new(db, Arc::new(EmuService::new(EmuNet::from_fattree(&ft))));
//! let token = CancelToken::new();
//! let report = rt
//!     .task("device_maintenance")
//!     .urgent()
//!     .cancel_token(token)
//!     .retry(RetryPolicy::attempts(3))
//!     .run(|ctx| {
//!         let pod = ctx.network("dc01.pod03.*")?;
//!         pod.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
//!         pod.apply("f_drain")?;
//!         Ok(())
//!     });
//! assert_eq!(report.state, TaskState::Completed);
//! assert_eq!(report.attempts, 1);
//! ```
//!
//! Terminals choose the execution vehicle:
//!
//! - [`TaskBuilder::run`] — synchronous, on the calling thread;
//! - [`TaskBuilder::spawn`] — a dedicated thread (tests, one-shot tools);
//! - [`TaskBuilder::spawn_pooled`] — the bounded worker pool (services);
//! - [`TaskBuilder::run_once`] — synchronous for `FnOnce` programs that
//!   cannot be re-executed (retry is disabled).
//!
//! Retry semantics: `run`/`spawn`/`spawn_pooled` take `FnMut` programs so
//! a [`RetryPolicy`] can re-execute them after *transient* aborts
//! ([`crate::TaskError::is_transient`]). Between attempts the runtime
//! mechanically executes the failed attempt's suggested rollback plan, so
//! every attempt starts from the task's initial state; if that rollback
//! itself fails, retrying stops and the aborted report is surfaced for
//! operator recovery.

use crate::pool::PooledHandle;
use crate::retry::RetryPolicy;
use crate::runtime::Runtime;
use crate::task::{CancelToken, TaskCtx, TaskReport};
use crate::TaskResult;

/// Concurrency-control mode for one task (DESIGN.md §16).
///
/// The mode is a *declaration on the task*, not a property of individual
/// operations: the same management program runs unchanged under either
/// mode, and [`Isolation::Occ`] transparently re-executes under
/// [`Isolation::TwoPl`] when optimism does not pay off — after
/// `max_retries` commit-validation conflicts, or immediately when the
/// program performs an operation that cannot be staged (a device
/// function `apply`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Isolation {
    /// Strict two-phase locking through the multi-granularity object
    /// tree — the paper's default. Locks accumulate during the task and
    /// release together at commit or abort.
    #[default]
    TwoPl,
    /// Optimistic concurrency: the task runs lock-free against a frozen
    /// consistent snapshot, database writes are staged privately, and at
    /// commit the runtime validates that no other commit touched any
    /// shard the task read or wrote (per-shard version counters). A
    /// validation conflict re-runs the task from a fresh snapshot.
    Occ {
        /// Commit-validation conflicts tolerated before the task falls
        /// back to pessimistic (2PL) execution.
        max_retries: u32,
    },
}

/// A fluent, one-stop task submission builder (see the module docs).
///
/// Created by [`Runtime::task`]; defaults: not urgent, a fresh cancel
/// token, no retries, [`Isolation::TwoPl`].
#[must_use = "a TaskBuilder does nothing until a terminal (`run`, `spawn`, `spawn_pooled`) is called"]
pub struct TaskBuilder {
    rt: Runtime,
    name: String,
    urgent: bool,
    cancel: CancelToken,
    retry: RetryPolicy,
    isolation: Isolation,
}

impl Runtime {
    /// Starts building a task named `name` — the single entry point for
    /// all task submission.
    pub fn task(&self, name: impl Into<String>) -> TaskBuilder {
        TaskBuilder {
            rt: self.clone(),
            name: name.into(),
            urgent: false,
            cancel: CancelToken::new(),
            retry: RetryPolicy::none(),
            isolation: Isolation::TwoPl,
        }
    }
}

impl TaskBuilder {
    /// Flags the task urgent: its lock requests pre-empt policy order
    /// (outage recovery, §5) and pooled execution takes the fast lane.
    pub fn urgent(mut self) -> TaskBuilder {
        self.urgent = true;
        self
    }

    /// Sets urgency from a flag (for callers plumbing a boolean through).
    pub fn urgency(mut self, urgent: bool) -> TaskBuilder {
        self.urgent = urgent;
        self
    }

    /// Attaches a cancellation token, observed at task checkpoints (lock
    /// acquisition and stateful operations). Cancellation also stops any
    /// pending retries.
    pub fn cancel_token(mut self, cancel: CancelToken) -> TaskBuilder {
        self.cancel = cancel;
        self
    }

    /// Sets the retry policy for transient aborts (default: no retries).
    pub fn retry(mut self, policy: RetryPolicy) -> TaskBuilder {
        self.retry = policy;
        self
    }

    /// Sets the concurrency-control mode (default: [`Isolation::TwoPl`]).
    /// Under [`Isolation::Occ`] the task runs lock-free against a frozen
    /// snapshot, validating at commit; validation conflicts and
    /// un-stageable operations transparently fall back to 2PL.
    pub fn isolation(mut self, isolation: Isolation) -> TaskBuilder {
        self.isolation = isolation;
        self
    }

    /// Runs the task synchronously on the calling thread and returns its
    /// report (the final attempt's, with [`TaskReport::attempts`] set).
    pub fn run<F>(self, program: F) -> TaskReport
    where
        F: FnMut(&TaskCtx) -> TaskResult<()>,
    {
        self.rt.execute_with_policy(
            &self.name,
            self.urgent,
            self.cancel,
            &self.retry,
            self.isolation,
            program,
        )
    }

    /// Runs a `FnOnce` program synchronously. Because the program cannot
    /// be called twice, any configured retry policy is ignored (single
    /// attempt) and the task always executes pessimistically — OCC needs
    /// re-execution for both conflict retries and the 2PL fallback.
    /// Prefer [`TaskBuilder::run`] with a re-runnable program when
    /// retries or [`Isolation::Occ`] matter.
    pub fn run_once<F>(self, program: F) -> TaskReport
    where
        F: FnOnce(&TaskCtx) -> TaskResult<()>,
    {
        self.rt
            .execute_attempt(&self.name, self.urgent, self.cancel, false, program)
    }

    /// Spawns the task on a dedicated OS thread; the handle yields its
    /// report. One thread per task — fine for tests and one-shot tooling;
    /// services should use [`TaskBuilder::spawn_pooled`].
    pub fn spawn<F>(self, program: F) -> std::thread::JoinHandle<TaskReport>
    where
        F: FnMut(&TaskCtx) -> TaskResult<()> + Send + 'static,
    {
        std::thread::spawn(move || {
            self.rt.execute_with_policy(
                &self.name,
                self.urgent,
                self.cancel,
                &self.retry,
                self.isolation,
                program,
            )
        })
    }

    /// Submits the task to the runtime's bounded worker pool (at most
    /// `pool_size` tasks run concurrently, [`Runtime::configure_pool`];
    /// urgent tasks take the fast lane). This is the service-grade
    /// submission path — it never spawns per-task threads.
    pub fn spawn_pooled<F>(self, program: F) -> PooledHandle
    where
        F: FnMut(&TaskCtx) -> TaskResult<()> + Send + 'static,
    {
        let handle = PooledHandle::new();
        let filler = handle.clone();
        let TaskBuilder {
            rt,
            name,
            urgent,
            cancel,
            retry,
            isolation,
        } = self;
        rt.spawn_pooled(urgent, move |rt| {
            filler.fill(rt.execute_with_policy(&name, urgent, cancel, &retry, isolation, program));
        });
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use crate::TaskError;
    use occam_netdb::{attrs, FaultPlan};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn run_completes_like_the_old_entry_point() {
        let rt = crate::test_support::tiny_runtime();
        let report = rt.task("noop").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            let _ = net.get(attrs::DEVICE_STATUS)?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
        assert_eq!(report.attempts, 1);
        assert_eq!(rt.active_objects(), 0);
    }

    #[test]
    fn transient_abort_is_retried_and_rolled_back_between_attempts() {
        let rt = crate::test_support::tiny_runtime();
        // Writing one attr over the single-device scope costs a couple of
        // queries; fail one mid-task on the first execution only.
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let report = rt
            .task("flaky")
            .retry(RetryPolicy::attempts(3))
            .run(move |ctx| {
                let n = c.fetch_add(1, Ordering::SeqCst);
                let net = ctx.network("dc01.pod00.agg00")?;
                net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
                if n == 0 {
                    // Transient failure after a stateful write: the retry
                    // loop must roll the write back before re-running.
                    return Err(TaskError::Db(occam_netdb::DbError::ConnectionFailure {
                        query_seq: 0,
                    }));
                }
                Ok(())
            });
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
        assert_eq!(report.attempts, 2);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(rt.obs().counter_value("core.task.retries"), 1);
        // The retried (successful) write is in place.
        let pat = occam_regex::Pattern::from_glob("dc01.pod00.agg00").unwrap();
        let vals = rt.db().get_attr(&pat, attrs::DEVICE_STATUS).unwrap();
        assert_eq!(
            vals["dc01.pod00.agg00"].as_str(),
            Some(attrs::STATUS_UNDER_MAINTENANCE)
        );
    }

    #[test]
    fn permanent_abort_is_never_retried() {
        let rt = crate::test_support::tiny_runtime();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let report = rt
            .task("permanent")
            .retry(RetryPolicy::attempts(5))
            .run(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Err(TaskError::Failed("semantic failure".into()))
            });
        assert_eq!(report.state, TaskState::Aborted);
        assert_eq!(report.attempts, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(rt.obs().counter_value("core.task.retries"), 0);
    }

    #[test]
    fn retries_exhaust_and_surface_the_final_report() {
        let rt = crate::test_support::tiny_runtime();
        rt.db().set_fault_plan(FaultPlan::random(1.0, 9));
        let report = rt
            .task("doomed")
            .retry(RetryPolicy::attempts(3))
            .run(|ctx| {
                let net = ctx.network("dc01.pod00.agg00")?;
                net.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
                Ok(())
            });
        assert_eq!(report.state, TaskState::Aborted);
        assert_eq!(report.attempts, 3);
        assert!(report.error.as_ref().unwrap().is_transient());
        assert_eq!(rt.obs().counter_value("core.task.retries"), 2);
    }

    #[test]
    fn cancelled_token_stops_retrying() {
        let rt = crate::test_support::tiny_runtime();
        let token = CancelToken::new();
        let t = token.clone();
        let report = rt
            .task("cancel-mid-retry")
            .cancel_token(token)
            .retry(RetryPolicy::attempts(10))
            .run(move |_| {
                t.cancel();
                Err(TaskError::Deadlock) // transient, but token is now set
            });
        assert_eq!(report.state, TaskState::Aborted);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn spawn_and_spawn_pooled_deliver_reports() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(2));
        let h = rt.task("threaded").spawn(|_| Ok(()));
        assert_eq!(h.join().unwrap().state, TaskState::Completed);
        let p = rt.task("pooled").urgent().spawn_pooled(|_| Ok(()));
        assert_eq!(p.wait().state, TaskState::Completed);
        assert_eq!(rt.obs().counter_value("core.tasks.completed"), 2);
    }

    #[test]
    fn run_once_accepts_fnonce_programs() {
        let rt = crate::test_support::tiny_runtime();
        let owned = String::from("moved-into-call");
        let report = rt.task("once").run_once(move |_| {
            drop(owned);
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
    }
}
