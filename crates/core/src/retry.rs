//! Retry/backoff policy for transient task failures.
//!
//! The paper's failure dataset is dominated by transient classes —
//! database connectivity loss (63%) and flaky management-session RPCs —
//! where re-executing the task is both safe (the runtime rolls the failed
//! attempt back first, see `TaskBuilder::retry`) and usually sufficient.
//! [`RetryPolicy`] says *when* to re-execute: how many attempts, and how
//! long to back off between them.
//!
//! Backoff is exponential with **deterministic jitter**: the jitter factor
//! is derived from the policy seed and the attempt number, never from a
//! global RNG or the clock, so a seeded chaos campaign replays the exact
//! same schedule run after run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// When and how aborted tasks are re-executed (see `TaskBuilder::retry`).
///
/// Only *transient* failures are retried ([`crate::TaskError::is_transient`]);
/// semantic failures (bad scope, failed precondition, cancellation) abort
/// immediately regardless of the policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, period. This is the default everywhere —
    /// retry is opt-in.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// Up to `max_attempts` total attempts (clamped to at least 1) with no
    /// delay between them. Compose with [`RetryPolicy::with_backoff`] and
    /// [`RetryPolicy::with_seed`].
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::none()
        }
    }

    /// Exponential backoff between attempts: attempt `n` (1-based) sleeps
    /// `min(cap, base · 2^(n-1))`, scaled by a deterministic jitter factor
    /// in `[0.5, 1.0)`.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> RetryPolicy {
        self.base = base;
        self.cap = cap.max(base);
        self
    }

    /// Seeds the jitter stream (campaigns pass their campaign seed so the
    /// whole schedule is reproducible).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Maximum total attempts (≥ 1).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The delay to sleep after failed attempt `attempt` (1-based), before
    /// attempt `attempt + 1`. Pure: same policy and attempt number give
    /// the same duration.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.cap);
        // Deterministic jitter: seeded per (policy seed, attempt), drawn
        // from the same StdRng the fault injectors use.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let factor = 0.5 + 0.5 * rng.random::<f64>();
        raw.mul_f64(factor)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_single_attempt_zero_backoff() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.backoff(1), Duration::ZERO);
        assert_eq!(RetryPolicy::default(), p);
    }

    #[test]
    fn backoff_grows_exponentially_under_the_cap() {
        let p = RetryPolicy::attempts(8)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(50))
            .with_seed(1);
        let d1 = p.backoff(1);
        let d2 = p.backoff(2);
        let d4 = p.backoff(4);
        // Jitter keeps each delay within [0.5, 1.0) of the raw value.
        assert!(d1 >= Duration::from_millis(5) && d1 < Duration::from_millis(10));
        assert!(d2 >= Duration::from_millis(10) && d2 < Duration::from_millis(20));
        assert!(
            d4 <= Duration::from_millis(50),
            "capped at 50ms, got {d4:?}"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_attempt() {
        let p = RetryPolicy::attempts(4)
            .with_backoff(Duration::from_millis(10), Duration::from_secs(1))
            .with_seed(42);
        assert_eq!(p.backoff(2), p.backoff(2));
        let other = p.clone().with_seed(43);
        assert_ne!(p.backoff(2), other.backoff(2), "seed moves the jitter");
    }

    #[test]
    fn attempts_clamps_to_one() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts(), 1);
    }
}
