//! Executing suggested rollback plans.
//!
//! The paper keeps the human in the loop: Occam *suggests* a concrete plan
//! and the operator carries it out. This module is the mechanical executor
//! an operator (or a test) can invoke to perform the suggested steps
//! against the database and the device service.

use crate::error::TaskError;
use crate::task::{TaskReport, UndoRecord};
use occam_emunet::{DeviceService, FuncArgs};
use occam_netdb::{attrs, Database, WriteOp};
use occam_rollback::UndoStep;

/// An error while executing a rollback plan.
///
/// Marked `#[non_exhaustive]` (like [`TaskError`]): match with a wildcard
/// arm, and branch retry decisions on [`RecoveryError::is_transient`].
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug)]
pub enum RecoveryError {
    /// The report has no plan (task completed, or its log was unparseable).
    NoPlan,
    /// A plan step referenced a log entry without the needed undo payload.
    MissingUndo {
        /// The log entry index.
        entry: usize,
    },
    /// A step failed while executing.
    StepFailed {
        /// Index of the failing plan step.
        step: usize,
        /// The underlying error.
        error: TaskError,
    },
}

impl RecoveryError {
    /// Whether re-executing the rollback can plausibly succeed: true only
    /// for step failures whose underlying [`TaskError`] is transient
    /// (rollback steps are idempotent, so replaying the whole plan after a
    /// transient step failure is safe).
    pub fn is_transient(&self) -> bool {
        match self {
            RecoveryError::StepFailed { error, .. } => error.is_transient(),
            _ => false,
        }
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoPlan => write!(f, "report carries no rollback plan"),
            RecoveryError::MissingUndo { entry } => {
                write!(f, "log entry {entry} lacks an undo payload")
            }
            RecoveryError::StepFailed { step, error } => {
                write!(f, "rollback step {step} failed: {error}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Executes the rollback plan in `report` against the database and device
/// service, in order. Returns the number of steps executed.
pub fn execute_rollback(
    report: &TaskReport,
    db: &Database,
    service: &dyn DeviceService,
) -> Result<usize, RecoveryError> {
    let plan = report.rollback.as_ref().ok_or(RecoveryError::NoPlan)?;
    for (i, step) in plan.steps.iter().enumerate() {
        run_step(report, db, service, step)
            .map_err(|e| RecoveryError::StepFailed { step: i, error: e })?;
    }
    Ok(plan.steps.len())
}

fn run_step(
    report: &TaskReport,
    db: &Database,
    service: &dyn DeviceService,
    step: &UndoStep,
) -> Result<(), TaskError> {
    match step {
        UndoStep::RevertDb { entry } => {
            let undo = report
                .undo
                .get(*entry)
                .ok_or(TaskError::Failed(format!("no undo payload for #{entry}")))?;
            match undo {
                UndoRecord::Db { attr, old } => {
                    let mut ops = Vec::with_capacity(old.len());
                    for (device, value) in old {
                        ops.push(match value {
                            Some(v) => WriteOp::SetDeviceAttr {
                                name: device.clone(),
                                attr: attr.clone(),
                                value: v.clone(),
                            },
                            None => WriteOp::UnsetDeviceAttr {
                                name: device.clone(),
                                attr: attr.clone(),
                            },
                        });
                    }
                    db.batch(&ops)?;
                }
                UndoRecord::LinkDb { attr, old } => {
                    let mut ops = Vec::with_capacity(old.len());
                    for ((a, z), value) in old {
                        ops.push(match value {
                            Some(v) => WriteOp::SetLinkAttr {
                                a_end: a.clone(),
                                z_end: z.clone(),
                                attr: attr.clone(),
                                value: v.clone(),
                            },
                            None => WriteOp::UnsetLinkAttr {
                                a_end: a.clone(),
                                z_end: z.clone(),
                                attr: attr.clone(),
                            },
                        });
                    }
                    db.batch(&ops)?;
                }
                UndoRecord::Inserted { name } => {
                    db.delete_device(name)?;
                }
                UndoRecord::Removed { name, attrs, links } => {
                    db.insert_device(name, attrs.clone())?;
                    for (peer, link_attrs) in links {
                        db.insert_link(name, peer, link_attrs.clone())?;
                    }
                }
                UndoRecord::None => {
                    return Err(TaskError::Failed(format!(
                        "entry #{entry} is not a database change"
                    )))
                }
            }
            Ok(())
        }
        UndoStep::PushCfg { db_entries } => {
            // Re-push configuration consistent with the (now reverted)
            // database state, device by device: admin state from
            // DEVICE_STATUS, firmware from FIRMWARE_VERSION.
            let mut devices: Vec<String> = Vec::new();
            for &e in db_entries {
                if let Some(entry) = report.log.get(e) {
                    for d in &entry.devices {
                        if !devices.contains(d) {
                            devices.push(d.clone());
                        }
                    }
                }
            }
            // One snapshot for the whole re-push: every device's admin
            // state and firmware come from the same committed version.
            let snap = db.query_snapshot()?;
            for device in devices {
                let row = snap.device_attrs(&device).unwrap_or_default();
                let drained = row
                    .get(attrs::DEVICE_STATUS)
                    .and_then(|v| v.as_str())
                    .is_some_and(|s| {
                        s == attrs::STATUS_DRAINED || s == attrs::STATUS_UNDER_MAINTENANCE
                    });
                let mut args = FuncArgs::one("admin", if drained { "drained" } else { "active" });
                if let Some(fw) = row.get(attrs::FIRMWARE_VERSION).and_then(|v| v.as_str()) {
                    args = args.with("firmware", fw);
                }
                service.execute("f_push", std::slice::from_ref(&device), &args)?;
            }
            Ok(())
        }
        UndoStep::Redrain { drain_entry } => {
            let devices = devices_of(report, *drain_entry)?;
            service.execute("f_drain", &devices, &FuncArgs::none())?;
            Ok(())
        }
        UndoStep::Undrain { drain_entry } => {
            let devices = devices_of(report, *drain_entry)?;
            service.execute("f_undrain", &devices, &FuncArgs::none())?;
            Ok(())
        }
        UndoStep::Unprepare { prepare_entry } => {
            let devices = devices_of(report, *prepare_entry)?;
            service.execute("f_dealloc_ip", &devices, &FuncArgs::none())?;
            Ok(())
        }
    }
}

fn devices_of(report: &TaskReport, entry: usize) -> Result<Vec<String>, TaskError> {
    report
        .log
        .get(entry)
        .map(|e| e.devices.clone())
        .ok_or_else(|| TaskError::Failed(format!("log entry #{entry} missing")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use crate::test_support::{emu_service, tiny_runtime};

    #[test]
    fn rollback_restores_db_and_devices() {
        let rt = tiny_runtime();
        let svc = emu_service(&rt);
        let before_db = rt.db().snapshot();
        svc.library().fail_at("f_optic_test", 0);
        let report = rt.task("upgrade").run(|ctx| {
            let net = ctx.network("dc01.pod00.agg00")?;
            net.apply("f_drain")?;
            net.set(attrs::FIRMWARE_VERSION, "fw-9".into())?;
            net.apply_with("f_push", &FuncArgs::one("admin", "drained"))?;
            net.apply("f_alloc_ip")?;
            net.apply("f_optic_test")?;
            net.apply("f_dealloc_ip")?;
            net.apply("f_undrain")?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Aborted);
        let steps = execute_rollback(&report, rt.db(), svc).unwrap();
        assert!(steps >= 4);
        // Database restored exactly.
        assert_eq!(rt.db().snapshot(), before_db);
        // Device undrained and test IP gone.
        let net = svc.net();
        let guard = net.lock();
        let id = guard.device_by_name("dc01.pod00.agg00").unwrap();
        let sw = guard.switch(id).unwrap();
        assert!(!sw.drained);
        assert!(sw.test_ip.is_none());
    }

    #[test]
    fn completed_report_has_no_plan_to_execute() {
        let rt = tiny_runtime();
        let svc = emu_service(&rt);
        let report = rt.task("ok").run(|_| Ok(()));
        let err = execute_rollback(&report, rt.db(), svc).unwrap_err();
        assert_eq!(err, RecoveryError::NoPlan);
    }
}
