//! # occam-core
//!
//! The Occam programming model and runtime (paper §3–§6).
//!
//! An Occam management program is a closure receiving a [`TaskCtx`]. It
//! creates [`Network`] objects by scoping network regions (glob or regex
//! over the device-name space) and performs all stateful operations
//! through them:
//!
//! - `get(attr)` — read logical state from the source-of-truth database,
//! - `set(attr, value)` — write logical state,
//! - `apply(func)` — execute a device function on the physical network.
//!
//! Everything else a program does is stateless local computation. The
//! runtime provides the paper's reliability guardrails automatically:
//!
//! - **Consistency**: regions lock through the multi-granularity object
//!   tree; a task's operations commit or abort as one unit under strict
//!   2PL, so no other task observes intermediate logical or physical
//!   state in its regions.
//! - **Efficiency**: lock grants are arbitrated by the FIFO/LDSF scheduler;
//!   urgent tasks pre-empt.
//! - **Resilience**: every stateful operation is recorded in a typed
//!   execution log; on failure the runtime parses the log against the
//!   Table 1 grammar and suggests a concrete [`RollbackPlan`]
//!   ([`TaskReport::rollback`]), which [`execute_rollback`] can carry out.
//!
//! # Examples
//!
//! The paper's first example — flagging a pod's switches for maintenance —
//! is four lines of management logic:
//!
//! ```
//! use occam_core::Runtime;
//! use occam_emunet::{EmuNet, EmuService};
//! use occam_netdb::{attrs, Database};
//! use occam_topology::FatTree;
//! use std::sync::Arc;
//!
//! // Substrate: an emulated k=4 fabric and a seeded database.
//! let ft = FatTree::build(1, 4).unwrap();
//! let db = Arc::new(Database::new());
//! // The source of truth tracks network devices, not end hosts.
//! for (_, d) in ft.topo.devices().filter(|(_, d)| d.role != occam_topology::Role::Host) {
//!     db.insert_device(&d.name, vec![]).unwrap();
//! }
//! let runtime = Runtime::new(db, Arc::new(EmuService::new(EmuNet::from_fattree(&ft))));
//!
//! let report = runtime.task("device_maintenance").run(|ctx| {
//!     let dc1pod3 = ctx.network("dc01.pod03.*")?;
//!     dc1pod3.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
//!     dc1pod3.apply("f_drain")?;
//!     dc1pod3.close();
//!     Ok(())
//! });
//! assert_eq!(report.state, occam_core::TaskState::Completed);
//! ```

pub mod builder;
pub mod error;
pub mod network;
pub mod pool;
pub mod queue;
pub mod recovery;
pub mod retry;
pub mod runtime;
pub mod task;

pub use builder::{Isolation, TaskBuilder};
pub use error::{TaskError, TaskResult};
pub use network::Network;
pub use occam_rollback::RollbackPlan;
pub use pool::{PoolStats, PooledHandle, PooledJob};
pub use queue::{TaskQueue, Ticket};
pub use recovery::{execute_rollback, RecoveryError};
pub use retry::RetryPolicy;
pub use runtime::Runtime;
pub use task::{CancelToken, TaskCtx, TaskReport, TaskState, UndoRecord};

#[cfg(test)]
pub(crate) mod test_support {
    use crate::Runtime;
    use occam_emunet::{EmuNet, EmuService};
    use occam_netdb::{attrs, Database};
    use occam_topology::FatTree;
    use std::sync::Arc;

    /// A k=4 Fat-tree runtime with every switch in the database.
    pub fn tiny_runtime() -> Runtime {
        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
            )
            .unwrap();
        }
        let service = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        Runtime::new(db, service)
    }

    /// Reaches the concrete emulator service behind the runtime's trait
    /// object.
    pub fn emu_service(rt: &Runtime) -> &EmuService {
        rt.service()
            .as_any()
            .downcast_ref::<EmuService>()
            .expect("runtime built over EmuService")
    }
}
