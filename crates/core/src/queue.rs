//! A bounded task executor with the paper's §4.1 lifecycle:
//! `Submitted → Active → Completed | Aborted`.
//!
//! [`TaskBuilder::spawn`](crate::TaskBuilder::spawn) runs every program
//! on its own thread immediately; production systems bound concurrency. The [`TaskQueue`] admits at most
//! `workers` concurrently *active* tasks, holds the rest in `Submitted`
//! state, and exposes live state observation — the piece of the paper's
//! architecture ("Occam tasks" box of Figure 2) that sits in front of the
//! lock runtime.

use crate::error::TaskResult;
use crate::runtime::Runtime;
use crate::task::{TaskCtx, TaskReport, TaskState};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// A ticket for a submitted task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Ticket(pub u64);

type Program = Box<dyn FnOnce(&TaskCtx) -> TaskResult<()> + Send + 'static>;

struct Pending {
    ticket: Ticket,
    name: String,
    urgent: bool,
    program: Program,
}

#[derive(Default)]
struct QueueState {
    /// FIFO of submitted-but-not-admitted tasks (urgent ones jump ahead).
    pending: Vec<Pending>,
    /// Observable state per ticket.
    states: HashMap<Ticket, TaskState>,
    /// Completed reports awaiting pickup.
    reports: HashMap<Ticket, TaskReport>,
    active: usize,
    next_ticket: u64,
    shutdown: bool,
}

/// A bounded executor over a [`Runtime`].
pub struct TaskQueue {
    runtime: Runtime,
    workers: usize,
    state: Arc<(Mutex<QueueState>, Condvar)>,
}

impl TaskQueue {
    /// Creates a queue admitting at most `workers` active tasks (min 1).
    pub fn new(runtime: Runtime, workers: usize) -> TaskQueue {
        TaskQueue {
            runtime,
            workers: workers.max(1),
            state: Arc::new((Mutex::new(QueueState::default()), Condvar::new())),
        }
    }

    /// Submits a program; it enters `Submitted` state and runs when a
    /// worker slot frees (urgent tasks are admitted before ordinary ones).
    pub fn submit<F>(&self, name: &str, urgent: bool, program: F) -> Ticket
    where
        F: FnOnce(&TaskCtx) -> TaskResult<()> + Send + 'static,
    {
        let (lock, _) = &*self.state;
        let ticket = {
            let mut st = lock.lock();
            let ticket = Ticket(st.next_ticket);
            st.next_ticket += 1;
            st.states.insert(ticket, TaskState::Submitted);
            st.pending.push(Pending {
                ticket,
                name: name.to_string(),
                urgent,
                program: Box::new(program),
            });
            ticket
        };
        self.pump();
        ticket
    }

    /// The current lifecycle state of a ticket (`None` for unknown).
    pub fn state_of(&self, ticket: Ticket) -> Option<TaskState> {
        self.state.0.lock().states.get(&ticket).copied()
    }

    /// Number of tasks in `Submitted` state.
    pub fn submitted(&self) -> usize {
        self.state.0.lock().pending.len()
    }

    /// Number of tasks currently `Active`.
    pub fn active(&self) -> usize {
        self.state.0.lock().active
    }

    /// Blocks until `ticket` reaches a terminal state; returns its report.
    pub fn wait(&self, ticket: Ticket) -> Option<TaskReport> {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        loop {
            if let Some(r) = st.reports.remove(&ticket) {
                return Some(r);
            }
            if !st.states.contains_key(&ticket) {
                return None;
            }
            cv.wait(&mut st);
        }
    }

    /// Blocks until every submitted task reaches a terminal state; returns
    /// all unclaimed reports sorted by ticket.
    pub fn drain(&self) -> Vec<TaskReport> {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        while st.active > 0 || !st.pending.is_empty() {
            cv.wait(&mut st);
        }
        let mut tickets: Vec<Ticket> = st.reports.keys().copied().collect();
        tickets.sort();
        tickets
            .into_iter()
            .filter_map(|t| st.reports.remove(&t))
            .collect()
    }

    /// Admits pending tasks while worker slots are free.
    fn pump(&self) {
        let (lock, cv) = &*self.state;
        loop {
            let job = {
                let mut st = lock.lock();
                if st.shutdown || st.active >= self.workers || st.pending.is_empty() {
                    return;
                }
                // Urgent first, then submission order.
                let idx = st.pending.iter().position(|p| p.urgent).unwrap_or(0);
                let job = st.pending.remove(idx);
                st.active += 1;
                st.states.insert(job.ticket, TaskState::Active);
                job
            };
            let runtime = self.runtime.clone();
            let state = Arc::clone(&self.state);
            let queue_state = Arc::clone(&self.state);
            let workers = self.workers;
            std::thread::spawn(move || {
                let report = runtime
                    .task(job.name.as_str())
                    .urgency(job.urgent)
                    .run_once(job.program);
                let (lock, cv) = &*state;
                {
                    let mut st = lock.lock();
                    st.active -= 1;
                    st.states.insert(job.ticket, report.state);
                    st.reports.insert(job.ticket, report);
                }
                cv.notify_all();
                // Admit the next pending task, if any.
                Self::pump_static(&runtime, &queue_state, workers);
            });
            cv.notify_all();
        }
    }

    /// `pump` callable from worker threads (no `&self`).
    fn pump_static(runtime: &Runtime, state: &Arc<(Mutex<QueueState>, Condvar)>, workers: usize) {
        loop {
            let job = {
                let mut st = state.0.lock();
                if st.shutdown || st.active >= workers || st.pending.is_empty() {
                    return;
                }
                let idx = st.pending.iter().position(|p| p.urgent).unwrap_or(0);
                let job = st.pending.remove(idx);
                st.active += 1;
                st.states.insert(job.ticket, TaskState::Active);
                job
            };
            let runtime2 = runtime.clone();
            let state2 = Arc::clone(state);
            std::thread::spawn(move || {
                let report = runtime2
                    .task(job.name.as_str())
                    .urgency(job.urgent)
                    .run_once(job.program);
                {
                    let mut st = state2.0.lock();
                    st.active -= 1;
                    st.states.insert(job.ticket, report.state);
                    st.reports.insert(job.ticket, report);
                }
                state2.1.notify_all();
                Self::pump_static(&runtime2, &state2, workers);
            });
        }
    }
}

impl Drop for TaskQueue {
    fn drop(&mut self) {
        self.state.0.lock().shutdown = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lifecycle_submitted_active_completed() {
        let rt = crate::test_support::tiny_runtime();
        let q = TaskQueue::new(rt, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g1 = Arc::clone(&gate);
        let t1 = q.submit("blocker", false, move |_| {
            let (l, c) = &*g1;
            let mut open = l.lock();
            while !*open {
                c.wait(&mut open);
            }
            Ok(())
        });
        // Give the worker a moment to admit t1.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let t2 = q.submit("queued", false, |_| Ok(()));
        assert_eq!(q.state_of(t1), Some(TaskState::Active));
        assert_eq!(q.state_of(t2), Some(TaskState::Submitted));
        assert_eq!(q.submitted(), 1);
        // Open the gate; both finish.
        {
            let (l, c) = &*gate;
            *l.lock() = true;
            c.notify_all();
        }
        let r1 = q.wait(t1).unwrap();
        let r2 = q.wait(t2).unwrap();
        assert_eq!(r1.state, TaskState::Completed);
        assert_eq!(r2.state, TaskState::Completed);
        assert_eq!(q.state_of(t1), Some(TaskState::Completed));
    }

    #[test]
    fn concurrency_bound_is_respected() {
        let rt = crate::test_support::tiny_runtime();
        let q = TaskQueue::new(rt, 2);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut tickets = Vec::new();
        for i in 0..8 {
            let p = Arc::clone(&peak);
            let c = Arc::clone(&cur);
            tickets.push(q.submit(&format!("t{i}"), false, move |_| {
                let inside = c.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(inside, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            }));
        }
        let reports = q.drain();
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.state == TaskState::Completed));
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn urgent_submissions_jump_the_queue() {
        let rt = crate::test_support::tiny_runtime();
        let q = TaskQueue::new(rt, 1);
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        q.submit("hold", false, move |_| {
            let (l, c) = &*g;
            let mut open = l.lock();
            while !*open {
                c.wait(&mut open);
            }
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        for (name, urgent) in [("normal", false), ("urgent", true)] {
            let o = Arc::clone(&order);
            q.submit(name, urgent, move |_| {
                o.lock().push(name.to_string());
                Ok(())
            });
        }
        {
            let (l, c) = &*gate;
            *l.lock() = true;
            c.notify_all();
        }
        q.drain();
        assert_eq!(
            *order.lock(),
            vec!["urgent".to_string(), "normal".to_string()]
        );
    }

    #[test]
    fn wait_on_unknown_ticket_returns_none() {
        let rt = crate::test_support::tiny_runtime();
        let q = TaskQueue::new(rt, 1);
        assert!(q.wait(Ticket(999)).is_none());
        assert_eq!(q.state_of(Ticket(999)), None);
    }
}
