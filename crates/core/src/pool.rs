//! The runtime's bounded worker pool: the service-grade replacement for
//! spawn-per-task submission.
//!
//! [`TaskBuilder::spawn`](crate::TaskBuilder::spawn) takes one unbounded
//! OS thread per task, which is fine for tests but not for a shared
//! management-plane service where many operators submit long-running
//! workflows concurrently. The pool runs
//! tasks on at most `pool_size` lazily-spawned worker threads; excess
//! submissions wait in a FIFO queue (urgent submissions in a fast lane
//! polled first, matching the scheduler's urgent lock priority).
//!
//! The pool deliberately does **not** reject work — admission control
//! (bounding the queue and answering `Busy`) belongs to the layer in
//! front of the runtime (see the `occam-gateway` crate), which watches
//! [`PoolStats::queued`] and applies its own cap.
//!
//! Worker threads hold only the shared pool state, never the runtime
//! (each job closure captures its own `Runtime` clone), so dropping the
//! last external `Runtime` handle shuts the workers down.

use crate::runtime::Runtime;
use crate::task::TaskReport;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A boxed pool job as accepted by [`Runtime::spawn_pooled_batch`]: the
/// closure receives the runtime exactly like [`Runtime::spawn_pooled`]'s
/// generic parameter, but boxed so heterogeneous batches can share one
/// `Vec`.
pub type PooledJob = Box<dyn FnOnce(&Runtime) + Send + 'static>;

/// Shared state between a runtime and its pool workers.
pub(crate) struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

struct PoolState {
    size: usize,
    normal: VecDeque<Job>,
    urgent: VecDeque<Job>,
    idle: usize,
    spawned: usize,
    active: usize,
    peak_active: usize,
    executed: u64,
    shutdown: bool,
}

impl PoolShared {
    fn with_size(size: usize) -> Arc<PoolShared> {
        Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                size: size.max(1),
                normal: VecDeque::new(),
                urgent: VecDeque::new(),
                idle: 0,
                spawned: 0,
                active: 0,
                peak_active: 0,
                executed: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Tells every worker to exit once the queue is empty. Called from
    /// `Inner::drop`, i.e. when no external `Runtime` handle remains.
    pub(crate) fn shutdown_now(&self) {
        self.state.lock().shutdown = true;
        self.cv.notify_all();
    }

    fn enqueue(self: &Arc<Self>, job: Job, urgent: bool) {
        let spawn_worker = {
            let mut st = self.state.lock();
            if st.shutdown {
                // Only reachable if a job is enqueued while the last
                // runtime handle is dropping; run it inline for
                // correctness rather than losing it.
                drop(st);
                job();
                return;
            }
            if urgent {
                st.urgent.push_back(job);
            } else {
                st.normal.push_back(job);
            }
            // Spawn whenever there are more queued jobs (including this
            // one) than idle workers to absorb them. Gating on
            // `idle == 0` alone would let a single idle worker mask a
            // whole burst: every enqueue in the burst would see
            // `idle == 1` and notify the same worker, serializing N jobs
            // on one thread despite spare pool capacity.
            if st.spawned < st.size && st.idle < st.normal.len() + st.urgent.len() {
                st.spawned += 1;
                true
            } else {
                false
            }
        };
        if spawn_worker {
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name("occam-pool-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        self.cv.notify_one();
    }

    /// Enqueues a whole batch of jobs under one lock acquisition. The
    /// submission hot path (the gateway reactor decodes every frame a
    /// readability event delivers and admits them together) would
    /// otherwise cross the pool mutex once per task; batching makes the
    /// admission cost per event O(1) lock crossings plus O(batch) pushes.
    fn enqueue_batch(self: &Arc<Self>, jobs: Vec<(bool, Job)>) {
        if jobs.is_empty() {
            return;
        }
        let spawn = {
            let mut st = self.state.lock();
            if st.shutdown {
                // Same correctness fallback as the single-job path: a
                // batch enqueued while the last runtime handle drops runs
                // inline rather than being lost.
                drop(st);
                for (_, job) in jobs {
                    job();
                }
                return;
            }
            for (urgent, job) in jobs {
                if urgent {
                    st.urgent.push_back(job);
                } else {
                    st.normal.push_back(job);
                }
            }
            // Spawn enough workers to absorb the backlog the idle ones
            // cannot (the batch analogue of the per-job spawn gate).
            let backlog = st.normal.len() + st.urgent.len();
            let want = backlog
                .saturating_sub(st.idle)
                .min(st.size.saturating_sub(st.spawned));
            st.spawned += want;
            want
        };
        for _ in 0..spawn {
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name("occam-pool-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
        }
        self.cv.notify_all();
    }

    fn stats(&self) -> PoolStats {
        let st = self.state.lock();
        PoolStats {
            size: st.size,
            spawned: st.spawned,
            active: st.active,
            peak_active: st.peak_active,
            queued: st.normal.len() + st.urgent.len(),
            executed: st.executed,
        }
    }

    fn drain(&self) {
        let mut st = self.state.lock();
        while st.active > 0 || !st.normal.is_empty() || !st.urgent.is_empty() {
            self.cv.wait(&mut st);
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(j) = st.urgent.pop_front().or_else(|| st.normal.pop_front()) {
                    st.active += 1;
                    st.peak_active = st.peak_active.max(st.active);
                    break j;
                }
                if st.shutdown {
                    return;
                }
                st.idle += 1;
                shared.cv.wait(&mut st);
                st.idle -= 1;
            }
        };
        // Panics inside the job would silently kill this worker and wedge
        // `drain`; `execute_attempt` already contains program panics, so
        // this only guards bookkeeping bugs in submission wrappers.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        {
            let mut st = shared.state.lock();
            st.active -= 1;
            st.executed += 1;
        }
        // Wake queued-job pollers and `drain` waiters.
        shared.cv.notify_all();
    }
}

/// A point-in-time snapshot of the worker pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Maximum worker threads the pool will ever spawn.
    pub size: usize,
    /// Worker threads spawned so far (lazily, never exceeds `size`).
    pub spawned: usize,
    /// Jobs currently executing.
    pub active: usize,
    /// High-water mark of concurrently-executing jobs.
    pub peak_active: usize,
    /// Jobs admitted but not yet started.
    pub queued: usize,
    /// Jobs finished (completed, aborted, or cancelled).
    pub executed: u64,
}

#[derive(Default)]
struct HandleShared {
    slot: Mutex<Option<TaskReport>>,
    cv: Condvar,
}

/// A handle to a task submitted through
/// [`TaskBuilder::spawn_pooled`](crate::TaskBuilder::spawn_pooled).
///
/// Unlike a `JoinHandle`, waiting never propagates panics — the runtime
/// converts program panics into failed reports.
#[derive(Clone)]
pub struct PooledHandle {
    shared: Arc<HandleShared>,
}

impl PooledHandle {
    pub(crate) fn new() -> PooledHandle {
        PooledHandle {
            shared: Arc::new(HandleShared::default()),
        }
    }

    pub(crate) fn fill(&self, report: TaskReport) {
        *self.shared.slot.lock() = Some(report);
        self.shared.cv.notify_all();
    }

    /// Blocks until the task reaches a terminal state; returns its report.
    pub fn wait(&self) -> TaskReport {
        let mut g = self.shared.slot.lock();
        loop {
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
            self.shared.cv.wait(&mut g);
        }
    }

    /// The report, if the task has already finished (non-blocking).
    pub fn try_report(&self) -> Option<TaskReport> {
        self.shared.slot.lock().clone()
    }

    /// Whether the task has reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.shared.slot.lock().is_some()
    }
}

impl Runtime {
    fn pool_shared(&self) -> Arc<PoolShared> {
        let mut slot = self.pool_slot().lock();
        slot.get_or_insert_with(|| {
            let size = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4);
            PoolShared::with_size(size)
        })
        .clone()
    }

    /// Sets the worker-pool size before the pool starts. Returns `false`
    /// (and changes nothing) if the pool already exists — size is fixed
    /// for the lifetime of the runtime. Defaults to the machine's
    /// available parallelism when never configured.
    pub fn configure_pool(&self, size: usize) -> bool {
        let mut slot = self.pool_slot().lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(PoolShared::with_size(size));
        true
    }

    /// Runs `job` on the worker pool. `urgent` jobs take the fast lane
    /// (dequeued before ordinary ones). The job receives the runtime and
    /// is expected to run exactly one task; this is the primitive under
    /// [`TaskBuilder::spawn_pooled`](crate::TaskBuilder::spawn_pooled),
    /// exposed for frontends (the gateway)
    /// that need their own bookkeeping around task execution.
    pub fn spawn_pooled<F>(&self, urgent: bool, job: F)
    where
        F: FnOnce(&Runtime) + Send + 'static,
    {
        let rt = self.clone();
        self.pool_shared()
            .enqueue(Box::new(move || job(&rt)), urgent);
    }

    /// Runs a whole batch of jobs on the worker pool, crossing the pool
    /// lock once for the entire batch instead of once per job. Jobs keep
    /// their relative order within each urgency lane. This is the batch
    /// analogue of [`Runtime::spawn_pooled`], used by frontends that
    /// admit pipelined submissions (the gateway reactor decodes every
    /// complete frame a readiness event delivers and admits them as one
    /// batch).
    pub fn spawn_pooled_batch(&self, jobs: Vec<(bool, PooledJob)>) {
        let batch: Vec<(bool, Job)> = jobs
            .into_iter()
            .map(|(urgent, f)| {
                let rt = self.clone();
                (urgent, Box::new(move || f(&rt)) as Job)
            })
            .collect();
        self.pool_shared().enqueue_batch(batch);
    }

    /// A snapshot of the worker pool (all zeros if it never started).
    pub fn pool_stats(&self) -> PoolStats {
        let slot = self.pool_slot().lock();
        slot.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Blocks until the worker pool is quiescent: no queued and no active
    /// jobs. Used for graceful drain-then-shutdown. New submissions during
    /// the wait extend it; stop submitting first.
    pub fn drain_pool(&self) {
        let pool = {
            let slot = self.pool_slot().lock();
            slot.clone()
        };
        if let Some(pool) = pool {
            pool.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{CancelToken, TaskState};
    use crate::TaskError;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pooled_submissions_complete_and_bound_threads() {
        // The satellite regression: many queued submissions must never
        // create more than `pool_size` runner threads.
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(4));
        assert!(!rt.configure_pool(8), "size is fixed once created");
        let ran = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..10_000u32 {
            let ran = Arc::clone(&ran);
            handles.push(rt.task(format!("t{i}")).spawn_pooled(move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }));
        }
        for h in &handles {
            assert_eq!(h.wait().state, TaskState::Completed);
        }
        assert_eq!(ran.load(Ordering::Relaxed), 10_000);
        // `executed` increments after the handle fills; drain first so the
        // bookkeeping for the last job has landed.
        rt.drain_pool();
        let stats = rt.pool_stats();
        assert_eq!(stats.size, 4);
        assert!(stats.spawned <= 4, "spawned {} workers", stats.spawned);
        assert!(stats.peak_active <= 4, "peak {}", stats.peak_active);
        assert_eq!(stats.executed, 10_000);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn burst_after_idle_ramps_to_full_pool() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(4));
        // Run one job and let its worker go idle: the regression scenario
        // is a burst arriving while `idle == 1`.
        rt.task("warmup").spawn_pooled(|_| Ok(())).wait();
        rt.drain_pool();
        // Burst of pool-size jobs that rendezvous: each blocks until all
        // four execute concurrently (with a timeout so a regression fails
        // the assertion instead of hanging). Under the old `idle == 0`
        // spawn gate the lone idle worker absorbed the whole burst
        // serially and the rendezvous could never be reached.
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let g = Arc::clone(&gate);
            handles.push(rt.task(format!("burst{i}")).spawn_pooled(move |_| {
                let (l, c) = &*g;
                let mut n = l.lock();
                *n += 1;
                c.notify_all();
                while *n < 4 {
                    if c.wait_for(&mut n, std::time::Duration::from_secs(5))
                        .timed_out()
                    {
                        break;
                    }
                }
                Ok(())
            }));
        }
        for h in &handles {
            assert_eq!(h.wait().state, TaskState::Completed);
        }
        let stats = rt.pool_stats();
        assert!(
            stats.peak_active >= 4,
            "burst ran with peak concurrency {} despite pool capacity 4",
            stats.peak_active
        );
        assert!(stats.spawned <= 4, "spawned {} workers", stats.spawned);
    }

    #[test]
    fn urgent_jobs_take_the_fast_lane() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(1));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        // Occupy the single worker so the next two submissions queue.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let blocker = rt.task("blocker").spawn_pooled(move |_| {
            let (l, c) = &*g;
            let mut open = l.lock();
            while !*open {
                c.wait(&mut open);
            }
            Ok(())
        });
        // Wait until the blocker actually occupies the worker.
        while rt.pool_stats().active == 0 {
            std::thread::yield_now();
        }
        let o1 = Arc::clone(&order);
        let normal = rt.task("normal").spawn_pooled(move |_| {
            o1.lock().push("normal");
            Ok(())
        });
        let o2 = Arc::clone(&order);
        let urgent = rt.task("urgent").urgent().spawn_pooled(move |_| {
            o2.lock().push("urgent");
            Ok(())
        });
        {
            let (l, c) = &*gate;
            *l.lock() = true;
            c.notify_all();
        }
        blocker.wait();
        normal.wait();
        urgent.wait();
        assert_eq!(*order.lock(), vec!["urgent", "normal"]);
    }

    #[test]
    fn cancelled_before_start_never_runs_program() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(2));
        let token = CancelToken::new();
        token.cancel();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        let h = rt
            .task("cancelled-early")
            .cancel_token(token)
            .spawn_pooled(move |_| {
                r2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        let report = h.wait();
        assert_eq!(report.state, TaskState::Aborted);
        assert!(matches!(report.error, Some(TaskError::Cancelled)));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "program must not run");
        assert_eq!(rt.obs().counter_value("core.tasks.cancelled"), 1);
    }

    #[test]
    fn cancel_unblocks_task_waiting_for_lock() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(2));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let locked = Arc::new(AtomicUsize::new(0));
        let l2 = Arc::clone(&locked);
        let holder = rt.task("holder").spawn_pooled(move |ctx| {
            let _net = ctx.network("dc01.pod00.*")?;
            l2.store(1, Ordering::SeqCst);
            let (l, c) = &*g;
            let mut open = l.lock();
            while !*open {
                c.wait(&mut open);
            }
            Ok(())
        });
        // Wait until the holder actually holds the region before submitting
        // the contender (otherwise the waiter can win the lock race and
        // complete instead of blocking).
        while locked.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // Second task blocks on the same region.
        let token = CancelToken::new();
        let waiter = rt
            .task("waiter")
            .cancel_token(token.clone())
            .spawn_pooled(|ctx| {
                let _net = ctx.network("dc01.pod00.*")?;
                Ok(())
            });
        // Let the waiter actually block, then cancel it.
        std::thread::sleep(std::time::Duration::from_millis(60));
        token.cancel();
        rt.wake_lock_waiters();
        let report = waiter.wait();
        assert_eq!(report.state, TaskState::Aborted);
        assert!(matches!(report.error, Some(TaskError::Cancelled)));
        // The holder is unaffected.
        {
            let (l, c) = &*gate;
            *l.lock() = true;
            c.notify_all();
        }
        assert_eq!(holder.wait().state, TaskState::Completed);
        assert_eq!(rt.active_objects(), 0, "cancelled task released its refs");
    }

    #[test]
    fn worker_survives_panicking_program() {
        let rt = crate::test_support::tiny_runtime();
        assert!(rt.configure_pool(1));
        let bad = rt.task("bad").spawn_pooled(|_| panic!("boom in program"));
        let report = bad.wait();
        assert_eq!(report.state, TaskState::Aborted);
        match &report.error {
            Some(TaskError::Panicked(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(rt.obs().counter_value("core.task.panicked"), 1);
        // The same (single) worker runs the next job fine.
        let good = rt.task("good").spawn_pooled(|_| Ok(()));
        assert_eq!(good.wait().state, TaskState::Completed);
        assert!(rt.pool_stats().spawned <= 1);
    }
}
