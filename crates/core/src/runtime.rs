//! The Occam runtime: task lifecycle, lock arbitration, and failure
//! reporting.
//!
//! The runtime owns the source-of-truth database handle, the management
//! plane service, and the object tree + scheduler behind one lock table.
//! Tasks run as closures submitted via [`crate::TaskBuilder`]; every stateful
//! operation flows through a [`crate::Network`] object, and the runtime
//! enforces strict 2PL: locks accumulate during the task and release
//! together at commit or abort.

use crate::builder::Isolation;
use crate::error::{TaskError, TaskResult};
use crate::pool::PoolShared;
use crate::retry::RetryPolicy;
use crate::task::{CancelToken, TaskCtx, TaskReport, TaskState};
use occam_cert::Certifier;
use occam_emunet::DeviceService;
use occam_netdb::{Database, OccOutcome, ReadRouter, ReadView};
use occam_objtree::{ObjTree, ObjectId, SplitMode, TaskId};
use occam_obs::{Counter, EventKind, EventRing, Histogram, Registry, Span};
use occam_regex::PatternCache;
use occam_sched::{Policy, SchedStats, Scheduler};
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Observability handles for the runtime, bound to a [`Registry`] under
/// the `core.*` names (DESIGN.md §9).
#[derive(Clone)]
pub(crate) struct CoreObs {
    pub registry: Registry,
    pub tasks_submitted: Counter,
    pub tasks_completed: Counter,
    pub tasks_aborted: Counter,
    pub tasks_cancelled: Counter,
    pub task_panicked: Counter,
    pub task_retries: Counter,
    pub retry_rollback_failed: Counter,
    pub task_wall_ns: Histogram,
    pub lock_acquires: Counter,
    pub lock_wait_ns: Histogram,
    pub deadlocks: Counter,
    pub rollback_plans: Counter,
    pub ops_get: Counter,
    pub ops_set: Counter,
    pub ops_apply: Counter,
    pub occ_commits: Counter,
    pub occ_aborts: Counter,
    pub occ_fallbacks: Counter,
    pub occ_validate_ns: Histogram,
    pub events: EventRing,
}

impl CoreObs {
    fn bound(reg: &Registry) -> CoreObs {
        CoreObs {
            registry: reg.clone(),
            tasks_submitted: reg.counter("core.tasks.submitted"),
            tasks_completed: reg.counter("core.tasks.completed"),
            tasks_aborted: reg.counter("core.tasks.aborted"),
            tasks_cancelled: reg.counter("core.tasks.cancelled"),
            task_panicked: reg.counter("core.task.panicked"),
            task_retries: reg.counter("core.task.retries"),
            retry_rollback_failed: reg.counter("core.task.retry_rollback_failed"),
            task_wall_ns: reg.histogram("core.task_wall_ns"),
            lock_acquires: reg.counter("core.lock.acquires"),
            lock_wait_ns: reg.histogram("core.lock_wait_ns"),
            deadlocks: reg.counter("core.deadlocks"),
            rollback_plans: reg.counter("core.rollback.plans"),
            ops_get: reg.counter("core.ops.get"),
            ops_set: reg.counter("core.ops.set"),
            ops_apply: reg.counter("core.ops.apply"),
            occ_commits: reg.counter("core.occ.commits"),
            occ_aborts: reg.counter("core.occ.aborts"),
            occ_fallbacks: reg.counter("core.occ.fallbacks"),
            occ_validate_ns: reg.histogram("core.occ.validate_ns"),
            events: reg.events(),
        }
    }
}

pub(crate) struct LockState {
    pub tree: ObjTree,
    pub sched: Scheduler,
    /// Tasks marked as deadlock victims; they observe the flag on wake-up
    /// and abort with [`TaskError::Deadlock`].
    pub aborted: HashSet<TaskId>,
}

pub(crate) struct LockTable {
    pub state: Mutex<LockState>,
    pub cv: Condvar,
}

pub(crate) struct Inner {
    db: Arc<Database>,
    service: Arc<dyn DeviceService>,
    locks: LockTable,
    cache: PatternCache,
    next_task: AtomicU64,
    seq: AtomicU64,
    obs: CoreObs,
    /// Lazily-started bounded worker pool ([`TaskBuilder::spawn_pooled`](crate::TaskBuilder::spawn_pooled)).
    pub(crate) pool: Mutex<Option<Arc<PoolShared>>>,
    /// Optional replica read router: when attached, scoped snapshot reads
    /// ([`crate::Network::view`], gateway `status_audit`) are served from
    /// a caught-up follower instead of the leader (DESIGN.md §14).
    read_router: Mutex<Option<Arc<ReadRouter>>>,
    /// Optional online serializability certifier (DESIGN.md §16): when
    /// attached, every task emits its read/write footprint and the
    /// conflict graph is checked for cycles at each commit.
    certifier: Mutex<Option<Arc<Certifier>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Worker threads hold only the `PoolShared`, never the `Inner`
        // (jobs capture a `Runtime` clone, but a queued job keeps `Inner`
        // alive, so by the time we get here the queue is empty). Tell them
        // to exit.
        if let Some(pool) = self.pool.get_mut().take() {
            pool.shutdown_now();
        }
    }
}

/// The Occam runtime handle. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl Runtime {
    /// Creates a runtime over a database and a device service, scheduling
    /// locks with LDSF (the paper's default).
    pub fn new(db: Arc<Database>, service: Arc<dyn DeviceService>) -> Runtime {
        Runtime::with_policy(db, service, Policy::Ldsf)
    }

    /// Creates a runtime with an explicit scheduling policy.
    pub fn with_policy(
        db: Arc<Database>,
        service: Arc<dyn DeviceService>,
        policy: Policy,
    ) -> Runtime {
        Runtime::with_obs(db, service, policy, &Registry::new())
    }

    /// Creates a runtime whose `core.*` instruments — and those of its
    /// object tree (`objtree.*`) and scheduler (`sched.*`) — are bound to
    /// `reg` (DESIGN.md §9). Pass the registry the database was built with
    /// ([`Database::with_obs`]) to get the whole stack in one registry.
    pub fn with_obs(
        db: Arc<Database>,
        service: Arc<dyn DeviceService>,
        policy: Policy,
        reg: &Registry,
    ) -> Runtime {
        Runtime {
            inner: Arc::new(Inner {
                db,
                service,
                locks: LockTable {
                    state: Mutex::new(LockState {
                        tree: ObjTree::with_obs(SplitMode::Split, reg),
                        sched: Scheduler::with_obs(policy, reg),
                        aborted: HashSet::new(),
                    }),
                    cv: Condvar::new(),
                },
                cache: PatternCache::default(),
                next_task: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                obs: CoreObs::bound(reg),
                pool: Mutex::new(None),
                read_router: Mutex::new(None),
                certifier: Mutex::new(None),
            }),
        }
    }

    /// Attaches a replica read router: subsequent read-only snapshot
    /// queries ([`crate::Network::view`] and everything built on it, such
    /// as the gateway's `status_audit`) are served from a caught-up
    /// follower within the router's staleness bound, falling back to the
    /// leader. Write paths are unaffected — they always hit the leader.
    pub fn attach_read_router(&self, router: Arc<ReadRouter>) {
        *self.inner.read_router.lock() = Some(router);
    }

    /// Detaches the replica read router; snapshot reads return to the
    /// leader database.
    pub fn detach_read_router(&self) {
        *self.inner.read_router.lock() = None;
    }

    /// Attaches an online serializability certifier: every subsequent
    /// task registers at start and submits its read/write footprint at
    /// commit; the certifier asserts the conflict graph stays acyclic
    /// (`cert.violations`). Detection, not enforcement — a violation is
    /// counted and latched, never turned into a task abort.
    pub fn attach_certifier(&self, cert: Arc<Certifier>) {
        *self.inner.certifier.lock() = Some(cert);
    }

    /// Detaches the certifier; tasks stop emitting footprints.
    pub fn detach_certifier(&self) {
        *self.inner.certifier.lock() = None;
    }

    /// The attached certifier, if any.
    pub fn certifier(&self) -> Option<Arc<Certifier>> {
        self.inner.certifier.lock().clone()
    }

    /// One consistent snapshot read, routed through the attached replica
    /// read router when present, else served by the leader database.
    ///
    /// With a certifier attached the read pins to the leader even when a
    /// router is present: a follower snapshot may trail the task's begin
    /// floor, which would break the certifier's retirement contract
    /// (reads observe commit counts at or above the floor).
    pub(crate) fn routed_view(&self) -> occam_netdb::DbResult<ReadView> {
        let router = self.inner.read_router.lock().clone();
        match router {
            Some(r) if self.inner.certifier.lock().is_none() => r.read_view(),
            _ => self.inner.db.query_read_view(),
        }
    }

    pub(crate) fn pool_slot(&self) -> &Mutex<Option<Arc<PoolShared>>> {
        &self.inner.pool
    }

    /// The registry this runtime's instruments are bound to.
    pub fn obs(&self) -> &Registry {
        &self.inner.obs.registry
    }

    pub(crate) fn obs_handles(&self) -> &CoreObs {
        &self.inner.obs
    }

    /// The source-of-truth database.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The device service.
    pub fn service(&self) -> &Arc<dyn DeviceService> {
        &self.inner.service
    }

    /// The shared pattern cache (paper §7: regex/FSM caching).
    pub fn pattern_cache(&self) -> &PatternCache {
        &self.inner.cache
    }

    /// A snapshot of scheduler statistics.
    pub fn sched_stats(&self) -> SchedStats {
        self.inner.locks.state.lock().sched.stats.clone()
    }

    /// Number of active (non-root) nodes in the object tree.
    pub fn active_objects(&self) -> usize {
        self.inner.locks.state.lock().tree.len() - 1
    }

    pub(crate) fn next_arrival(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn locks(&self) -> &LockTable {
        &self.inner.locks
    }

    /// Runs one execution attempt of a management program: the primitive
    /// under every `TaskBuilder` terminal.
    ///
    /// The task commits (releasing all locks) when the program returns
    /// `Ok` and aborts with a suggested rollback plan when it returns
    /// `Err`. `cancel` is observed at task checkpoints (lock acquisition
    /// and stateful operations); a token cancelled before the task starts
    /// aborts it without running the program. Panics inside `program` are
    /// contained: the task aborts with [`TaskError::Panicked`] (counter
    /// `core.task.panicked`) instead of unwinding into the calling thread,
    /// so one bad program cannot take down a worker or a joining caller.
    ///
    /// With `occ` set the attempt runs optimistically (DESIGN.md §16): no
    /// locks are taken, reads come from a frozen snapshot, writes buffer
    /// in a [`occam_netdb::StagedStore`], and the attempt ends with
    /// [`Runtime::occ_commit`] — validate-and-publish, or abort with
    /// [`TaskError::OccConflict`] / [`TaskError::OccFallback`] for the
    /// driver in [`Runtime::execute_with_policy`] to handle.
    pub(crate) fn execute_attempt<F>(
        &self,
        name: &str,
        urgent: bool,
        cancel: CancelToken,
        occ: bool,
        program: F,
    ) -> TaskReport
    where
        F: FnOnce(&TaskCtx) -> TaskResult<()>,
    {
        let id = TaskId(self.inner.next_task.fetch_add(1, Ordering::Relaxed));
        let obs = self.obs_handles();
        obs.tasks_submitted.inc();
        obs.events.record(EventKind::TaskSubmitted {
            task: id.0,
            name: name.to_string(),
        });
        let ctx = TaskCtx::new(self.clone(), id, name.to_string(), urgent, cancel);
        // Register with the certifier before the OCC snapshot is taken so
        // the begin floor never exceeds the snapshot's commit count.
        let cert = self.inner.certifier.lock().clone();
        let token = cert.as_ref().map(|c| {
            ctx.set_certified();
            c.begin(name, self.inner.db.commits())
        });
        let result = if ctx.cancel_token().is_cancelled() {
            Err(TaskError::Cancelled)
        } else {
            // The OCC base comes through the routed accessor: a follower
            // snapshot is a true prefix of the leader's history with its
            // shard versions intact, so commit-time validation against
            // the leader stays sound (a stale base just conflicts and
            // retries from a fresher one).
            let setup = if occ {
                self.routed_view()
                    .map(|view| ctx.enable_occ(view.into_snapshot()))
                    .map_err(TaskError::from)
            } else {
                Ok(())
            };
            match setup {
                Err(e) => Err(e),
                Ok(()) => {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| program(&ctx))) {
                        Ok(r) => r.and_then(|()| self.occ_commit(&ctx)),
                        Err(payload) => {
                            obs.task_panicked.inc();
                            Err(TaskError::Panicked(panic_message(payload.as_ref())))
                        }
                    }
                }
            }
        };
        self.teardown(&ctx);
        let footprint = ctx.take_footprint();
        let report = ctx.into_report(match result {
            Ok(()) => (TaskState::Completed, None),
            Err(e) => (TaskState::Aborted, Some(e)),
        });
        obs.task_wall_ns.record_duration(report.wall);
        match report.state {
            TaskState::Completed => {
                obs.tasks_completed.inc();
                obs.events.record(EventKind::TaskCompleted { task: id.0 });
            }
            _ => {
                if matches!(report.error, Some(TaskError::Cancelled)) {
                    obs.tasks_cancelled.inc();
                }
                obs.tasks_aborted.inc();
                obs.events.record(EventKind::TaskAborted { task: id.0 });
            }
        }
        if let (Some(c), Some(t)) = (cert, token) {
            if report.state == TaskState::Completed {
                // A detected cycle is latched by the certifier
                // (`cert.violations`); it never changes the task outcome —
                // the write is already published.
                if c.commit(t, footprint).is_err() {
                    obs.events.record(EventKind::CertViolation {
                        task: name.to_string(),
                    });
                }
            } else {
                c.abandon(t);
            }
        }
        report
    }

    /// Finishes an optimistic attempt: takes exclusive 2PL locks over the
    /// staged write scopes (write-bearing commits only — the mixed-mode
    /// serializability guard), validates the task's read set against the
    /// live store, and publishes its staged writes atomically
    /// (`Database::occ_publish`), recording validation latency in
    /// `core.occ.validate_ns`. No-op for pessimistic attempts; the
    /// commit-time locks are released by the ordinary task teardown.
    ///
    /// On success the buffered write rows are recorded into the certifier
    /// footprint at their true publication count (unknowable until the
    /// WAL sequence is assigned here). A version conflict aborts the
    /// attempt with [`TaskError::OccConflict`] (`core.occ.aborts`) and a
    /// pending fallback request (an `apply()` was attempted) surfaces as
    /// [`TaskError::OccFallback`]; in both cases nothing was published, so
    /// no rollback plan is needed.
    fn occ_commit(&self, ctx: &TaskCtx) -> TaskResult<()> {
        let write_patterns = {
            let mut slot = ctx.occ.lock();
            let Some(st) = slot.as_mut() else {
                return Ok(());
            };
            if let Some(why) = st.needs_fallback.take() {
                return Err(TaskError::OccFallback(why));
            }
            if st.staged.is_empty() {
                Vec::new()
            } else {
                let mut pats = std::mem::take(&mut st.write_patterns);
                pats.sort_by(|a, b| a.source().cmp(b.source()));
                pats.dedup_by(|a, b| a.source() == b.source());
                pats
            }
        };
        // Silo-style commit-time locking: a write-bearing publish briefly
        // takes the exclusive 2PL locks covering its staged scopes, so it
        // can never land inside a pessimistic read-modify-write's critical
        // section (which would let the 2PL task overwrite it from a stale
        // read). Read-only commits skip this entirely and stay lock-free.
        // The ctx.occ guard is dropped first — acquire() can block, and a
        // deadlock/cancel abort must leave the state intact for teardown.
        for pattern in &write_patterns {
            self.acquire(ctx, pattern, occam_objtree::LockMode::Exclusive)?;
        }
        let mut slot = ctx.occ.lock();
        let Some(st) = slot.as_mut() else {
            return Ok(());
        };
        let obs = self.obs_handles();
        let span = Span::start(&obs.occ_validate_ns);
        let outcome = self.inner.db.occ_publish(&st.staged, &st.read_shards);
        span.finish();
        match outcome {
            Ok(OccOutcome::Committed { seq }) => {
                obs.occ_commits.inc();
                if ctx.certified() {
                    for row in st.pending_rows.drain(..) {
                        ctx.record_write(&row, seq + 1);
                    }
                }
                Ok(())
            }
            Ok(OccOutcome::Conflict { shard }) => {
                obs.occ_aborts.inc();
                Err(TaskError::OccConflict { shard })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Runs `program` under `retry`, re-executing transient aborts after
    /// mechanically rolling back the failed attempt (so every attempt
    /// starts from the task's initial state). The returned report is the
    /// final attempt's, with [`TaskReport::attempts`] set to the total
    /// attempt count across both isolation modes.
    ///
    /// Between attempts the runtime executes the failed attempt's
    /// suggested rollback plan; if that rollback itself fails (counter
    /// `core.task.retry_rollback_failed`), retrying stops immediately and
    /// the aborted report is surfaced for operator recovery — its plan
    /// still describes how to restore the pre-task state, because every
    /// *earlier* attempt was fully rolled back and rollback steps are
    /// idempotent.
    ///
    /// Under [`Isolation::Occ`] the task first runs optimistically:
    /// validation conflicts re-execute from a fresh snapshot up to
    /// `max_retries` times, then the task transparently falls back to
    /// 2PL (`core.occ.fallbacks`) — as it does immediately when the
    /// program calls an operation OCC cannot stage (`apply()`). Transient
    /// errors during an optimistic attempt retry under `retry` *without*
    /// rollback: nothing was published, so there is nothing to undo.
    pub(crate) fn execute_with_policy<F>(
        &self,
        name: &str,
        urgent: bool,
        cancel: CancelToken,
        retry: &RetryPolicy,
        isolation: Isolation,
        mut program: F,
    ) -> TaskReport
    where
        F: FnMut(&TaskCtx) -> TaskResult<()>,
    {
        let obs = self.obs_handles().clone();
        let mut total: u32 = 0;
        if let Isolation::Occ { max_retries } = isolation {
            let mut conflicts: u32 = 0;
            let mut transient_attempts: u32 = 1;
            loop {
                total += 1;
                let mut report =
                    self.execute_attempt(name, urgent, cancel.clone(), true, &mut program);
                report.attempts = total;
                if report.state != TaskState::Aborted {
                    return report;
                }
                match report.error {
                    Some(TaskError::OccConflict { .. }) => {
                        if cancel.is_cancelled() {
                            return report;
                        }
                        if conflicts < max_retries {
                            conflicts += 1;
                            continue;
                        }
                        obs.occ_fallbacks.inc();
                        break;
                    }
                    Some(TaskError::OccFallback(_)) => {
                        obs.occ_fallbacks.inc();
                        break;
                    }
                    Some(ref e) if e.is_transient() => {
                        if transient_attempts >= retry.max_attempts() || cancel.is_cancelled() {
                            return report;
                        }
                        obs.task_retries.inc();
                        let delay = retry.backoff(transient_attempts);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        transient_attempts += 1;
                    }
                    _ => return report,
                }
            }
        }
        let mut attempt: u32 = 1;
        loop {
            total += 1;
            let mut report =
                self.execute_attempt(name, urgent, cancel.clone(), false, &mut program);
            report.attempts = total;
            if report.state != TaskState::Aborted {
                return report;
            }
            let transient = report.error.as_ref().is_some_and(TaskError::is_transient);
            if !transient || attempt >= retry.max_attempts() || cancel.is_cancelled() {
                return report;
            }
            if !report.log.is_empty()
                && crate::recovery::execute_rollback(&report, self.db(), self.service().as_ref())
                    .is_err()
            {
                obs.retry_rollback_failed.inc();
                return report;
            }
            obs.task_retries.inc();
            let delay = retry.backoff(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            attempt += 1;
        }
    }

    /// Wakes every task blocked in lock acquisition so it re-checks its
    /// cancellation token. Call after [`CancelToken::cancel`] when the
    /// cancelled task may be waiting for a lock; otherwise it observes the
    /// flag at its next grant or operation.
    pub fn wake_lock_waiters(&self) {
        self.inner.locks.cv.notify_all();
    }

    /// Acquires locks on every node covering `pattern` for `task`,
    /// blocking until granted. Returns the covering node ids.
    ///
    /// Deadlocks are detected while blocked; the youngest task on a cycle
    /// is aborted (it returns [`TaskError::Deadlock`]) and the survivors
    /// proceed — the paper's §5 handling.
    pub(crate) fn acquire(
        &self,
        ctx: &TaskCtx,
        pattern: &occam_regex::Pattern,
        mode: occam_objtree::LockMode,
    ) -> TaskResult<Vec<ObjectId>> {
        ctx.check_cancelled()?;
        let task = ctx.task_id();
        let obs = self.obs_handles();
        let requested = Instant::now();
        let lt = self.locks();
        let mut st = lt.state.lock();
        let covering = st.tree.insert_region(pattern);
        // Record refs immediately so teardown releases them on any path.
        ctx.record_covering(&covering);
        if covering.is_empty() {
            return Ok(covering);
        }
        obs.events.record(EventKind::LockRequested {
            task: task.0,
            objects: covering.len() as u64,
            exclusive: mode == occam_objtree::LockMode::Exclusive,
        });
        let arrival = self.next_arrival();
        for &obj in &covering {
            st.tree.request_lock(task, obj, mode, arrival, ctx.urgent());
        }
        {
            let state = &mut *st;
            let _ = state.sched.sched(&mut state.tree);
        }
        lt.cv.notify_all();
        loop {
            if st.aborted.remove(&task) {
                // A breaker released our locks already.
                obs.deadlocks.inc();
                return Err(TaskError::Deadlock);
            }
            if ctx.cancel_token().is_cancelled() {
                // Cancellation checkpoint while blocked: bail out; the
                // task teardown releases whatever was requested/held.
                return Err(TaskError::Cancelled);
            }
            let all_held = covering
                .iter()
                .all(|&obj| st.tree.holders_of(obj).iter().any(|&(t, _)| t == task));
            if all_held {
                let wait_ns = u64::try_from(requested.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs.lock_acquires.inc();
                obs.lock_wait_ns.record(wait_ns);
                obs.events.record(EventKind::LockGranted {
                    task: task.0,
                    objects: covering.len() as u64,
                    wait_ns,
                });
                return Ok(covering);
            }
            if let Some(cycle) = st.tree.find_deadlock_cycle() {
                // Abort the youngest cycle member (largest id).
                let victim = *cycle.iter().max().expect("cycle non-empty");
                {
                    let state = &mut *st;
                    state.tree.release_task(victim);
                    let _ = state.sched.sched(&mut state.tree);
                }
                if victim == task {
                    lt.cv.notify_all();
                    obs.deadlocks.inc();
                    return Err(TaskError::Deadlock);
                }
                st.aborted.insert(victim);
                lt.cv.notify_all();
                continue;
            }
            lt.cv.wait(&mut st);
        }
    }

    /// Releases everything `ctx`'s task holds: its locks (strict 2PL: all
    /// at once) and its object references, then reschedules waiters.
    fn teardown(&self, ctx: &TaskCtx) {
        let lt = self.locks();
        let mut st = lt.state.lock();
        st.tree.release_task(ctx.task_id());
        let covering = ctx.take_covering();
        if !covering.is_empty() {
            self.obs_handles().events.record(EventKind::LockReleased {
                task: ctx.task_id().0,
                objects: covering.len() as u64,
            });
        }
        for obj in covering {
            st.tree.release_ref(obj);
        }
        st.aborted.remove(&ctx.task_id());
        {
            let state = &mut *st;
            let _ = state.sched.sched(&mut state.tree);
        }
        lt.cv.notify_all();
    }
}

/// Renders a `catch_unwind` payload as a one-line message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_netdb::attrs;

    fn runtime() -> Runtime {
        crate::test_support::tiny_runtime()
    }

    #[test]
    fn completed_task_releases_everything() {
        let rt = runtime();
        let report = rt.task("noop").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            let _ = net.get(attrs::DEVICE_STATUS)?;
            Ok(())
        });
        assert_eq!(report.state, TaskState::Completed);
        assert_eq!(rt.active_objects(), 0, "tree drains after commit");
    }

    #[test]
    fn failing_task_reports_abort_with_plan() {
        let rt = runtime();
        let report = rt.task("fails").run(|ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
            Err(TaskError::Failed("manual step failed".into()))
        });
        assert_eq!(report.state, TaskState::Aborted);
        assert!(report.error.is_some());
        let plan = report.rollback.as_ref().expect("plan suggested");
        assert_eq!(plan.arrow_notation(), "r(DB_CHANGE)");
        assert_eq!(rt.active_objects(), 0);
    }

    #[test]
    fn conflicting_tasks_serialize() {
        let rt = runtime();
        let marker = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let m1 = Arc::clone(&marker);
        let rt1 = rt.clone();
        let h1 = rt1.task("writer1").spawn(move |ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set("X", 1i64.into())?;
            std::thread::sleep(std::time::Duration::from_millis(120));
            // The other writer must not have run inside our critical
            // section.
            assert_eq!(m1.load(Ordering::SeqCst), 0);
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let m2 = Arc::clone(&marker);
        let report2 = rt.task("writer2").run(move |ctx| {
            let net = ctx.network("dc01.pod00.*")?;
            net.set("X", 2i64.into())?;
            m2.store(1, Ordering::SeqCst);
            Ok(())
        });
        let report1 = h1.join().unwrap();
        assert_eq!(report1.state, TaskState::Completed);
        assert_eq!(report2.state, TaskState::Completed);
    }

    #[test]
    fn deadlock_victim_aborts_and_survivor_completes() {
        let rt = runtime();
        let rt1 = rt.clone();
        let h1 = rt1.task("t1").spawn(move |ctx| {
            let _a = ctx.network("dc01.pod00.*")?;
            std::thread::sleep(std::time::Duration::from_millis(80));
            let _b = ctx.network("dc01.pod01.*")?;
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let report2 = rt.task("t2").run(|ctx| {
            let _b = ctx.network("dc01.pod01.*")?;
            std::thread::sleep(std::time::Duration::from_millis(80));
            let _a = ctx.network("dc01.pod00.*")?;
            Ok(())
        });
        let report1 = h1.join().unwrap();
        let states = [report1.state, report2.state];
        assert!(
            states.contains(&TaskState::Completed),
            "one task survives: {states:?}"
        );
        let aborted = [&report1, &report2]
            .iter()
            .filter(|r| r.state == TaskState::Aborted)
            .count();
        assert_eq!(aborted, 1, "exactly one deadlock victim");
        assert_eq!(rt.active_objects(), 0);
    }

    #[test]
    fn urgent_task_preempts_queue() {
        // One long holder; a normal and an urgent task queue behind it.
        let rt = runtime();
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let rt1 = rt.clone();
        let h1 = rt1.task("holder").spawn(move |ctx| {
            let _a = ctx.network("dc01.pod00.*")?;
            std::thread::sleep(std::time::Duration::from_millis(150));
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let o2 = Arc::clone(&order);
        let rt2 = rt.clone();
        let h2 = rt2.task("normal").spawn(move |ctx| {
            let _a = ctx.network("dc01.pod00.*")?;
            o2.lock().push("normal");
            Ok(())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let o3 = Arc::clone(&order);
        let rt3 = rt.clone();
        let h3 = rt3.task("urgent").urgent().spawn(move |ctx| {
            let _a = ctx.network("dc01.pod00.*")?;
            o3.lock().push("urgent");
            Ok(())
        });
        h1.join().unwrap();
        h2.join().unwrap();
        h3.join().unwrap();
        let order = order.lock();
        assert_eq!(
            order.first(),
            Some(&"urgent"),
            "urgent task ran first: {order:?}"
        );
    }
}
