//! Task-level errors.

use occam_emunet::FuncError;
use occam_netdb::DbError;
use occam_regex::ParseError;

/// An error aborting an Occam task.
#[derive(Clone, PartialEq, Debug)]
pub enum TaskError {
    /// A database query failed (connection failure, missing row, …).
    Db(DbError),
    /// A device-level operation failed.
    Device(FuncError),
    /// The region scope did not compile.
    Scope(ParseError),
    /// The task was chosen as a deadlock victim and must be re-executed.
    Deadlock,
    /// The task was cooperatively cancelled (gateway `CANCEL`, operator
    /// abort). Observed at the next task checkpoint — lock acquisition or
    /// any stateful operation.
    Cancelled,
    /// The management program panicked; the panic was contained by the
    /// runtime and converted into this failed report (counter
    /// `core.task.panicked`).
    Panicked(String),
    /// A `set()`/`apply()` was attempted on a read-mode network object.
    ReadOnlyObject {
        /// The offending scope.
        scope: String,
    },
    /// Task-specific failure raised by the management program itself.
    Failed(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Db(e) => write!(f, "database error: {e}"),
            TaskError::Device(e) => write!(f, "device operation error: {e}"),
            TaskError::Scope(e) => write!(f, "invalid scope: {e}"),
            TaskError::Deadlock => write!(f, "aborted as deadlock victim; re-execute the task"),
            TaskError::Cancelled => write!(f, "task cancelled at a checkpoint"),
            TaskError::Panicked(msg) => write!(f, "management program panicked: {msg}"),
            TaskError::ReadOnlyObject { scope } => {
                write!(f, "stateful operation on read-mode object {scope}")
            }
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

impl From<DbError> for TaskError {
    fn from(e: DbError) -> Self {
        TaskError::Db(e)
    }
}

impl From<FuncError> for TaskError {
    fn from(e: FuncError) -> Self {
        TaskError::Device(e)
    }
}

impl From<ParseError> for TaskError {
    fn from(e: ParseError) -> Self {
        TaskError::Scope(e)
    }
}

/// Result alias for task operations.
pub type TaskResult<T> = Result<T, TaskError>;
