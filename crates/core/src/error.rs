//! Task-level errors.

use occam_emunet::FuncError;
use occam_netdb::DbError;
use occam_regex::ParseError;

/// An error aborting an Occam task.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm so new failure classes can be added without a breaking change.
/// Retry logic should branch on [`TaskError::is_transient`] rather than
/// on concrete variants.
#[non_exhaustive]
#[derive(Clone, PartialEq, Debug)]
pub enum TaskError {
    /// A database query failed (connection failure, missing row, …).
    Db(DbError),
    /// A device-level operation failed.
    Device(FuncError),
    /// The region scope did not compile.
    Scope(ParseError),
    /// The task was chosen as a deadlock victim and must be re-executed.
    Deadlock,
    /// The task was cooperatively cancelled (gateway `CANCEL`, operator
    /// abort). Observed at the next task checkpoint — lock acquisition or
    /// any stateful operation.
    Cancelled,
    /// The management program panicked; the panic was contained by the
    /// runtime and converted into this failed report (counter
    /// `core.task.panicked`).
    Panicked(String),
    /// A `set()`/`apply()` was attempted on a read-mode network object.
    ReadOnlyObject {
        /// The offending scope.
        scope: String,
    },
    /// An optimistically-executed task failed commit-time validation:
    /// another commit touched a shard in its read or write set since its
    /// snapshot was taken. Handled by the OCC driver (retry from a fresh
    /// snapshot, then 2PL fallback); surfaces only through
    /// `core.occ.aborts`.
    OccConflict {
        /// Index of the first netdb shard that failed validation.
        shard: usize,
    },
    /// An operation that cannot be staged optimistically (e.g. a device
    /// function, whose physical side effects have no undo-free buffer)
    /// was attempted under `Isolation::Occ`. The OCC driver re-executes
    /// the task under 2PL (`core.occ.fallbacks`).
    OccFallback(String),
    /// Task-specific failure raised by the management program itself.
    Failed(String),
}

impl TaskError {
    /// Whether re-executing the task can plausibly succeed — the retry
    /// classifier behind `TaskBuilder::retry`.
    ///
    /// Transient: database connectivity loss ([`DbError::is_transient`]),
    /// injected device-RPC failures ([`FuncError::is_transient`]), and
    /// deadlock victimhood (the paper's §5 prescription is exactly
    /// "re-execute the task"). Permanent: cancellation (the operator asked
    /// for it), panics, bad scopes, read-only violations, and failures the
    /// program raised itself — all of which recur deterministically.
    pub fn is_transient(&self) -> bool {
        match self {
            TaskError::Db(e) => e.is_transient(),
            TaskError::Device(e) => e.is_transient(),
            TaskError::Deadlock => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Db(e) => write!(f, "database error: {e}"),
            TaskError::Device(e) => write!(f, "device operation error: {e}"),
            TaskError::Scope(e) => write!(f, "invalid scope: {e}"),
            TaskError::Deadlock => write!(f, "aborted as deadlock victim; re-execute the task"),
            TaskError::Cancelled => write!(f, "task cancelled at a checkpoint"),
            TaskError::Panicked(msg) => write!(f, "management program panicked: {msg}"),
            TaskError::ReadOnlyObject { scope } => {
                write!(f, "stateful operation on read-mode object {scope}")
            }
            TaskError::OccConflict { shard } => {
                write!(f, "optimistic validation conflict on shard {shard}")
            }
            TaskError::OccFallback(why) => {
                write!(f, "optimistic execution fell back to 2PL: {why}")
            }
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

impl From<DbError> for TaskError {
    fn from(e: DbError) -> Self {
        TaskError::Db(e)
    }
}

impl From<FuncError> for TaskError {
    fn from(e: FuncError) -> Self {
        TaskError::Device(e)
    }
}

impl From<ParseError> for TaskError {
    fn from(e: ParseError) -> Self {
        TaskError::Scope(e)
    }
}

/// Result alias for task operations.
pub type TaskResult<T> = Result<T, TaskError>;
