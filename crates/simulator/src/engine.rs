//! The discrete-event simulator (paper §7 "Simulation", driving §8.1).
//!
//! Tasks arrive, request every lock their region needs under the selected
//! granularity, start executing once all locks are held, run for their
//! execution time, and commit — releasing all locks (strict 2PL) and
//! triggering a SCHED invocation. The simulator shares the production lock
//! and scheduling code (`occam-objtree`, `occam-sched`); it only replaces
//! wall-clock execution with virtual time.

use crate::flatspace::FlatSpace;
use occam_objtree::{LockMode, ObjTree, ObjectId, SplitMode, TaskId, TreeStats};
use occam_obs::{Counter, Histogram, Registry};
use occam_regex::PatternCache;
use occam_sched::{LockSpace, Policy, SchedStats, Scheduler};
use occam_topology::ProductionScheme;
use occam_workload::TaskSpec;
use std::collections::{BinaryHeap, HashMap};
use std::time::Duration;

/// Lock granularity (the paper's three simulator configurations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// One lock per datacenter.
    Dc,
    /// One lock per device.
    Device,
    /// Multi-granularity network-object locks (the Occam design).
    Object,
}

impl Granularity {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Dc => "dc",
            Granularity::Device => "dev",
            Granularity::Object => "obj",
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Lock granularity.
    pub granularity: Granularity,
    /// Scheduling policy.
    pub policy: Policy,
    /// Network naming scheme (scale).
    pub scheme: ProductionScheme,
    /// Overlap reconciliation for the object tree (ablation switch; only
    /// meaningful with [`Granularity::Object`]).
    pub split_mode: SplitMode,
}

impl SimConfig {
    /// The standard configuration: object granularity behaves per the
    /// paper (SPLIT on overlap).
    pub fn new(granularity: Granularity, policy: Policy, scheme: ProductionScheme) -> SimConfig {
        SimConfig {
            granularity,
            policy,
            scheme,
            split_mode: SplitMode::Split,
        }
    }
}

/// Per-task outcome.
#[derive(Clone, Copy, Debug)]
pub struct TaskOutcome {
    /// Task id.
    pub id: u64,
    /// Arrival time (hours).
    pub arrival: f64,
    /// Time all locks were held and execution began (hours).
    pub start: f64,
    /// Commit time (hours).
    pub completion: f64,
    /// Number of abort-and-retry rounds due to deadlock breaking.
    pub retries: u32,
}

impl TaskOutcome {
    /// Lock-waiting time in hours.
    pub fn waiting(&self) -> f64 {
        self.start - self.arrival
    }

    /// End-to-end completion time in hours.
    pub fn completion_time(&self) -> f64 {
        self.completion - self.arrival
    }
}

/// Everything the experiments need from one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Per-task outcomes, by task id.
    pub outcomes: Vec<TaskOutcome>,
    /// `(virtual hours, waiting tasks)` after every event (Figure 8c).
    pub queue_timeline: Vec<(f64, usize)>,
    /// Active scheduling objects after each SCHED invocation (Figure 10b).
    pub active_objects: Vec<usize>,
    /// Wall time of each SCHED invocation (Figure 10a).
    pub sched_durations: Vec<Duration>,
    /// Aggregate scheduler counters.
    pub sched_stats: SchedStats,
    /// Object-tree maintenance stats (only for `Granularity::Object`).
    pub tree_stats: Option<TreeStats>,
    /// Deadlock cycles broken by abort-and-retry.
    pub deadlocks_broken: u64,
    /// The run's observability registry: the shared `objtree.*` / `sched.*`
    /// instruments plus the simulator's own `sim.*` family (DESIGN.md §9).
    pub obs: Registry,
}

impl SimResult {
    /// Mean completion time (hours).
    pub fn mean_completion(&self) -> f64 {
        mean(self.outcomes.iter().map(TaskOutcome::completion_time))
    }

    /// Mean waiting time (hours).
    pub fn mean_waiting(&self) -> f64 {
        mean(self.outcomes.iter().map(TaskOutcome::waiting))
    }

    /// Percentile (0–100) of completion times.
    pub fn completion_percentile(&self, p: f64) -> f64 {
        percentile(self.outcomes.iter().map(TaskOutcome::completion_time), p)
    }

    /// Percentile (0–100) of waiting times.
    pub fn waiting_percentile(&self, p: f64) -> f64 {
        percentile(self.outcomes.iter().map(TaskOutcome::waiting), p)
    }

    /// Fraction of tasks that never waited (start ≈ arrival).
    pub fn zero_wait_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.waiting() < 1e-9).count() as f64
            / self.outcomes.len() as f64
    }

    /// Peak queue length.
    pub fn peak_queue(&self) -> usize {
        self.queue_timeline
            .iter()
            .map(|&(_, q)| q)
            .max()
            .unwrap_or(0)
    }

    /// Mean SCHED invocation time.
    pub fn mean_sched_time(&self) -> Duration {
        if self.sched_durations.is_empty() {
            return Duration::ZERO;
        }
        self.sched_durations.iter().sum::<Duration>() / self.sched_durations.len() as u32
    }

    /// Maximum SCHED invocation time.
    pub fn max_sched_time(&self) -> Duration {
        self.sched_durations
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn percentile(xs: impl Iterator<Item = f64>, p: f64) -> f64 {
    let mut v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((v.len() - 1) as f64 * (p / 100.0)).round() as usize;
    v[idx]
}

/// The granularity-specific glue: how regions become lock objects.
trait SimSpace: LockSpace {
    /// Requests every lock the task's region needs; returns how many.
    fn acquire(&mut self, task: TaskId, spec: &TaskSpec, arrival_seq: u64) -> usize;
    /// Releases everything the task holds or waits for.
    fn finish(&mut self, task: TaskId);
    /// Called after each SCHED invocation.
    fn after_sched(&mut self) {}
    /// Tree stats if this space is the object tree.
    fn tree_stats(&self) -> Option<TreeStats> {
        None
    }
}

/// Flat space keyed by datacenter.
struct DcSpace {
    inner: FlatSpace,
    scheme: ProductionScheme,
}

impl SimSpace for DcSpace {
    fn acquire(&mut self, task: TaskId, spec: &TaskSpec, seq: u64) -> usize {
        let mode = mode_of(spec);
        let dcs = spec.region.dcs(&self.scheme);
        for &dc in &dcs {
            self.inner.request(task, dc - 1, mode, seq, spec.urgent);
        }
        dcs.len()
    }

    fn finish(&mut self, task: TaskId) {
        self.inner.release_task(task);
    }

    fn after_sched(&mut self) {
        self.inner.clear_dirty();
    }
}

/// Flat space keyed by device index.
struct DevSpace {
    inner: FlatSpace,
    scheme: ProductionScheme,
}

impl SimSpace for DevSpace {
    fn acquire(&mut self, task: TaskId, spec: &TaskSpec, seq: u64) -> usize {
        let mode = mode_of(spec);
        let devices = spec.region.device_indices(&self.scheme);
        for &d in &devices {
            self.inner.request(task, d, mode, seq, spec.urgent);
        }
        devices.len()
    }

    fn finish(&mut self, task: TaskId) {
        self.inner.release_task(task);
    }

    fn after_sched(&mut self) {
        self.inner.clear_dirty();
    }
}

/// Forwards `LockSpace` to the inner [`FlatSpace`] field.
macro_rules! delegate_lockspace {
    ($ty:ty) => {
        impl LockSpace for $ty {
            type Obj = u32;

            fn objects_with_waiters(&self) -> Vec<u32> {
                self.inner.objects_with_waiters()
            }
            fn waiters(&self, obj: u32) -> &[occam_objtree::LockRequest] {
                LockSpace::waiters(&self.inner, obj)
            }
            fn holders(&self, obj: u32) -> &[(TaskId, LockMode)] {
                LockSpace::holders(&self.inner, obj)
            }
            fn containment(&self, obj: u32) -> Vec<u32> {
                self.inner.containment(obj)
            }
            fn can_grant(&self, obj: u32, task: TaskId, mode: LockMode) -> bool {
                self.inner.can_grant(obj, task, mode)
            }
            fn grant(&mut self, obj: u32, task: TaskId) -> Option<LockMode> {
                self.inner.grant(obj, task)
            }
            fn granted_objects_of(&self, task: TaskId) -> Vec<u32> {
                self.inner.granted_objects_of(task)
            }
            fn wait_edges(&self) -> Vec<(TaskId, TaskId)> {
                self.inner.wait_edges()
            }
            fn active_object_count(&self) -> usize {
                self.inner.active_object_count()
            }
        }
    };
}

delegate_lockspace!(DcSpace);
delegate_lockspace!(DevSpace);

/// The object tree with pattern compilation and per-task covering sets.
struct ObjSpace {
    tree: ObjTree,
    scheme: ProductionScheme,
    cache: PatternCache,
    covering: HashMap<TaskId, Vec<ObjectId>>,
}

impl LockSpace for ObjSpace {
    type Obj = ObjectId;

    fn objects_with_waiters(&self) -> Vec<ObjectId> {
        LockSpace::objects_with_waiters(&self.tree)
    }
    fn waiters(&self, obj: ObjectId) -> &[occam_objtree::LockRequest] {
        LockSpace::waiters(&self.tree, obj)
    }
    fn holders(&self, obj: ObjectId) -> &[(TaskId, LockMode)] {
        LockSpace::holders(&self.tree, obj)
    }
    fn containment(&self, obj: ObjectId) -> Vec<ObjectId> {
        LockSpace::containment(&self.tree, obj)
    }
    fn can_grant(&self, obj: ObjectId, task: TaskId, mode: LockMode) -> bool {
        LockSpace::can_grant(&self.tree, obj, task, mode)
    }
    fn grant(&mut self, obj: ObjectId, task: TaskId) -> Option<LockMode> {
        LockSpace::grant(&mut self.tree, obj, task)
    }
    fn granted_objects_of(&self, task: TaskId) -> Vec<ObjectId> {
        LockSpace::granted_objects_of(&self.tree, task)
    }
    fn wait_edges(&self) -> Vec<(TaskId, TaskId)> {
        LockSpace::wait_edges(&self.tree)
    }
    fn active_object_count(&self) -> usize {
        LockSpace::active_object_count(&self.tree)
    }
    fn relate_cache_stats(&self) -> Option<occam_objtree::RelCacheStats> {
        LockSpace::relate_cache_stats(&self.tree)
    }
}

impl SimSpace for ObjSpace {
    fn acquire(&mut self, task: TaskId, spec: &TaskSpec, seq: u64) -> usize {
        let mode = mode_of(spec);
        let regex = spec.region.to_regex(&self.scheme);
        let pattern = self
            .cache
            .get(&regex)
            .unwrap_or_else(|e| panic!("region regex invalid: {e}"));
        let cover = self.tree.insert_region(&pattern);
        for &obj in &cover {
            self.tree.request_lock(task, obj, mode, seq, spec.urgent);
        }
        let n = cover.len();
        self.covering.insert(task, cover);
        n
    }

    fn finish(&mut self, task: TaskId) {
        self.tree.release_task(task);
        for obj in self.covering.remove(&task).unwrap_or_default() {
            self.tree.release_ref(obj);
        }
    }

    fn tree_stats(&self) -> Option<TreeStats> {
        Some(self.tree.stats)
    }
}

fn mode_of(spec: &TaskSpec) -> LockMode {
    if spec.write {
        LockMode::Exclusive
    } else {
        LockMode::Shared
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Event {
    Arrival(usize),
    Completion(usize),
    /// Re-acquisition after a deadlock abort (the paper's
    /// abort-and-re-execute, with backoff so the surviving cycle members
    /// drain first).
    Retry(usize),
}

/// Heap entry ordered by (time, seq) ascending.
struct HeapItem {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Runs one simulation. Each run gets a fresh [`Registry`] (returned as
/// [`SimResult::obs`]) shared by the object tree, the scheduler, and the
/// simulator's own virtual-time instruments.
pub fn run(cfg: &SimConfig, tasks: &[TaskSpec]) -> SimResult {
    let reg = Registry::new();
    match cfg.granularity {
        Granularity::Dc => run_generic(
            DcSpace {
                inner: FlatSpace::new(),
                scheme: cfg.scheme,
            },
            cfg.policy,
            tasks,
            reg,
        ),
        Granularity::Device => run_generic(
            DevSpace {
                inner: FlatSpace::new(),
                scheme: cfg.scheme,
            },
            cfg.policy,
            tasks,
            reg,
        ),
        Granularity::Object => run_generic(
            ObjSpace {
                tree: ObjTree::with_obs(cfg.split_mode, &reg),
                scheme: cfg.scheme,
                cache: PatternCache::new(4096),
                covering: HashMap::new(),
            },
            cfg.policy,
            tasks,
            reg,
        ),
    }
}

/// The simulator's own instruments, registered as the `sim.*` family.
/// Virtual-time histograms use milli-hours (`_mh`) so whole-number samples
/// survive the integer encoding at the precision the figures print.
struct SimObs {
    queue_depth: Histogram,
    active_objects: Histogram,
    tasks_completed: Counter,
    tasks_zero_wait: Counter,
    deadlocks_broken: Counter,
    task_completion_mh: Histogram,
    task_waiting_mh: Histogram,
}

impl SimObs {
    fn bound(reg: &Registry) -> SimObs {
        SimObs {
            queue_depth: reg.histogram("sim.queue_depth"),
            active_objects: reg.histogram("sim.active_objects"),
            tasks_completed: reg.counter("sim.tasks.completed"),
            tasks_zero_wait: reg.counter("sim.tasks.zero_wait"),
            deadlocks_broken: reg.counter("sim.deadlocks_broken"),
            task_completion_mh: reg.histogram("sim.task_completion_mh"),
            task_waiting_mh: reg.histogram("sim.task_waiting_mh"),
        }
    }
}

struct TaskState {
    required: usize,
    granted: usize,
    started: Option<f64>,
    completed: bool,
    retries: u32,
    /// The sequence number of the task's first arrival: re-executions keep
    /// their original queue priority (otherwise large aborted tasks starve).
    arrival_seq: u64,
}

fn run_generic<S: SimSpace>(
    mut space: S,
    policy: Policy,
    tasks: &[TaskSpec],
    reg: Registry,
) -> SimResult
where
    S::Obj: Copy,
{
    let obs = SimObs::bound(&reg);
    let mut scheduler = Scheduler::with_obs(policy, &reg);
    let mut result = SimResult {
        obs: reg,
        ..SimResult::default()
    };
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<HeapItem>, seq: &mut u64, time: f64, event: Event| {
        *seq += 1;
        heap.push(HeapItem {
            time,
            seq: *seq,
            event,
        });
    };
    for (i, t) in tasks.iter().enumerate() {
        push(&mut heap, &mut seq, t.arrival, Event::Arrival(i));
    }
    let mut states: Vec<TaskState> = tasks
        .iter()
        .map(|_| TaskState {
            required: 0,
            granted: 0,
            started: None,
            completed: false,
            retries: 0,
            arrival_seq: 0,
        })
        .collect();
    // Task index ↔ TaskId mapping is identity over task position.
    let tid = |i: usize| TaskId(i as u64);
    let idx = |t: TaskId| t.0 as usize;

    let mut arrived = 0usize;
    let mut started = 0usize;
    let mut completed = 0usize;
    let mut now = 0.0f64;
    let mut pending_completions = 0usize;
    let debug = std::env::var_os("OCCAM_SIM_DEBUG").is_some();
    let mut events = 0u64;

    while completed < tasks.len() {
        events += 1;
        if debug && events.is_multiple_of(200) {
            eprintln!(
                "evt={events} now={now:.1} arrived={arrived} started={started} completed={completed} heap={} sched_total={:?}",
                heap.len(),
                scheduler.stats.total_time
            );
        }
        let item = match heap.pop() {
            Some(i) => i,
            None => {
                // Stall: every remaining task is blocked on locks held by
                // other *waiting* tasks (hold-and-wait under piecemeal
                // granting). Abort-and-re-execute victims (paper §5) until
                // at least one task holds everything it needs and starts;
                // victims retry after a backoff so the survivors drain
                // first.
                let before = started;
                let mut guard = 0usize;
                while started == before && guard <= states.len() {
                    guard += 1;
                    let victim = pick_victim(&space, &states);
                    let v = match victim {
                        Some(v) => v,
                        None => break,
                    };
                    result.deadlocks_broken += 1;
                    obs.deadlocks_broken.inc();
                    let i = idx(v);
                    states[i].retries += 1;
                    states[i].granted = 0;
                    states[i].required = 0;
                    space.finish(v);
                    let backoff =
                        0.05 * f64::from(1u32 << states[i].retries.min(8)) + 0.01 * guard as f64;
                    push(&mut heap, &mut seq, now + backoff, Event::Retry(i));
                    run_sched_round(
                        &mut scheduler,
                        &mut space,
                        &mut states,
                        tasks,
                        now,
                        &mut heap,
                        &mut seq,
                        &mut started,
                        &mut pending_completions,
                        &mut result,
                        &obs,
                    );
                }
                if started == before && heap.is_empty() {
                    break; // inconsistent state: bail out rather than spin
                }
                continue;
            }
        };
        now = item.time;
        match item.event {
            Event::Arrival(i) => {
                arrived += 1;
                states[i].arrival_seq = item.seq;
                let required = space.acquire(tid(i), &tasks[i], item.seq);
                states[i].required = required;
                if required == 0 {
                    // Empty region: start immediately.
                    states[i].started = Some(now);
                    started += 1;
                    pending_completions += 1;
                    push(
                        &mut heap,
                        &mut seq,
                        now + tasks[i].duration,
                        Event::Completion(i),
                    );
                }
            }
            Event::Retry(i) => {
                if !states[i].completed && states[i].started.is_none() {
                    let required = space.acquire(tid(i), &tasks[i], states[i].arrival_seq);
                    states[i].required = required;
                    if required == 0 {
                        states[i].started = Some(now);
                        started += 1;
                        pending_completions += 1;
                        push(
                            &mut heap,
                            &mut seq,
                            now + tasks[i].duration,
                            Event::Completion(i),
                        );
                    }
                }
            }
            Event::Completion(i) => {
                if states[i].completed {
                    // Stale completion from before an abort-retry.
                    continue;
                }
                pending_completions -= 1;
                states[i].completed = true;
                completed += 1;
                space.finish(tid(i));
                let outcome = TaskOutcome {
                    id: tasks[i].id,
                    arrival: tasks[i].arrival,
                    start: states[i].started.expect("completed implies started"),
                    completion: now,
                    retries: states[i].retries,
                };
                obs.tasks_completed.inc();
                obs.task_completion_mh
                    .record((outcome.completion_time() * 1000.0).round() as u64);
                obs.task_waiting_mh
                    .record((outcome.waiting() * 1000.0).round() as u64);
                if outcome.waiting() < 1e-9 {
                    obs.tasks_zero_wait.inc();
                }
                result.outcomes.push(outcome);
            }
        }
        run_sched_round(
            &mut scheduler,
            &mut space,
            &mut states,
            tasks,
            now,
            &mut heap,
            &mut seq,
            &mut started,
            &mut pending_completions,
            &mut result,
            &obs,
        );
        let depth = arrived - started.min(arrived);
        obs.queue_depth.record(depth as u64);
        result.queue_timeline.push((now, depth));
    }

    result.outcomes.sort_by_key(|o| o.id);
    result.sched_stats = scheduler.stats.clone();
    result.tree_stats = space.tree_stats();
    result
}

#[allow(clippy::too_many_arguments)]
fn run_sched_round<S: SimSpace>(
    scheduler: &mut Scheduler<S::Obj>,
    space: &mut S,
    states: &mut [TaskState],
    tasks: &[TaskSpec],
    now: f64,
    heap: &mut BinaryHeap<HeapItem>,
    seq: &mut u64,
    started: &mut usize,
    pending_completions: &mut usize,
    result: &mut SimResult,
    obs: &SimObs,
) {
    let grants = scheduler.sched(space);
    space.after_sched();
    for g in grants {
        let i = g.task.0 as usize;
        states[i].granted += 1;
        if states[i].granted == states[i].required && states[i].started.is_none() {
            states[i].started = Some(now);
            *started += 1;
            *pending_completions += 1;
            *seq += 1;
            heap.push(HeapItem {
                time: now + tasks[i].duration,
                seq: *seq,
                event: Event::Completion(i),
            });
        }
    }
    // The grant slice borrows the scheduler's scratch buffer; read the
    // per-invocation stats only after it is consumed.
    result.sched_durations.push(scheduler.stats.last_time);
    let active = space.active_object_count();
    obs.active_objects.record(active as u64);
    result.active_objects.push(active);
}

/// Chooses the deadlock victim: a member of a waits-for cycle if one
/// exists (the youngest by id), else the blocked task holding the most
/// locks (to guarantee forward progress even without a detectable cycle).
fn pick_victim<S: SimSpace>(space: &S, states: &[TaskState]) -> Option<TaskId> {
    let edges = space.wait_edges();
    // Find a cycle by DFS over the waiter→holder graph.
    let mut adj: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
    for (w, h) in &edges {
        adj.entry(*w).or_default().push(*h);
    }
    let mut color: HashMap<TaskId, u8> = HashMap::new();
    let nodes: Vec<TaskId> = adj.keys().copied().collect();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut stack = vec![(start, 0usize)];
        while let Some(&mut (t, ref mut i)) = stack.last_mut() {
            if *i == 0 {
                color.insert(t, 1);
                path.push(t);
            }
            let next = adj.get(&t).and_then(|v| v.get(*i)).copied();
            *i += 1;
            match next {
                Some(n) => match color.get(&n).copied().unwrap_or(0) {
                    0 => stack.push((n, 0)),
                    1 => {
                        let pos = path.iter().position(|&p| p == n).expect("on path");
                        return path[pos..].iter().max().copied();
                    }
                    _ => {}
                },
                None => {
                    color.insert(t, 2);
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
    // No cycle: pick any incomplete, unstarted task that is waiting.
    states
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.completed && s.started.is_none() && s.required > 0)
        .map(|(i, _)| TaskId(i as u64))
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_topology::RegionSpec;

    fn small_scheme() -> ProductionScheme {
        ProductionScheme {
            num_dcs: 2,
            pods_per_dc: 4,
            switches_per_pod: 4,
        }
    }

    fn spec(id: u64, arrival: f64, duration: f64, region: RegionSpec, write: bool) -> TaskSpec {
        TaskSpec {
            id,
            arrival,
            duration,
            region,
            write,
            urgent: false,
        }
    }

    fn run_all(tasks: &[TaskSpec]) -> [SimResult; 3] {
        let scheme = small_scheme();
        [Granularity::Dc, Granularity::Device, Granularity::Object].map(|granularity| {
            run(
                &SimConfig {
                    granularity,
                    policy: Policy::Ldsf,
                    scheme,
                    split_mode: SplitMode::Split,
                },
                tasks,
            )
        })
    }

    #[test]
    fn independent_tasks_never_wait() {
        let tasks = vec![
            spec(0, 0.0, 1.0, RegionSpec::Pod { dc: 1, pod: 0 }, true),
            spec(1, 0.0, 1.0, RegionSpec::Pod { dc: 2, pod: 0 }, true),
        ];
        for r in run_all(&tasks) {
            assert_eq!(r.outcomes.len(), 2);
            for o in &r.outcomes {
                assert!(o.waiting() < 1e-9, "{o:?}");
                assert!((o.completion_time() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dc_locks_serialize_same_dc_writers() {
        // Two writers in different pods of the same DC.
        let tasks = vec![
            spec(0, 0.0, 2.0, RegionSpec::Pod { dc: 1, pod: 0 }, true),
            spec(1, 0.0, 2.0, RegionSpec::Pod { dc: 1, pod: 1 }, true),
        ];
        let [dc, dev, obj] = run_all(&tasks);
        // DC locking serializes: second task waits 2h.
        assert!(dc.outcomes.iter().any(|o| o.waiting() > 1.9), "{dc:?}");
        // Device and object locking run them concurrently.
        assert!(dev.outcomes.iter().all(|o| o.waiting() < 1e-9));
        assert!(obj.outcomes.iter().all(|o| o.waiting() < 1e-9));
    }

    #[test]
    fn overlapping_writers_serialize_at_every_granularity() {
        let tasks = vec![
            spec(0, 0.0, 1.0, RegionSpec::Pod { dc: 1, pod: 0 }, true),
            spec(1, 0.5, 1.0, RegionSpec::Pod { dc: 1, pod: 0 }, true),
        ];
        for r in run_all(&tasks) {
            let late = r.outcomes.iter().find(|o| o.id == 1).unwrap();
            assert!((late.start - 1.0).abs() < 1e-9, "starts when first commits");
        }
    }

    #[test]
    fn readers_share_at_every_granularity() {
        let tasks = vec![
            spec(0, 0.0, 1.0, RegionSpec::Dc(1), false),
            spec(1, 0.1, 1.0, RegionSpec::Dc(1), false),
        ];
        for r in run_all(&tasks) {
            assert!(r.outcomes.iter().all(|o| o.waiting() < 1e-9), "{r:?}");
        }
    }

    #[test]
    fn containment_blocks_obj_granularity() {
        // Whole-DC writer vs pod writer inside it.
        let tasks = vec![
            spec(0, 0.0, 1.0, RegionSpec::Dc(1), true),
            spec(1, 0.1, 1.0, RegionSpec::Pod { dc: 1, pod: 2 }, true),
        ];
        let [_, _, obj] = run_all(&tasks);
        let pod_task = obj.outcomes.iter().find(|o| o.id == 1).unwrap();
        assert!((pod_task.start - 1.0).abs() < 1e-9, "{pod_task:?}");
    }

    #[test]
    fn queue_timeline_and_metrics_recorded() {
        let tasks = vec![
            spec(0, 0.0, 1.0, RegionSpec::Dc(1), true),
            spec(1, 0.1, 1.0, RegionSpec::Dc(1), true),
            spec(2, 0.2, 1.0, RegionSpec::Dc(1), true),
        ];
        let [dc, _, obj] = run_all(&tasks);
        assert!(dc.peak_queue() >= 2);
        assert!(!dc.sched_durations.is_empty());
        assert!(dc.sched_stats.invocations > 0);
        assert!(obj.tree_stats.is_some());
        assert!(dc.tree_stats.is_none());
        // Tree empties after all commits.
        assert_eq!(obj.tree_stats.unwrap().inserts, 3);
    }

    #[test]
    fn fifo_and_ldsf_both_complete() {
        let scheme = small_scheme();
        let tasks: Vec<TaskSpec> = (0..20)
            .map(|i| {
                spec(
                    i,
                    i as f64 * 0.1,
                    0.5,
                    RegionSpec::Pod {
                        dc: 1 + (i % 2) as u32,
                        pod: (i % 4) as u32,
                    },
                    i % 3 != 0,
                )
            })
            .collect();
        for policy in [Policy::Fifo, Policy::Ldsf] {
            for granularity in [Granularity::Dc, Granularity::Device, Granularity::Object] {
                let r = run(
                    &SimConfig {
                        granularity,
                        policy,
                        scheme,
                        split_mode: SplitMode::Split,
                    },
                    &tasks,
                );
                assert_eq!(r.outcomes.len(), 20, "{granularity:?} {policy:?}");
            }
        }
    }

    #[test]
    fn determinism() {
        let tasks: Vec<TaskSpec> = (0..30)
            .map(|i| {
                spec(
                    i,
                    i as f64 * 0.05,
                    0.3,
                    RegionSpec::Pod {
                        dc: 1,
                        pod: (i % 3) as u32,
                    },
                    true,
                )
            })
            .collect();
        let cfg = SimConfig {
            granularity: Granularity::Object,
            policy: Policy::Ldsf,
            scheme: small_scheme(),
            split_mode: SplitMode::Split,
        };
        let a = run(&cfg, &tasks);
        let b = run(&cfg, &tasks);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.completion, y.completion);
        }
    }
}
