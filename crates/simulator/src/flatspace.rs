//! A flat lock space: disjoint lockable objects with no containment.
//!
//! Used for the paper's two fixed-granularity baselines: per-datacenter
//! locks (16 objects) and per-device locks (~141k objects). Waits-for
//! edges are maintained incrementally so that LDSF dependency-set
//! computation stays tractable at device granularity, and a dirty set keeps
//! each SCHED invocation proportional to the lock state that actually
//! changed (a request can only become grantable when a lock on its own
//! object is released).

use occam_objtree::{LockMode, LockRequest, TaskId};
use occam_sched::LockSpace;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A flat space of disjoint lock objects identified by `u32`.
#[derive(Debug, Default)]
pub struct FlatSpace {
    holders: HashMap<u32, Vec<(TaskId, LockMode)>>,
    waiters: HashMap<u32, Vec<LockRequest>>,
    granted_of: HashMap<TaskId, Vec<u32>>,
    waiting_of: HashMap<TaskId, Vec<u32>>,
    /// Objects whose lock state changed since the last `clear_dirty`.
    dirty: BTreeSet<u32>,
    /// `(waiter, holder) → number of objects where holder's lock conflicts
    /// with waiter's pending request`.
    edge_counts: HashMap<(TaskId, TaskId), u32>,
    /// Objects with any holder or waiter (Figure 10b metric).
    active: HashSet<u32>,
}

impl FlatSpace {
    /// Creates an empty space.
    pub fn new() -> FlatSpace {
        FlatSpace::default()
    }

    fn bump_edge(&mut self, waiter: TaskId, holder: TaskId, delta: i64) {
        let e = self.edge_counts.entry((waiter, holder)).or_insert(0);
        let v = *e as i64 + delta;
        debug_assert!(v >= 0, "edge count underflow");
        if v <= 0 {
            self.edge_counts.remove(&(waiter, holder));
        } else {
            *e = v as u32;
        }
    }

    /// Enqueues a lock request. Duplicate requests and requests on objects
    /// the task already holds are ignored.
    pub fn request(&mut self, task: TaskId, obj: u32, mode: LockMode, arrival: u64, urgent: bool) {
        if self
            .holders
            .get(&obj)
            .is_some_and(|h| h.iter().any(|&(t, _)| t == task))
            || self
                .waiters
                .get(&obj)
                .is_some_and(|w| w.iter().any(|r| r.task == task))
        {
            return;
        }
        // New conflicting edges against current holders.
        if let Some(holders) = self.holders.get(&obj) {
            let conflicting: Vec<TaskId> = holders
                .iter()
                .filter(|&&(h, m)| h != task && !mode.compatible(m))
                .map(|&(h, _)| h)
                .collect();
            for h in conflicting {
                self.bump_edge(task, h, 1);
            }
        }
        self.waiters.entry(obj).or_default().push(LockRequest {
            task,
            mode,
            arrival,
            urgent,
        });
        self.waiting_of.entry(task).or_default().push(obj);
        self.dirty.insert(obj);
        self.active.insert(obj);
    }

    /// Releases every lock held or requested by `task` (strict 2PL).
    /// Returns the objects whose state changed.
    pub fn release_task(&mut self, task: TaskId) -> Vec<u32> {
        let held = self.granted_of.remove(&task).unwrap_or_default();
        let waited = self.waiting_of.remove(&task).unwrap_or_default();
        for &obj in &held {
            if let Some(h) = self.holders.get_mut(&obj) {
                // Remaining waiters on obj lose their edge toward this task
                // (handled below by the blanket edge removal).
                h.retain(|&(t, _)| t != task);
                if h.is_empty() {
                    self.holders.remove(&obj);
                }
            }
        }
        for &obj in &waited {
            if let Some(w) = self.waiters.get_mut(&obj) {
                w.retain(|r| r.task != task);
                if w.is_empty() {
                    self.waiters.remove(&obj);
                }
            }
        }
        // All edges involving the task disappear: as holder (its locks are
        // gone) and as waiter (its requests are cancelled).
        self.edge_counts.retain(|&(w, h), _| w != task && h != task);
        let mut touched = held;
        touched.extend(waited);
        touched.sort_unstable();
        touched.dedup();
        for &obj in &touched {
            self.dirty.insert(obj);
            if !self.holders.contains_key(&obj) && !self.waiters.contains_key(&obj) {
                self.active.remove(&obj);
            }
        }
        touched
    }

    /// Clears the dirty set (the engine calls this after each SCHED).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Number of tasks currently waiting on at least one object.
    pub fn waiting_task_count(&self) -> usize {
        self.waiting_of.len()
    }
}

impl LockSpace for FlatSpace {
    type Obj = u32;

    fn objects_with_waiters(&self) -> Vec<u32> {
        // Only dirty objects can admit new grants.
        self.dirty
            .iter()
            .filter(|o| self.waiters.contains_key(o))
            .copied()
            .collect()
    }

    fn waiters(&self, obj: u32) -> &[LockRequest] {
        self.waiters.get(&obj).map(Vec::as_slice).unwrap_or(&[])
    }

    fn holders(&self, obj: u32) -> &[(TaskId, LockMode)] {
        self.holders.get(&obj).map(Vec::as_slice).unwrap_or(&[])
    }

    fn containment(&self, obj: u32) -> Vec<u32> {
        vec![obj]
    }

    fn can_grant(&self, obj: u32, task: TaskId, mode: LockMode) -> bool {
        self.holders
            .get(&obj)
            .map(|h| h.iter().all(|&(t, m)| t == task || mode.compatible(m)))
            .unwrap_or(true)
    }

    fn grant(&mut self, obj: u32, task: TaskId) -> Option<LockMode> {
        let mode = {
            let w = self.waiters.get(&obj)?;
            w.iter().find(|r| r.task == task)?.mode
        };
        if !self.can_grant(obj, task, mode) {
            return None;
        }
        let w = self.waiters.get_mut(&obj).expect("checked above");
        w.retain(|r| r.task != task);
        if w.is_empty() {
            self.waiters.remove(&obj);
        }
        if let Some(list) = self.waiting_of.get_mut(&task) {
            list.retain(|&o| o != obj);
            if list.is_empty() {
                self.waiting_of.remove(&task);
            }
        }
        self.holders.entry(obj).or_default().push((task, mode));
        self.granted_of.entry(task).or_default().push(obj);
        // Remaining waiters that conflict with the new holder gain an edge.
        let remaining: Vec<(TaskId, LockMode)> = self
            .waiters
            .get(&obj)
            .map(|ws| ws.iter().map(|r| (r.task, r.mode)).collect())
            .unwrap_or_default();
        for (wt, wm) in remaining {
            if wt != task && !wm.compatible(mode) {
                self.bump_edge(wt, task, 1);
            }
        }
        Some(mode)
    }

    fn granted_objects_of(&self, task: TaskId) -> Vec<u32> {
        self.granted_of.get(&task).cloned().unwrap_or_default()
    }

    fn wait_edges(&self) -> Vec<(TaskId, TaskId)> {
        self.edge_counts.keys().copied().collect()
    }

    fn active_object_count(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_sched::{Policy, Scheduler};

    #[test]
    fn request_grant_release_cycle() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 7, LockMode::Exclusive, 0, false);
        assert_eq!(s.objects_with_waiters(), vec![7]);
        assert!(s.can_grant(7, TaskId(1), LockMode::Exclusive));
        assert_eq!(s.grant(7, TaskId(1)), Some(LockMode::Exclusive));
        assert_eq!(s.granted_objects_of(TaskId(1)), vec![7]);
        assert_eq!(s.active_object_count(), 1);
        let freed = s.release_task(TaskId(1));
        assert_eq!(freed, vec![7]);
        assert_eq!(s.active_object_count(), 0);
    }

    #[test]
    fn conflicting_grant_refused() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 3, LockMode::Exclusive, 0, false);
        s.grant(3, TaskId(1)).unwrap();
        s.request(TaskId(2), 3, LockMode::Shared, 1, false);
        assert!(!s.can_grant(3, TaskId(2), LockMode::Shared));
        assert_eq!(s.grant(3, TaskId(2)), None);
    }

    #[test]
    fn shared_locks_coexist() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 3, LockMode::Shared, 0, false);
        s.grant(3, TaskId(1)).unwrap();
        s.request(TaskId(2), 3, LockMode::Shared, 1, false);
        assert!(s.can_grant(3, TaskId(2), LockMode::Shared));
        s.grant(3, TaskId(2)).unwrap();
        assert_eq!(s.holders(3).len(), 2);
    }

    #[test]
    fn wait_edges_track_conflicts_incrementally() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 5, LockMode::Exclusive, 0, false);
        s.grant(5, TaskId(1)).unwrap();
        s.request(TaskId(2), 5, LockMode::Exclusive, 1, false);
        assert_eq!(s.wait_edges(), vec![(TaskId(2), TaskId(1))]);
        // Holder releases: edge disappears.
        s.release_task(TaskId(1));
        assert!(s.wait_edges().is_empty());
        // Grant to the waiter; a later waiter gains an edge to it.
        s.grant(5, TaskId(2)).unwrap();
        s.request(TaskId(3), 5, LockMode::Shared, 2, false);
        assert_eq!(s.wait_edges(), vec![(TaskId(3), TaskId(2))]);
    }

    #[test]
    fn dirty_set_limits_scheduling_scan() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 1, LockMode::Exclusive, 0, false);
        s.grant(1, TaskId(1)).unwrap();
        s.request(TaskId(2), 1, LockMode::Exclusive, 1, false);
        s.clear_dirty();
        // Nothing changed: no objects to examine.
        assert!(s.objects_with_waiters().is_empty());
        // The release dirties the object again.
        s.release_task(TaskId(1));
        assert_eq!(s.objects_with_waiters(), vec![1]);
    }

    #[test]
    fn scheduler_runs_on_flat_space() {
        let mut s = FlatSpace::new();
        let mut sched = Scheduler::new(Policy::Ldsf);
        for t in 0..3u64 {
            s.request(TaskId(t), t as u32 % 2, LockMode::Exclusive, t, false);
        }
        let grants = sched.sched(&mut s);
        // Objects 0 and 1 each grant one task; the third conflicts.
        assert_eq!(grants.len(), 2);
        assert_eq!(s.waiting_task_count(), 1);
    }

    #[test]
    fn duplicate_requests_ignored() {
        let mut s = FlatSpace::new();
        s.request(TaskId(1), 2, LockMode::Shared, 0, false);
        s.request(TaskId(1), 2, LockMode::Exclusive, 1, false);
        assert_eq!(s.waiters(2).len(), 1);
    }
}
