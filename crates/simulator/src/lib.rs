//! # occam-sim
//!
//! The discrete-event simulator behind the paper's at-scale experiments
//! (§8.1, Figures 8–11).
//!
//! The simulator runs synthesized management-task traces against three lock
//! granularities — per-datacenter, per-device, and Occam's multi-granularity
//! network objects — under both scheduling policies (FIFO and LDSF), six
//! configurations in total, exactly as the paper's simulator does. The
//! object-granularity configuration exercises the *production* object tree
//! and scheduler crates (`occam-objtree`, `occam-sched`); the simulator only
//! replaces wall-clock execution with virtual time, so scheduling-overhead
//! measurements (Figure 10) time the real code.
//!
//! # Examples
//!
//! ```
//! use occam_sim::{run, Granularity, SimConfig};
//! use occam_sched::Policy;
//! use occam_topology::ProductionScheme;
//! use occam_workload::{synthesize, TraceConfig};
//!
//! let trace = synthesize(&TraceConfig { num_tasks: 50, ..TraceConfig::default() });
//! let result = run(
//!     &SimConfig::new(Granularity::Object, Policy::Ldsf, ProductionScheme::meta_scale()),
//!     &trace,
//! );
//! assert_eq!(result.outcomes.len(), 50);
//! ```

pub mod engine;
pub mod flatspace;

pub use engine::{run, Granularity, SimConfig, SimResult, TaskOutcome};
pub use flatspace::FlatSpace;
