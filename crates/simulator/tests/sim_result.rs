//! Unit coverage for the simulator's result/statistics helpers and for
//! configuration edge cases.

use occam_sched::Policy;
use occam_sim::{run, Granularity, SimConfig, SimResult};
use occam_topology::{ProductionScheme, RegionSpec};
use occam_workload::TaskSpec;

fn spec(id: u64, arrival: f64, duration: f64, region: RegionSpec, write: bool) -> TaskSpec {
    TaskSpec {
        id,
        arrival,
        duration,
        region,
        write,
        urgent: false,
    }
}

fn scheme() -> ProductionScheme {
    ProductionScheme {
        num_dcs: 2,
        pods_per_dc: 4,
        switches_per_pod: 4,
    }
}

#[test]
fn empty_trace_produces_empty_result() {
    let r = run(
        &SimConfig::new(Granularity::Object, Policy::Ldsf, scheme()),
        &[],
    );
    assert!(r.outcomes.is_empty());
    assert_eq!(r.mean_completion(), 0.0);
    assert_eq!(r.mean_waiting(), 0.0);
    assert_eq!(r.peak_queue(), 0);
    assert_eq!(r.zero_wait_fraction(), 0.0);
    assert_eq!(r.completion_percentile(99.0), 0.0);
}

#[test]
fn single_task_statistics_are_exact() {
    let tasks = vec![spec(0, 1.5, 2.25, RegionSpec::Dc(1), true)];
    let r = run(
        &SimConfig::new(Granularity::Dc, Policy::Fifo, scheme()),
        &tasks,
    );
    let o = &r.outcomes[0];
    assert_eq!(o.arrival, 1.5);
    assert!((o.waiting()).abs() < 1e-12);
    assert!((o.completion_time() - 2.25).abs() < 1e-12);
    assert_eq!(r.zero_wait_fraction(), 1.0);
    for p in [0.0, 50.0, 100.0] {
        assert!((r.completion_percentile(p) - 2.25).abs() < 1e-12);
    }
}

#[test]
fn percentiles_are_order_statistics() {
    // Three serialized writers: completion times 1, 2, 3 hours.
    let tasks: Vec<TaskSpec> = (0..3)
        .map(|i| spec(i, 0.0, 1.0, RegionSpec::Pod { dc: 1, pod: 0 }, true))
        .collect();
    let r = run(
        &SimConfig::new(Granularity::Object, Policy::Fifo, scheme()),
        &tasks,
    );
    let mut cts: Vec<f64> = r.outcomes.iter().map(|o| o.completion_time()).collect();
    cts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(cts, vec![1.0, 2.0, 3.0]);
    assert_eq!(r.completion_percentile(0.0), 1.0);
    assert_eq!(r.completion_percentile(50.0), 2.0);
    assert_eq!(r.completion_percentile(100.0), 3.0);
    assert!((r.mean_completion() - 2.0).abs() < 1e-12);
    // Waiting: 0, 1, 2 -> zero-wait fraction 1/3.
    assert!((r.zero_wait_fraction() - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn mixed_granularity_results_share_the_same_outcome_count() {
    let tasks: Vec<TaskSpec> = (0..10)
        .map(|i| {
            spec(
                i,
                i as f64 * 0.1,
                0.5,
                RegionSpec::Pod {
                    dc: 1 + (i % 2) as u32,
                    pod: (i % 4) as u32,
                },
                i % 2 == 0,
            )
        })
        .collect();
    let results: Vec<SimResult> = [Granularity::Dc, Granularity::Device, Granularity::Object]
        .into_iter()
        .map(|g| run(&SimConfig::new(g, Policy::Ldsf, scheme()), &tasks))
        .collect();
    for r in &results {
        assert_eq!(r.outcomes.len(), 10);
        // Outcomes sorted by task id.
        assert!(r.outcomes.windows(2).all(|w| w[0].id < w[1].id));
        // Sched instrumentation present.
        assert!(!r.sched_durations.is_empty());
        assert_eq!(r.sched_durations.len(), r.active_objects.len());
    }
}

#[test]
fn same_device_set_serializes_writers() {
    let s = scheme();
    let region = RegionSpec::Devices(vec![0, 1, 2]);
    let tasks = vec![
        spec(0, 0.0, 1.0, region.clone(), true),
        spec(1, 0.1, 1.0, region, true),
    ];
    let r = run(
        &SimConfig::new(Granularity::Device, Policy::Fifo, s),
        &tasks,
    );
    let late = r.outcomes.iter().find(|o| o.id == 1).unwrap();
    assert!((late.start - 1.0).abs() < 1e-9, "second task serializes");
}
