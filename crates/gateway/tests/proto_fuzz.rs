//! Fuzz-style robustness tests for the gateway wire protocol: decoding
//! is total. Truncated, oversized, mutated, and garbage frames must
//! produce a typed [`FrameError`] or a valid message — never a panic —
//! and a live server must answer garbage with a typed error frame
//! without leaking the connection slot.

use occam_gateway::proto::{FrameError, FrameReader, RecvError, Request, Response};
use proptest::prelude::*;

/// A reader that delivers its bytes according to a schedule of chunk
/// sizes, where size 0 means "return `WouldBlock`" — the shape of a
/// non-blocking socket under the reactor's edge-triggered read loop.
struct ChoppyReader {
    data: Vec<u8>,
    pos: usize,
    schedule: Vec<usize>,
    step: usize,
}

impl std::io::Read for ChoppyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0); // clean EOF at a frame boundary
        }
        let chunk = self.schedule[self.step % self.schedule.len()];
        self.step += 1;
        if chunk == 0 {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup decodes to Ok or a typed error, never panics.
    #[test]
    fn decode_is_total_on_garbage(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&body);
        let _ = Response::decode(&body);
    }

    /// Every prefix of a valid request decodes to `Truncated` (or, for
    /// the full length, the original message) — no partial reads panic
    /// and no prefix is mistaken for a different message.
    #[test]
    fn request_prefixes_truncate_cleanly(
        workflow in "[a-z_]{0,12}",
        scope in "[a-z0-9.*]{0,16}",
        urgent in any::<bool>(),
        params in proptest::collection::vec(("[a-z]{0,6}", "[ -~]{0,10}"), 0..4),
        cut_permille in 0u32..1000,
    ) {
        let req = Request::Submit { workflow, scope, urgent, params };
        let body = req.encode();
        let cut = body.len() * cut_permille as usize / 1000;
        match Request::decode(&body[..cut]) {
            Ok(decoded) => prop_assert_eq!(decoded, req),
            Err(FrameError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "prefix produced {other:?}"),
        }
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    /// Flipping one byte of a valid response never panics and never
    /// produces an unbounded allocation (decode returns promptly).
    #[test]
    fn response_single_byte_mutations_are_safe(
        ticket in any::<u64>(),
        detail in "[ -~]{0,24}",
        idx_permille in 0u32..1000,
        flip in any::<u8>(),
    ) {
        let resp = Response::Status {
            ticket,
            phase: occam_gateway::WirePhase::Running,
            detail,
        };
        let mut body = resp.encode();
        let idx = (body.len() * idx_permille as usize / 1000) % body.len();
        body[idx] ^= flip;
        let _ = Response::decode(&body);
    }

    /// The resumable `FrameReader` under a randomized partial-read
    /// schedule — arbitrary chunk sizes interleaved with `WouldBlock`,
    /// exactly what the non-blocking reactor path produces — recovers
    /// every pipelined frame intact, in order, with no desync and no
    /// spurious error.
    #[test]
    fn frame_reader_survives_partial_read_schedules(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            1..8,
        ),
        schedule in proptest::collection::vec(0usize..17, 1..48),
    ) {
        // At least one nonzero chunk so the stream drains.
        prop_assume!(schedule.iter().any(|&c| c > 0));
        let mut wire = Vec::new();
        for body in &bodies {
            wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
            wire.extend_from_slice(body);
        }
        let mut reader = ChoppyReader { data: wire, pos: 0, schedule, step: 0 };
        let mut frames = FrameReader::new();
        let mut recovered: Vec<Vec<u8>> = Vec::new();
        loop {
            match frames.poll(&mut reader) {
                Ok(Some(body)) => recovered.push(body),
                Ok(None) => {} // WouldBlock tick: partial state retained
                Err(RecvError::Closed) => break,
                Err(other) => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        prop_assert_eq!(recovered, bodies);
    }

    /// Declared lengths beyond the caps are rejected before allocation.
    #[test]
    fn oversized_declared_lengths_rejected(tag in 0x01u8..=0x06, len in 65_537u32..=u32::MAX) {
        let mut body = vec![tag];
        body.extend_from_slice(&len.to_be_bytes());
        if let Err(e) = Request::decode(&body) {
            prop_assert!(
                matches!(
                    e,
                    FrameError::Oversized { .. }
                        | FrameError::Truncated { .. }
                        | FrameError::TooManyItems { .. }
                        | FrameError::TrailingBytes(_)
                ),
                "unexpected {e:?}"
            );
        }
    }
}

/// A server keeps serving other clients after one sends garbage: the
/// poisoned connection gets a typed error and is closed; its slot is
/// released (conn.closed catches up with conn.opened) and a fresh
/// connection still works.
#[test]
fn garbage_frame_never_leaks_connection_slot() {
    use occam_core::Runtime;
    use occam_emunet::{EmuNet, EmuService};
    use occam_gateway::{Engine, EngineConfig, GatewayClient, GatewayServer};
    use occam_netdb::{attrs, Database};
    use occam_topology::FatTree;
    use std::io::{Read as _, Write as _};
    use std::sync::Arc;

    let ft = FatTree::build(1, 4).unwrap();
    let db = Arc::new(Database::new());
    for (_, d) in ft
        .topo
        .devices()
        .filter(|(_, d)| d.role != occam_topology::Role::Host)
    {
        db.insert_device(
            &d.name,
            vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        )
        .unwrap();
    }
    let rt = Runtime::new(db, Arc::new(EmuService::new(EmuNet::from_fattree(&ft))));
    let engine = Engine::new(rt, EngineConfig::default());
    let mut server = GatewayServer::start(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let reg = server.engine().runtime().obs().clone();

    for round in 0u8..8 {
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        // Garbage body under a valid length prefix.
        let body = [0xF0 ^ round, round, 0xFF, round];
        raw.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        raw.write_all(&body).unwrap();
        raw.flush().unwrap();
        // The server answers with a typed error frame, then closes.
        let mut resp = Vec::new();
        let _ = raw.read_to_end(&mut resp);
        assert!(resp.len() >= 5, "round {round}: no error frame back");
    }

    // Wait for the per-connection threads to finish closing.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while reg.counter_value("gateway.conn.closed") < 8 {
        assert!(
            std::time::Instant::now() < deadline,
            "connection slots leaked: opened {}, closed {}",
            reg.counter_value("gateway.conn.opened"),
            reg.counter_value("gateway.conn.closed")
        );
        std::thread::yield_now();
    }
    assert!(reg.counter_value("gateway.proto.errors") >= 8);

    // A well-formed client still gets service.
    let mut client = GatewayClient::connect(&addr).unwrap();
    assert!(!client.list().unwrap().is_empty());
    server.shutdown();
    assert_eq!(
        reg.counter_value("gateway.conn.opened"),
        reg.counter_value("gateway.conn.closed"),
        "every opened connection must be closed after shutdown"
    );
}
