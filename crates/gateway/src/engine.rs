//! The gateway execution engine: admission control in front of the
//! runtime's bounded worker pool.
//!
//! The engine is the piece that turns the library runtime into a
//! *service*. It owns the admission state machine:
//!
//! ```text
//!            submit
//!              │
//!   unknown ◄──┼──► bad scope          (rejected, typed error)
//!              │
//!       queued ≥ cap ──► Busy{retry_after_ms}   (backpressure)
//!              │
//!           Queued ──► Running ──► Completed | Aborted | Cancelled
//!                        ▲                (terminal, kept for STATUS)
//!                 cancel ┘ (cooperative, at task checkpoints)
//! ```
//!
//! Admission is bounded: at most `queue_cap` admitted-but-unfinished jobs
//! may be queued ahead of the `pool_size` workers. Beyond that the client
//! gets `Busy` with a retry hint instead of an unbounded backlog — the
//! management plane prefers shedding load to queueing it invisibly.
//!
//! Job records are bounded too: terminal records are retained for STATUS
//! polling only up to `terminal_retain` entries, after which the oldest
//! are evicted (a STATUS on an evicted ticket answers `Unknown`). A
//! long-lived gateway therefore holds at most
//! `queue_cap + pool_size + terminal_retain` records, not one per
//! lifetime submission.

use crate::catalog::{Catalog, CatalogEntry, WorkflowSpec};
use crate::proto::{ErrorCode, WirePhase};
use occam_core::{CancelToken, PooledJob, RetryPolicy, Runtime, TaskError, TaskReport, TaskState};
use occam_obs::{Counter, Histogram, Registry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard ceiling on admission shards: ticket values reserve four low
/// bits (`SHARD_BITS`) for shard routing.
pub const MAX_ENGINE_SHARDS: usize = 16;
/// Low bits of a ticket that carry the admission-shard index.
const SHARD_BITS: u32 = 4;

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker-pool size (concurrent task executions).
    pub pool_size: usize,
    /// Maximum admitted-but-unfinished jobs waiting for a worker, *per
    /// admission shard* (see [`EngineConfig::shards`]). With one shard —
    /// the default on small machines and everywhere the engine is driven
    /// directly rather than through the reactor — this is the same global
    /// bound as before.
    pub queue_cap: usize,
    /// Backoff hint returned in `Busy` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Maximum terminal job records kept for STATUS polling, per
    /// admission shard. Oldest terminal records beyond this are evicted
    /// and answer `Unknown`; live (queued/running) records are never
    /// evicted. Keeps a long-lived gateway's memory bounded instead of
    /// growing with every submission ever accepted.
    pub terminal_retain: usize,
    /// Retry policy applied to every admitted task: transient aborts
    /// (injected faults, connection failures, deadlock victims) are
    /// re-executed after rollback, up to the policy's attempt budget.
    /// Defaults to no retries.
    pub retry: RetryPolicy,
    /// Number of admission shards / reactor event loops. `0` (the
    /// default) resolves to `min(4, available_parallelism)`. Each reactor
    /// event-loop thread submits into its own shard, so the accept path
    /// never crosses a shared admission lock; clamped to
    /// [`MAX_ENGINE_SHARDS`].
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            pool_size: 8,
            queue_cap: 64,
            retry_after_ms: 25,
            terminal_retain: 16_384,
            retry: RetryPolicy::none(),
            shards: 0,
        }
    }
}

impl EngineConfig {
    /// The shard count this config resolves to (`0` = auto).
    pub fn resolved_shards(&self) -> usize {
        let n = if self.shards == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(4)
        } else {
            self.shards
        };
        n.clamp(1, MAX_ENGINE_SHARDS)
    }
}

/// One submission as carried by the batch admission path: the wire
/// `SUBMIT` payload, decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubmitSpec {
    /// Catalog workflow name.
    pub workflow: String,
    /// Region scope (glob over device names).
    pub scope: String,
    /// Urgent fast lane + scheduler urgent priority.
    pub urgent: bool,
    /// Workflow parameters (`key`, `value`).
    pub params: Vec<(String, String)>,
}

/// Why a submission was not admitted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubmitOutcome {
    /// Admitted; poll/cancel with this ticket.
    Accepted(u64),
    /// Admission queue full; retry after the hint (milliseconds).
    Busy(u64),
    /// Typed rejection (unknown workflow, bad scope, shutting down).
    Rejected(ErrorCode, String),
}

struct JobRecord {
    phase: WirePhase,
    detail: String,
    cancel: CancelToken,
    workflow: &'static str,
}

/// Ticket-keyed job records plus the terminal-eviction queue.
#[derive(Default)]
struct JobTable {
    records: BTreeMap<u64, JobRecord>,
    /// Tickets in the order they reached a terminal phase; the front is
    /// evicted first once more than `terminal_retain` are retained.
    terminal_order: VecDeque<u64>,
}

impl JobTable {
    /// Moves `ticket` to a terminal phase and evicts the oldest terminal
    /// records beyond `retain`. Live records are never evicted — only
    /// tickets pushed onto `terminal_order` (i.e. already terminal) are
    /// ever removed.
    fn mark_terminal(&mut self, ticket: u64, phase: WirePhase, detail: String, retain: usize) {
        if let Some(rec) = self.records.get_mut(&ticket) {
            rec.phase = phase;
            rec.detail = detail;
            self.terminal_order.push_back(ticket);
        }
        while self.terminal_order.len() > retain {
            let old = self
                .terminal_order
                .pop_front()
                .expect("len > retain >= 0 implies non-empty");
            self.records.remove(&old);
        }
    }
}

struct EngineObs {
    accepted: Counter,
    rejected: Counter,
    unknown: Counter,
    completed: Counter,
    aborted: Counter,
    cancelled: Counter,
    cancel_requests: Counter,
    queue_wait_ns: Histogram,
    e2e_ns: Histogram,
    queue_depth: Histogram,
}

impl EngineObs {
    fn bind(reg: &Registry) -> EngineObs {
        EngineObs {
            accepted: reg.counter("gateway.submit.accepted"),
            rejected: reg.counter("gateway.submit.rejected"),
            unknown: reg.counter("gateway.submit.unknown"),
            completed: reg.counter("gateway.tasks.completed"),
            aborted: reg.counter("gateway.tasks.aborted"),
            cancelled: reg.counter("gateway.tasks.cancelled"),
            cancel_requests: reg.counter("gateway.cancel.requests"),
            queue_wait_ns: reg.histogram("gateway.queue_wait_ns"),
            e2e_ns: reg.histogram("gateway.e2e_ns"),
            queue_depth: reg.histogram("gateway.queue_depth"),
        }
    }
}

/// Per-shard admission state: its own job table, queue-depth counter,
/// and ticket sequence, so concurrent reactor event loops admit work
/// without sharing a lock. Tickets encode their shard in the low
/// [`SHARD_BITS`] bits, so STATUS/CANCEL from *any* connection route to
/// the owning shard.
struct EngineShard {
    jobs: Mutex<JobTable>,
    /// Admitted-but-unfinished jobs not yet picked up by a worker.
    queued: AtomicUsize,
    next_seq: AtomicU64,
}

struct EngineInner {
    rt: Runtime,
    catalog: Catalog,
    cfg: EngineConfig,
    shards: Vec<EngineShard>,
    accepting: AtomicBool,
    obs: EngineObs,
}

/// `ticket → shard index` (the low bits carry the shard).
fn shard_of(ticket: u64) -> usize {
    (ticket & ((1 << SHARD_BITS) - 1)) as usize
}

/// `(sequence, shard) → ticket`.
fn make_ticket(seq: u64, shard: usize) -> u64 {
    (seq << SHARD_BITS) | shard as u64
}

/// The admission-controlled execution engine. Cheap to clone; all clones
/// share state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Builds an engine over `rt` with the standard catalog, sizing the
    /// runtime's worker pool to `cfg.pool_size`. The pool size only takes
    /// effect if the runtime's pool has not started yet.
    pub fn new(rt: Runtime, cfg: EngineConfig) -> Engine {
        rt.configure_pool(cfg.pool_size);
        let obs = EngineObs::bind(rt.obs());
        // Touch the connection/frame/reactor instruments so the full
        // gateway metric family exists from boot (DESIGN.md §9 contract).
        for name in [
            "gateway.conn.opened",
            "gateway.conn.closed",
            "gateway.frames.rx",
            "gateway.frames.tx",
            "gateway.proto.errors",
            "gateway.reactor.events",
            "gateway.reactor.wouldblock",
        ] {
            rt.obs().counter(name);
        }
        rt.obs().histogram("gateway.reactor.batch_len");
        let nshards = cfg.resolved_shards();
        Engine {
            inner: Arc::new(EngineInner {
                rt,
                catalog: Catalog::standard(),
                cfg,
                shards: (0..nshards)
                    .map(|_| EngineShard {
                        jobs: Mutex::new(JobTable::default()),
                        queued: AtomicUsize::new(0),
                        next_seq: AtomicU64::new(1),
                    })
                    .collect(),
                accepting: AtomicBool::new(true),
                obs,
            }),
        }
    }

    /// Number of admission shards (== reactor event loops).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The underlying runtime (shared observability registry lives here).
    pub fn runtime(&self) -> &Runtime {
        &self.inner.rt
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Submits a catalog workflow. Validates the name and scope, applies
    /// admission control, and hands the built program to the worker pool.
    /// Single-item wrapper over [`Engine::submit_batch`] on shard 0.
    pub fn submit(
        &self,
        workflow: &str,
        scope: &str,
        urgent: bool,
        params: &[(String, String)],
    ) -> SubmitOutcome {
        self.submit_batch(
            0,
            vec![SubmitSpec {
                workflow: workflow.to_string(),
                scope: scope.to_string(),
                urgent,
                params: params.to_vec(),
            }],
        )
        .pop()
        .expect("one outcome per spec")
    }

    /// Batch admission on one shard: validates every spec, reserves queue
    /// slots for as many admissible submissions as the shard's cap
    /// allows (earlier specs win; the rest answer `Busy`), inserts all
    /// job records under a single job-table lock, and enqueues all
    /// admitted programs into the worker pool under a single pool lock.
    ///
    /// Outcomes are returned in spec order and ticket order equals spec
    /// order among accepted items — the wire contract pipelined clients
    /// rely on. `shard` is taken modulo the shard count, so callers can
    /// pass a reactor event-loop index directly.
    ///
    /// Scope validation goes through the runtime's shared
    /// [`occam_regex::PatternCache`]: compiling a scope glob costs
    /// ~200 µs, ~50× the rest of the admission path, so recompiling per
    /// submission would cap the whole gateway at ~5k submissions/s.
    pub fn submit_batch(&self, shard: usize, specs: Vec<SubmitSpec>) -> Vec<SubmitOutcome> {
        let inner = &self.inner;
        let s = shard % inner.shards.len();
        let sh = &inner.shards[s];
        let accepting = inner.accepting.load(Ordering::SeqCst);

        // Validation pass: each spec becomes either a ready-to-admit
        // entry or a typed rejection.
        enum Item<'a> {
            Ready(&'a CatalogEntry, SubmitSpec),
            Rejected(SubmitOutcome),
        }
        let items: Vec<Item> = specs
            .into_iter()
            .map(|spec| {
                if !accepting {
                    inner.obs.rejected.inc();
                    return Item::Rejected(SubmitOutcome::Rejected(
                        ErrorCode::ShuttingDown,
                        "gateway is draining; no new work admitted".into(),
                    ));
                }
                let Some(entry) = inner.catalog.get(&spec.workflow) else {
                    inner.obs.unknown.inc();
                    return Item::Rejected(SubmitOutcome::Rejected(
                        ErrorCode::UnknownWorkflow,
                        format!(
                            "unknown workflow {:?}; use LIST for the catalog",
                            spec.workflow
                        ),
                    ));
                };
                if let Err(e) = inner.rt.pattern_cache().get_glob(&spec.scope) {
                    inner.obs.rejected.inc();
                    return Item::Rejected(SubmitOutcome::Rejected(
                        ErrorCode::BadScope,
                        format!("bad scope {:?}: {e}", spec.scope),
                    ));
                }
                // SAFETY-free lifetime note: catalog entries live as long
                // as the engine; the reference is re-borrowed per call.
                Item::Ready(entry, spec)
            })
            .collect();

        // Admission: reserve queue slots for as many admissible specs as
        // fit under the per-shard cap, in one atomic update.
        let admissible = items
            .iter()
            .filter(|i| matches!(i, Item::Ready(..)))
            .count();
        let cap = inner.cfg.queue_cap;
        let mut granted;
        let mut depth = sh.queued.load(Ordering::SeqCst);
        loop {
            granted = admissible.min(cap.saturating_sub(depth));
            if granted == 0 {
                break;
            }
            match sh.queued.compare_exchange(
                depth,
                depth + granted,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(now) => depth = now,
            }
        }
        if granted > 0 {
            inner.obs.queue_depth.record((depth + granted) as u64);
        }
        let seq0 = sh.next_seq.fetch_add(granted as u64, Ordering::SeqCst);

        // Record insertion (one lock for the whole batch) and pool-job
        // construction, preserving spec order.
        let mut outcomes = Vec::with_capacity(items.len());
        let mut jobs: Vec<(bool, PooledJob)> = Vec::with_capacity(granted);
        {
            let mut table = sh.jobs.lock();
            let mut admitted = 0u64;
            for item in items {
                match item {
                    Item::Rejected(outcome) => outcomes.push(outcome),
                    Item::Ready(..) if admitted as usize >= granted => {
                        inner.obs.rejected.inc();
                        outcomes.push(SubmitOutcome::Busy(inner.cfg.retry_after_ms));
                    }
                    Item::Ready(entry, spec) => {
                        let ticket = make_ticket(seq0 + admitted, s);
                        admitted += 1;
                        let cancel = CancelToken::new();
                        let program = inner
                            .catalog
                            .build(entry.name, WorkflowSpec::new(&spec.scope, &spec.params))
                            .expect("entry existence checked above");
                        table.records.insert(
                            ticket,
                            JobRecord {
                                phase: WirePhase::Queued,
                                detail: String::new(),
                                cancel: cancel.clone(),
                                workflow: entry.name,
                            },
                        );
                        let engine = self.clone();
                        let name = format!("gw.{}.{}", entry.name, ticket);
                        let urgent = spec.urgent;
                        let retry = inner.cfg.retry.clone();
                        let isolation = entry.isolation;
                        let admitted_at = Instant::now();
                        jobs.push((
                            urgent,
                            Box::new(move |rt: &Runtime| {
                                let inner = &engine.inner;
                                let sh = &inner.shards[shard_of(ticket)];
                                inner
                                    .obs
                                    .queue_wait_ns
                                    .record_duration(admitted_at.elapsed());
                                sh.queued.fetch_sub(1, Ordering::SeqCst);
                                {
                                    let mut jobs = sh.jobs.lock();
                                    if let Some(rec) = jobs.records.get_mut(&ticket) {
                                        rec.phase = WirePhase::Running;
                                    }
                                }
                                let report = rt
                                    .task(name.as_str())
                                    .urgency(urgent)
                                    .cancel_token(cancel)
                                    .retry(retry)
                                    .isolation(isolation)
                                    .run(|ctx| program(ctx));
                                inner.obs.e2e_ns.record_duration(admitted_at.elapsed());
                                let (phase, detail) = engine.settle(&report);
                                sh.jobs.lock().mark_terminal(
                                    ticket,
                                    phase,
                                    detail,
                                    inner.cfg.terminal_retain,
                                );
                            }),
                        ));
                        outcomes.push(SubmitOutcome::Accepted(ticket));
                    }
                }
            }
        }
        inner.obs.accepted.add(granted as u64);
        inner.rt.spawn_pooled_batch(jobs);
        outcomes
    }

    /// The single report → wire-phase conversion: maps a final
    /// [`TaskReport`] to its `(phase, detail)` pair and bumps the matching
    /// terminal counter. Every terminal job record goes through here so
    /// error text and counters cannot drift apart.
    fn settle(&self, report: &TaskReport) -> (WirePhase, String) {
        let obs = &self.inner.obs;
        match (report.state, &report.error) {
            (TaskState::Completed, _) => {
                obs.completed.inc();
                (WirePhase::Completed, String::new())
            }
            (_, Some(TaskError::Cancelled)) => {
                obs.cancelled.inc();
                (WirePhase::Cancelled, "cancelled at a checkpoint".into())
            }
            (_, Some(err)) => {
                obs.aborted.inc();
                (WirePhase::Aborted, err.to_string())
            }
            (_, None) => {
                obs.aborted.inc();
                (WirePhase::Aborted, "aborted without error detail".into())
            }
        }
    }

    /// Looks up the lifecycle phase of a ticket. Terminal records are
    /// retained for `terminal_retain` completions, after which the
    /// ticket answers `Unknown`.
    pub fn status(&self, ticket: u64) -> (WirePhase, String) {
        let shard = shard_of(ticket);
        if shard >= self.inner.shards.len() {
            return (WirePhase::Unknown, String::new());
        }
        let jobs = self.inner.shards[shard].jobs.lock();
        match jobs.records.get(&ticket) {
            Some(rec) => (rec.phase, rec.detail.clone()),
            None => (WirePhase::Unknown, String::new()),
        }
    }

    /// Requests cooperative cancellation of a ticket. Returns `false` if
    /// the ticket is unknown or already terminal. Cancellation takes
    /// effect at the task's next checkpoint (lock acquisition or stateful
    /// operation); blocked lock waiters are woken to observe it.
    pub fn cancel(&self, ticket: u64) -> bool {
        self.inner.obs.cancel_requests.inc();
        let shard = shard_of(ticket);
        if shard >= self.inner.shards.len() {
            return false;
        }
        let token = {
            let jobs = self.inner.shards[shard].jobs.lock();
            match jobs.records.get(&ticket) {
                Some(rec) if !rec.phase.is_terminal() => Some(rec.cancel.clone()),
                _ => None,
            }
        };
        match token {
            Some(token) => {
                token.cancel();
                self.inner.rt.wake_lock_waiters();
                true
            }
            None => false,
        }
    }

    /// The workflow catalog as `(name, description, read_only)` rows.
    pub fn list(&self) -> Vec<(String, String, bool)> {
        self.inner
            .catalog
            .entries()
            .iter()
            .map(|e| (e.name.to_string(), e.description.to_string(), e.read_only))
            .collect()
    }

    /// The shared observability registry rendered as JSON.
    pub fn metrics_json(&self) -> String {
        self.inner.rt.obs().to_json()
    }

    /// Count of admitted-but-unfinished jobs waiting for a worker,
    /// summed over all admission shards.
    pub fn queued(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.queued.load(Ordering::SeqCst))
            .sum()
    }

    /// Whether every known job is in a terminal phase. (Evicted records
    /// were terminal by construction, so eviction never flips this.)
    pub fn all_terminal(&self) -> bool {
        self.inner.shards.iter().all(|s| {
            s.jobs
                .lock()
                .records
                .values()
                .all(|r| r.phase.is_terminal())
        })
    }

    /// Per-workflow phase counts over the *retained* records — all live
    /// jobs plus the most recent `terminal_retain` terminal ones:
    /// `(workflow, phase) → count`. Lifetime totals live in the
    /// `gateway.tasks.*` counters.
    pub fn terminal_breakdown(&self) -> BTreeMap<(String, &'static str), u64> {
        let mut out: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for shard in &self.inner.shards {
            let jobs = shard.jobs.lock();
            for rec in jobs.records.values() {
                let phase = match rec.phase {
                    WirePhase::Completed => "completed",
                    WirePhase::Aborted => "aborted",
                    WirePhase::Cancelled => "cancelled",
                    WirePhase::Queued => "queued",
                    WirePhase::Running => "running",
                    WirePhase::Unknown => "unknown",
                };
                *out.entry((rec.workflow.to_string(), phase)).or_insert(0) += 1;
            }
        }
        out
    }

    /// Graceful drain-then-shutdown: stop admitting, then block until the
    /// worker pool is quiescent. Idempotent.
    pub fn shutdown(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.rt.drain_pool();
    }

    /// Whether the engine still admits new submissions.
    pub fn accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_emunet::{EmuNet, EmuService};
    use occam_netdb::{attrs, Database};
    use occam_regex::Pattern;
    use occam_topology::FatTree;

    fn tiny_engine(cfg: EngineConfig) -> Engine {
        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
            )
            .unwrap();
        }
        let service = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        Engine::new(Runtime::new(db, service), cfg)
    }

    fn wait_terminal(engine: &Engine, ticket: u64) -> (WirePhase, String) {
        loop {
            let (phase, detail) = engine.status(ticket);
            if phase.is_terminal() || phase == WirePhase::Unknown {
                return (phase, detail);
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn status_audit_served_from_follower_replica() {
        use occam_netdb::{ReplicaConfig, ReplicaSet};
        use std::time::Duration;

        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
            )
            .unwrap();
        }
        let service = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let runtime = Runtime::new(Arc::clone(&db), service);
        // Replicate the database and route scoped reads through the set:
        // the audit's `view()` snapshot is then served by a caught-up
        // follower, not the leader.
        let set = ReplicaSet::start(Arc::clone(&db), ReplicaConfig::default());
        assert!(set.wait_converged(Duration::from_secs(10)));
        runtime.attach_read_router(set.router());

        let engine = Engine::new(runtime, EngineConfig::default());
        let out = engine.submit("status_audit", "dc01.pod00.*", false, &[]);
        let SubmitOutcome::Accepted(ticket) = out else {
            panic!("expected acceptance, got {out:?}");
        };
        let (phase, detail) = wait_terminal(&engine, ticket);
        assert_eq!(phase, WirePhase::Completed, "{detail}");
        assert!(
            set.obs().counter_value("netdb.repl.reads.follower") >= 1,
            "audit view was not served from a follower"
        );
        engine.runtime().detach_read_router();
        set.shutdown();
    }

    #[test]
    fn submit_runs_to_completion_and_mutates_state() {
        let engine = tiny_engine(EngineConfig::default());
        let out = engine.submit("drain", "dc01.pod01.*", false, &[]);
        let SubmitOutcome::Accepted(ticket) = out else {
            panic!("expected acceptance, got {out:?}");
        };
        let (phase, detail) = wait_terminal(&engine, ticket);
        assert_eq!(phase, WirePhase::Completed, "{detail}");
        let statuses = engine
            .runtime()
            .db()
            .get_attr(
                &Pattern::from_glob("dc01.pod01.*").unwrap(),
                attrs::DEVICE_STATUS,
            )
            .unwrap();
        assert!(!statuses.is_empty());
        for (dev, v) in &statuses {
            assert_eq!(
                v.as_str(),
                Some(attrs::STATUS_UNDER_MAINTENANCE),
                "device {dev}"
            );
        }
        assert_eq!(
            engine
                .runtime()
                .obs()
                .counter_value("gateway.tasks.completed"),
            1
        );
    }

    #[test]
    fn unknown_workflow_and_bad_scope_rejected() {
        let engine = tiny_engine(EngineConfig::default());
        assert!(matches!(
            engine.submit("nope", "dc01.*", false, &[]),
            SubmitOutcome::Rejected(ErrorCode::UnknownWorkflow, _)
        ));
        assert!(matches!(
            engine.submit("drain", "dc01.[", false, &[]),
            SubmitOutcome::Rejected(ErrorCode::BadScope, _)
        ));
        assert_eq!(
            engine
                .runtime()
                .obs()
                .counter_value("gateway.submit.unknown"),
            1
        );
    }

    #[test]
    fn queue_full_answers_busy() {
        let engine = tiny_engine(EngineConfig {
            pool_size: 1,
            queue_cap: 1,
            retry_after_ms: 7,
            ..EngineConfig::default()
        });
        // Fill the single worker and the single queue slot with jobs that
        // block on an attribute the test controls via lock contention:
        // simplest is a long chain of status audits over the same scope.
        let mut accepted = 0;
        let mut busy = 0;
        for _ in 0..64 {
            match engine.submit("status_audit", "dc01.*", false, &[]) {
                SubmitOutcome::Accepted(_) => accepted += 1,
                SubmitOutcome::Busy(ms) => {
                    assert_eq!(ms, 7);
                    busy += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(accepted >= 1);
        // With cap 1 the burst must shed at least once unless every job
        // drained between submissions; 64 back-to-back makes that
        // overwhelmingly unlikely, but tolerate it to avoid flakiness.
        let _ = busy;
        engine.shutdown();
        assert!(engine.all_terminal());
    }

    #[test]
    fn terminal_records_are_evicted_beyond_retention() {
        let engine = tiny_engine(EngineConfig {
            pool_size: 2,
            queue_cap: 8,
            retry_after_ms: 1,
            terminal_retain: 3,
            ..EngineConfig::default()
        });
        let mut tickets = Vec::new();
        for _ in 0..6 {
            loop {
                match engine.submit("status_audit", "dc01.*", false, &[]) {
                    SubmitOutcome::Accepted(t) => {
                        tickets.push(t);
                        // Serialize: wait for terminal before the next
                        // submission so eviction order is deterministic.
                        wait_terminal(&engine, t);
                        break;
                    }
                    SubmitOutcome::Busy(_) => std::thread::yield_now(),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        // Only the 3 most recent terminal records survive; older tickets
        // answer Unknown and cancel() on them reports not-live.
        for &old in &tickets[..3] {
            assert_eq!(engine.status(old).0, WirePhase::Unknown, "ticket {old}");
            assert!(!engine.cancel(old));
        }
        for &recent in &tickets[3..] {
            assert_eq!(engine.status(recent).0, WirePhase::Completed);
        }
        assert!(engine.all_terminal());
        let retained: u64 = engine.terminal_breakdown().values().sum();
        assert_eq!(retained, 3);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains() {
        let engine = tiny_engine(EngineConfig::default());
        let SubmitOutcome::Accepted(t) =
            engine.submit("device_maintenance", "dc01.pod02.*", false, &[])
        else {
            panic!("expected acceptance");
        };
        engine.shutdown();
        assert!(engine.status(t).0.is_terminal());
        assert!(matches!(
            engine.submit("drain", "dc01.*", false, &[]),
            SubmitOutcome::Rejected(ErrorCode::ShuttingDown, _)
        ));
    }

    #[test]
    fn cancel_before_start_yields_cancelled_phase() {
        let engine = tiny_engine(EngineConfig {
            pool_size: 1,
            queue_cap: 8,
            retry_after_ms: 1,
            ..EngineConfig::default()
        });
        // Occupy the single worker with a workflow long enough to let us
        // cancel the queued one behind it.
        let SubmitOutcome::Accepted(_front) = engine.submit(
            "firmware_upgrade",
            "dc01.pod01.*",
            false,
            &[("version".into(), "v9".into())],
        ) else {
            panic!("expected acceptance");
        };
        let SubmitOutcome::Accepted(victim) = engine.submit("drain", "dc01.pod02.*", false, &[])
        else {
            panic!("expected acceptance");
        };
        // Cancel may race the victim starting; both Cancelled (never ran
        // or hit a checkpoint) and Completed (won the race) are legal —
        // but if cancel() returned true before it went terminal, the
        // token is set and a still-queued victim must end Cancelled.
        engine.cancel(victim);
        let (phase, _) = {
            loop {
                let (p, d) = engine.status(victim);
                if p.is_terminal() {
                    break (p, d);
                }
                std::thread::yield_now();
            }
        };
        assert!(
            phase == WirePhase::Cancelled || phase == WirePhase::Completed,
            "unexpected phase {phase:?}"
        );
        engine.shutdown();
    }
}
