//! # occam-gateway
//!
//! A concurrent management-plane **service frontend** for the Occam
//! runtime (paper §7 deployment model: operators submit management
//! programs to a shared runtime, they do not link it into their tools).
//!
//! The crate has four layers:
//!
//! - [`catalog`] — named, parameterized management workflows (drain,
//!   firmware upgrade, config push, …) built over the emulated device
//!   functions. Clients invoke by name, like stored procedures.
//! - [`proto`] — a length-prefixed binary wire protocol with total,
//!   typed decoding (`SUBMIT`/`STATUS`/`CANCEL`/`LIST`/`METRICS`/
//!   `SHUTDOWN`).
//! - [`engine`] — admission control: a bounded queue in front of the
//!   runtime's fixed worker pool, sharded so each reactor shard admits
//!   without cross-shard contention. Queue-full answers
//!   `Busy{retry_after}` instead of building invisible backlog; urgent
//!   submissions take the pool fast lane *and* the scheduler's urgent
//!   priority; cancellation is cooperative at task checkpoints.
//! - [`server`]/[`client`] — a `std::net` TCP server driven by a
//!   sharded edge-triggered epoll reactor (DESIGN.md §13): a handful
//!   of event-loop threads serve thousands of non-blocking
//!   connections, decoding pipelined SUBMIT batches per readiness
//!   event. The blocking client (used by the load generator and tests)
//!   pipelines with [`GatewayClient::submit_batch`].
//!
//! Everything reports into the runtime's shared observability registry
//! under the `gateway.*` metric family (DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use occam_gateway::{Engine, EngineConfig, GatewayClient, GatewayServer, SubmitReply};
//! use occam_core::Runtime;
//! use occam_emunet::{EmuNet, EmuService};
//! use occam_netdb::{attrs, Database};
//! use occam_topology::FatTree;
//! use std::sync::Arc;
//!
//! // An emulated deployment...
//! let ft = FatTree::build(1, 4).unwrap();
//! let db = Arc::new(Database::new());
//! for (_, d) in ft.topo.devices().filter(|(_, d)| d.role != occam_topology::Role::Host) {
//!     db.insert_device(&d.name, vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())]).unwrap();
//! }
//! let rt = Runtime::new(db, Arc::new(EmuService::new(EmuNet::from_fattree(&ft))));
//!
//! // ...served over TCP on an ephemeral port.
//! let engine = Engine::new(rt, EngineConfig::default());
//! let mut server = GatewayServer::start(engine, "127.0.0.1:0").unwrap();
//!
//! let mut client = GatewayClient::connect(&server.local_addr().to_string()).unwrap();
//! let reply = client.submit("drain", "dc01.pod00.*", false, &[]).unwrap();
//! let SubmitReply::Accepted(ticket) = reply else { panic!("{reply:?}") };
//! loop {
//!     let (phase, detail) = client.status(ticket).unwrap();
//!     if phase.is_terminal() {
//!         assert_eq!(phase, occam_gateway::WirePhase::Completed, "{detail}");
//!         break;
//!     }
//! }
//! server.shutdown();
//! ```

pub mod catalog;
pub mod client;
pub mod engine;
pub mod proto;
pub(crate) mod reactor;
pub mod server;

pub use catalog::{Catalog, CatalogEntry, Program, WorkflowSpec};
pub use client::{ClientError, GatewayClient, SubmitReply};
pub use engine::{Engine, EngineConfig, SubmitOutcome, SubmitSpec, MAX_ENGINE_SHARDS};
pub use proto::{
    ErrorCode, FrameError, FrameReader, Request, Response, WirePhase, MAX_FRAME, MAX_METRICS_STR,
};
pub use server::GatewayServer;
