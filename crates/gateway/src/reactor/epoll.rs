//! A minimal, std-only epoll wrapper.
//!
//! The workspace has no `libc` crate, but `std` on Linux already links
//! the C library, so the four syscall entry points the reactor needs are
//! declared directly as `extern "C"` symbols. Everything is wrapped in
//! owned-fd types ([`Epoll`], [`WakeFd`]) so the unsafe surface stays
//! inside this module: callers see safe methods returning
//! `std::io::Result`.

use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};

// Linux ABI constants (asm-generic values; identical on x86_64/aarch64).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_MOD: c_int = 3;

/// Readability interest/event bit.
pub const EPOLLIN: u32 = 0x001;
/// Writability interest/event bit.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition event bit (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup event bit (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (must be requested explicitly).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered mode.
pub const EPOLLET: u32 = 1 << 31;
/// Wake at most one of the epoll instances watching this fd (Linux
/// ≥ 4.5); avoids a thundering herd on the shared listener.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`. Packed on x86_64 (kernel ABI quirk); the
/// natural layout everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bit set (`EPOLLIN | …`).
    pub events: u32,
    /// The caller's token registered with [`Epoll::add`].
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event (used to size the wait buffer).
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The ready-event bits (copies out of the possibly-packed field).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The registration token (copies out of the possibly-packed field).
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> std::io::Result<c_int> {
    if ret < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> std::io::Result<Epoll> {
        // SAFETY: plain syscall; the returned fd is immediately owned.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for `events`, delivering `token` back on readiness.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Waits up to `timeout_ms` for readiness events (`-1` blocks,
    /// `0` polls). Returns the filled prefix of `buf`. `EINTR` retries
    /// internally so callers never see a spurious error.
    pub fn wait<'a>(
        &self,
        buf: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> std::io::Result<&'a [EpollEvent]> {
        loop {
            // SAFETY: buf is a valid, writable epoll_event array.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms as c_int,
                )
            };
            if n >= 0 {
                return Ok(&buf[..n as usize]);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A wakeup channel for an epoll loop: an `eventfd` registered in the
/// instance. [`WakeFd::wake`] is cheap and thread-safe; the loop calls
/// [`WakeFd::drain`] when the token fires.
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a non-blocking eventfd.
    pub fn new() -> std::io::Result<WakeFd> {
        // SAFETY: plain syscall; the returned fd is immediately owned.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for registration in an [`Epoll`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the owning loop (adds 1 to the eventfd counter). Writes
    /// through a dup so the fd stays owned here; the dup closes on drop.
    pub fn wake(&self) {
        use std::io::Write;
        if let Ok(dup) = self.fd.try_clone() {
            let mut f = std::fs::File::from(dup);
            let _ = f.write_all(&1u64.to_ne_bytes());
        }
    }

    /// Clears the pending wake count (non-blocking).
    pub fn drain(&self) {
        use std::io::Read;
        if let Ok(dup) = self.fd.try_clone() {
            let mut f = std::fs::File::from(dup);
            let mut buf = [0u8; 8];
            let _ = f.read(&mut buf);
        }
    }
}
