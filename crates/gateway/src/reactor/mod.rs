//! The gateway reactor: sharded epoll event loops replacing the
//! thread-per-connection server (DESIGN.md §13).
//!
//! One thread per admission shard, each owning:
//!
//! - an epoll instance with edge-triggered connection registration,
//! - a slab of connection states (resumable [`FrameReader`] + a write
//!   buffer), indexed by the epoll token,
//! - a dup of the shared listener, registered `EPOLLEXCLUSIVE` so
//!   exactly one shard wakes per incoming connection and accepts it
//!   into its own slab.
//!
//! Per readability event a connection decodes *every* complete frame it
//! has buffered; the SUBMITs among them are admitted as one
//! [`Engine::submit_batch`] call on the shard's own admission state, so
//! pipelined clients pay one jobs-table lock and one pool lock per
//! batch instead of per frame. Responses are appended to a per-
//! connection write buffer in request order (the wire contract);
//! `EPOLLOUT` is armed only while flushing that buffer would block,
//! and a connection whose peer stops reading is paused (its reads are
//! deferred) once the buffer passes the high-water mark — backpressure,
//! not unbounded buffering.
//!
//! A 50 ms epoll timeout doubles as the idle tick that polls the stop
//! flag, replacing the old per-connection `SO_RCVTIMEO` hack. Partial
//! frames survive across readiness events exactly as they survived
//! read-timeout ticks before: the `FrameReader` keeps its own state.
//!
//! EOF handling is *process-then-close*: frames fully received before
//! the peer vanished are still decoded and admitted, so an admitted
//! job always reaches a terminal phase even if nobody is left to read
//! the `Accepted` response (the chaos connection-fault invariant).

mod epoll;

use crate::engine::{SubmitOutcome, SubmitSpec};
use crate::proto::{
    write_frame, ErrorCode, FrameError, FrameReader, RecvError, Request, Response, MAX_METRICS_STR,
};
use crate::server::ServerShared;
use epoll::{
    Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLET, EPOLLEXCLUSIVE, EPOLLHUP, EPOLLIN, EPOLLOUT,
    EPOLLRDHUP,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Epoll token for the shard's listener dup.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token for the shard's wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Idle tick: how often a shard loop polls the stop flag (ms).
const TICK_MS: i32 = 50;
/// Events drained per epoll_wait call.
const EVENT_BATCH: usize = 256;
/// Pause reading from a connection whose pending response bytes exceed
/// this (resumed once the peer drains below it). Large enough for a
/// METRICS frame plus headroom.
const OUT_HIGH_WATER: usize = 2 << 20;
/// Interest set every connection keeps for its whole life; `EPOLLOUT`
/// is OR'd in only while a flush is blocked.
const BASE_INTEREST: u32 = EPOLLIN | EPOLLRDHUP | EPOLLET;

/// The running reactor: one event-loop thread per admission shard.
pub(crate) struct Reactor {
    threads: Vec<JoinHandle<()>>,
    wakes: Vec<Arc<WakeFd>>,
}

impl Reactor {
    /// Starts `engine.shards()` event loops over dups of `listener`.
    pub(crate) fn start(
        shared: &Arc<ServerShared>,
        listener: &TcpListener,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let nshards = shared.engine.shards();
        let mut threads = Vec::with_capacity(nshards);
        let mut wakes = Vec::with_capacity(nshards);
        for idx in 0..nshards {
            // Build the loop on the caller's thread so setup errors
            // (epoll, eventfd, dup) surface from start() rather than
            // panicking a detached thread.
            let shard = ShardLoop::new(idx, Arc::clone(shared), listener.try_clone()?)?;
            wakes.push(Arc::clone(&shard.wake));
            threads.push(
                std::thread::Builder::new()
                    .name(format!("occam-gw-reactor{idx}"))
                    .spawn(move || shard.run())?,
            );
        }
        Ok(Reactor { threads, wakes })
    }

    /// Wakes every shard (they observe the stop flag) and joins them.
    /// The caller sets `shared.stop` first.
    pub(crate) fn shutdown(&mut self) {
        for wake in &self.wakes {
            wake.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One connection's state between readiness events.
struct Conn {
    stream: TcpStream,
    /// Resumable frame decoder; partial frames live here across events.
    reader: FrameReader,
    /// Encoded-but-unflushed response bytes.
    out: Vec<u8>,
    /// Flushed prefix of `out`.
    out_pos: usize,
    /// Sticky edge-triggered readability: set by events, cleared when a
    /// read hits `WouldBlock`.
    readable: bool,
    /// Sticky edge-triggered writability (fresh sockets start true).
    writable: bool,
    /// Close once `out` is drained (decode error or SHUTDOWN answered).
    hangup: bool,
    /// Whether the current epoll interest set includes `EPOLLOUT`.
    epollout_armed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            out_pos: 0,
            readable: false,
            writable: true,
            hangup: false,
            epollout_armed: false,
        }
    }

    /// Bytes queued but not yet flushed.
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// One shard's event loop state.
struct ShardLoop {
    idx: usize,
    shared: Arc<ServerShared>,
    ep: Epoll,
    wake: Arc<WakeFd>,
    listener: TcpListener,
    /// Connection slab; the epoll token is the slot index.
    conns: Vec<Option<Conn>>,
    /// Reusable empty slots.
    free: Vec<usize>,
    /// Slots freed during the current event batch; merged into `free`
    /// only after the batch, so a still-queued event can never hit a
    /// slot that was reused mid-batch.
    freed_batch: Vec<usize>,
}

impl ShardLoop {
    fn new(
        idx: usize,
        shared: Arc<ServerShared>,
        listener: TcpListener,
    ) -> std::io::Result<ShardLoop> {
        let ep = Epoll::new()?;
        let wake = Arc::new(WakeFd::new()?);
        // Listener: level-triggered + EPOLLEXCLUSIVE so one shard wakes
        // per pending connection; the handler accepts until WouldBlock.
        ep.add(
            listener.as_raw_fd(),
            EPOLLIN | EPOLLEXCLUSIVE,
            LISTENER_TOKEN,
        )?;
        ep.add(wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
        Ok(ShardLoop {
            idx,
            shared,
            ep,
            wake,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            freed_batch: Vec::new(),
        })
    }

    fn run(mut self) {
        let mut buf = vec![EpollEvent::zeroed(); EVENT_BATCH];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            // Copy tokens out of the (possibly packed) event structs so
            // the wait buffer is free for the next iteration.
            let batch: Vec<(u32, u64)> = match self.ep.wait(&mut buf, TICK_MS) {
                Ok(events) => events.iter().map(|e| (e.events(), e.token())).collect(),
                Err(_) => continue,
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if !batch.is_empty() {
                self.shared.obs.reactor_events.add(batch.len() as u64);
            }
            for (bits, token) in batch {
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.wake.drain(),
                    slot => self.dispatch(slot as usize, bits),
                }
            }
            let mut freed = std::mem::take(&mut self.freed_batch);
            self.free.append(&mut freed);
        }
        // Teardown: every connection still open counts a close, keeping
        // conn.opened == conn.closed after shutdown.
        for slot in 0..self.conns.len() {
            if self.conns[slot].take().is_some() {
                self.shared.obs.closed.inc();
            }
        }
    }

    /// Drains the listener's accept backlog into this shard's slab.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.shared.obs.opened.inc();
                    let fd = stream.as_raw_fd();
                    let conn = Conn::new(stream);
                    let slot = match self.free.pop() {
                        Some(s) => {
                            self.conns[s] = Some(conn);
                            s
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    // ADD fires an edge immediately if data already
                    // arrived, so a connection that raced ahead of its
                    // registration is still served.
                    if self.ep.add(fd, BASE_INTEREST, slot as u64).is_err() {
                        self.conns[slot] = None;
                        self.freed_batch.push(slot);
                        self.shared.obs.closed.inc();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Routes one readiness event to its connection and drives it.
    fn dispatch(&mut self, slot: usize, bits: u32) {
        // take/put-back so `drive` can borrow &mut self alongside the
        // connection. A None slot is a stale event for a connection
        // closed earlier in this batch — ignore.
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
            conn.readable = true;
        }
        if bits & EPOLLOUT != 0 {
            conn.writable = true;
        }
        if self.drive(&mut conn, slot) {
            self.conns[slot] = Some(conn);
        } else {
            drop(conn); // closes the fd, deregistering it from epoll
            self.freed_batch.push(slot);
            self.shared.obs.closed.inc();
        }
    }

    /// Advances one connection as far as readiness allows: flush, then
    /// read-decode-admit-respond until reads would block or the write
    /// buffer passes the high-water mark. Returns whether to keep the
    /// connection.
    fn drive(&mut self, conn: &mut Conn, slot: usize) -> bool {
        if !self.flush(conn, slot) {
            return false;
        }
        loop {
            let mut bodies: Vec<Vec<u8>> = Vec::new();
            let mut peer_gone = false;
            let mut frame_err: Option<FrameError> = None;
            while conn.readable && !conn.hangup && conn.pending_out() < OUT_HIGH_WATER {
                match conn.reader.poll(&mut conn.stream) {
                    Ok(Some(body)) => {
                        self.shared.obs.frames_rx.inc();
                        bodies.push(body);
                    }
                    // WouldBlock: the edge is consumed; any partial
                    // frame stays buffered in the reader.
                    Ok(None) => {
                        conn.readable = false;
                    }
                    Err(RecvError::Closed) | Err(RecvError::Io(_)) => {
                        peer_gone = true;
                        break;
                    }
                    Err(RecvError::Frame(err)) => {
                        frame_err = Some(err);
                        break;
                    }
                }
            }
            // Process-then-close: everything fully received before EOF
            // or the framing error still gets decoded and admitted.
            if !bodies.is_empty() {
                self.process(conn, bodies);
            }
            if let Some(err) = frame_err {
                self.shared.obs.proto_errors.inc();
                queue_response(
                    conn,
                    &self.shared,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: err.to_string(),
                    },
                );
                conn.hangup = true;
            }
            if !self.flush(conn, slot) {
                return false;
            }
            if peer_gone {
                // One flush attempt above was the courtesy; don't park
                // a dead peer waiting for EPOLLOUT.
                return false;
            }
            if conn.hangup {
                // Close now if drained, else linger until EPOLLOUT
                // flushes the goodbye.
                return conn.pending_out() > 0;
            }
            if !conn.readable || conn.pending_out() >= OUT_HIGH_WATER {
                return true;
            }
            // Reads were paused by the high-water mark and the flush
            // above made room: resume decoding.
        }
    }

    /// Decodes a batch of frame bodies, admits all SUBMITs in one
    /// engine batch on this shard, and queues responses in request
    /// order.
    fn process(&self, conn: &mut Conn, bodies: Vec<Vec<u8>>) {
        enum Planned {
            /// Takes the next submit outcome, in order.
            Submit,
            Ready(Response, bool),
        }
        let mut specs: Vec<SubmitSpec> = Vec::new();
        let mut plan: Vec<Planned> = Vec::with_capacity(bodies.len());
        for body in &bodies {
            match Request::decode(body) {
                Ok(Request::Submit {
                    workflow,
                    scope,
                    urgent,
                    params,
                }) => {
                    specs.push(SubmitSpec {
                        workflow,
                        scope,
                        urgent,
                        params,
                    });
                    plan.push(Planned::Submit);
                }
                Ok(req) => {
                    let (resp, hangup) = handle_plain(&self.shared, req);
                    let stop = hangup;
                    plan.push(Planned::Ready(resp, hangup));
                    if stop {
                        // Frames pipelined behind a SHUTDOWN are dropped
                        // with the connection, as before.
                        break;
                    }
                }
                Err(err) => {
                    self.shared.obs.proto_errors.inc();
                    plan.push(Planned::Ready(
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: err.to_string(),
                        },
                        true,
                    ));
                    break;
                }
            }
        }
        let outcomes = if specs.is_empty() {
            Vec::new()
        } else {
            self.shared.obs.reactor_batch_len.record(specs.len() as u64);
            self.shared.engine.submit_batch(self.idx, specs)
        };
        let mut outcomes = outcomes.into_iter();
        for planned in plan {
            let (resp, hangup) = match planned {
                Planned::Submit => {
                    let resp = match outcomes.next().expect("one outcome per submit") {
                        SubmitOutcome::Accepted(ticket) => Response::Accepted { ticket },
                        SubmitOutcome::Busy(retry_after_ms) => Response::Busy { retry_after_ms },
                        SubmitOutcome::Rejected(code, message) => Response::Error { code, message },
                    };
                    (resp, false)
                }
                Planned::Ready(resp, hangup) => (resp, hangup),
            };
            queue_response(conn, &self.shared, &resp);
            if hangup {
                conn.hangup = true;
                break;
            }
        }
    }

    /// Flushes the connection's write buffer as far as the socket
    /// allows and keeps the `EPOLLOUT` interest in sync with whether
    /// bytes remain. Returns whether the connection is still usable.
    fn flush(&mut self, conn: &mut Conn, slot: usize) -> bool {
        while conn.writable && conn.pending_out() > 0 {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.writable = false;
                    self.shared.obs.reactor_wouldblock.inc();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.pending_out() == 0 {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > (64 << 10) {
            // Keep a slow drain from pinning the flushed prefix.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        let want_epollout = !conn.writable && conn.pending_out() > 0;
        if want_epollout != conn.epollout_armed {
            let interest = if want_epollout {
                BASE_INTEREST | EPOLLOUT
            } else {
                BASE_INTEREST
            };
            if self
                .ep
                .modify(conn.stream.as_raw_fd(), interest, slot as u64)
                .is_err()
            {
                return false;
            }
            conn.epollout_armed = want_epollout;
        }
        true
    }
}

/// Encodes `resp` onto the connection's write buffer.
fn queue_response(conn: &mut Conn, shared: &ServerShared, resp: &Response) {
    let _ = write_frame(&mut conn.out, &resp.encode());
    shared.obs.frames_tx.inc();
}

/// Maps one decoded non-SUBMIT request to `(response, hang up after
/// sending)`. SUBMITs go through the batch admission path instead.
fn handle_plain(shared: &ServerShared, req: Request) -> (Response, bool) {
    let engine = &shared.engine;
    match req {
        Request::Submit { .. } => unreachable!("SUBMIT is handled by the batch path"),
        Request::Status { ticket } => {
            let (phase, detail) = engine.status(ticket);
            (
                Response::Status {
                    ticket,
                    phase,
                    detail,
                },
                false,
            )
        }
        Request::Cancel { ticket } => {
            let ok = engine.cancel(ticket);
            (Response::Cancelled { ticket, ok }, false)
        }
        Request::List => (
            Response::Catalog {
                entries: engine.list(),
            },
            false,
        ),
        Request::Metrics => {
            let json = engine.metrics_json();
            // The METRICS cap is generous (MAX_FRAME minus headroom) but
            // a pathological registry must get a typed error, not a
            // silently truncated — i.e. syntactically invalid — JSON blob.
            let resp = if json.len() > MAX_METRICS_STR {
                Response::Error {
                    code: ErrorCode::Internal,
                    message: format!(
                        "metrics registry JSON is {} bytes, exceeding the {} byte frame cap",
                        json.len(),
                        MAX_METRICS_STR
                    ),
                }
            } else {
                Response::Metrics { json }
            };
            (resp, false)
        }
        Request::Shutdown => {
            let mut requested = shared.shutdown_requested.lock();
            *requested = true;
            shared.shutdown_cv.notify_all();
            (Response::Bye, true)
        }
    }
}
