//! The gateway wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32 length (big-endian) || body`, where `body` is a
//! one-byte tag followed by a tag-specific payload; `length` counts the
//! body only and is capped at [`MAX_FRAME`]. Strings are `u32 length ||
//! UTF-8 bytes` (capped at [`MAX_STR`]); integers are big-endian.
//!
//! Decoding is total: any byte sequence decodes to either a message or a
//! typed [`FrameError`] — truncated, oversized, or garbage input must
//! never panic (property-tested in `tests/proto_fuzz.rs`).
//!
//! Frame layout (DESIGN.md §10):
//!
//! ```text
//! requests                        responses
//! 0x01 SUBMIT   wf scope urg n(kv)*   0x81 ACCEPTED  ticket
//! 0x02 STATUS   ticket                0x82 BUSY      retry_after_ms
//! 0x03 CANCEL   ticket                0x83 STATUS    ticket phase detail
//! 0x04 LIST                           0x84 CANCELLED ticket ok
//! 0x05 METRICS                        0x85 CATALOG   n(name desc ro)*
//! 0x06 SHUTDOWN                       0x86 METRICS   json
//!                                     0x87 ERROR     code message
//!                                     0x88 BYE
//! ```

use std::io::{Read, Write};

/// Maximum frame body size (1 MiB). Larger length prefixes are rejected
/// before any allocation.
pub const MAX_FRAME: usize = 1 << 20;
/// Maximum encoded string length (64 KiB).
pub const MAX_STR: usize = 1 << 16;
/// Cap for the METRICS response's JSON payload: the whole registry is
/// one string and can legitimately exceed [`MAX_STR`] on a busy gateway,
/// so it gets its own cap — the full frame budget minus tag and length
/// prefix headroom. A registry larger than this is answered with an
/// `Internal` error rather than truncated mid-JSON (see `server.rs`).
pub const MAX_METRICS_STR: usize = MAX_FRAME - 64;
/// Maximum repeated items (submit params, catalog entries) per frame.
pub const MAX_ITEMS: u32 = 1024;

/// A typed frame decoding error. Total: decoding never panics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The buffer ended before the field (`need` more bytes than `have`).
    Truncated {
        /// Bytes required by the next field.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A length prefix exceeded its cap.
    Oversized {
        /// Declared length.
        len: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// The leading tag byte is not a known message type.
    UnknownTag(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A fixed-range field (bool, phase, error code) had an out-of-range
    /// value.
    BadEnum {
        /// Field description.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The frame decoded but left unconsumed bytes.
    TrailingBytes(usize),
    /// A repeated-item count exceeded [`MAX_ITEMS`].
    TooManyItems {
        /// Field description.
        what: &'static str,
        /// Declared count.
        count: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized field: {len} bytes exceeds cap {max}")
            }
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::BadEnum { what, value } => {
                write!(f, "bad {what} value 0x{value:02x}")
            }
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            FrameError::TooManyItems { what, count } => {
                write!(f, "too many {what}: {count} exceeds {MAX_ITEMS}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Lifecycle phase of a gateway job, as carried on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WirePhase {
    /// Admitted, waiting for a pool worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Terminal: committed.
    Completed,
    /// Terminal: aborted (failure or deadlock victim).
    Aborted,
    /// Terminal: cooperatively cancelled.
    Cancelled,
    /// The ticket is not known to this gateway.
    Unknown,
}

impl WirePhase {
    fn from_u8(v: u8) -> Result<WirePhase, FrameError> {
        Ok(match v {
            0 => WirePhase::Queued,
            1 => WirePhase::Running,
            2 => WirePhase::Completed,
            3 => WirePhase::Aborted,
            4 => WirePhase::Cancelled,
            5 => WirePhase::Unknown,
            other => {
                return Err(FrameError::BadEnum {
                    what: "phase",
                    value: other,
                })
            }
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            WirePhase::Queued => 0,
            WirePhase::Running => 1,
            WirePhase::Completed => 2,
            WirePhase::Aborted => 3,
            WirePhase::Cancelled => 4,
            WirePhase::Unknown => 5,
        }
    }

    /// Whether this phase is terminal (the job will not change again).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            WirePhase::Completed | WirePhase::Aborted | WirePhase::Cancelled
        )
    }
}

/// Machine-readable error class in an [`Response::Error`] frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The submitted workflow name is not in the catalog.
    UnknownWorkflow,
    /// The region scope did not compile.
    BadScope,
    /// The gateway is draining and admits no new work.
    ShuttingDown,
    /// The request frame was malformed.
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<ErrorCode, FrameError> {
        Ok(match v {
            0 => ErrorCode::UnknownWorkflow,
            1 => ErrorCode::BadScope,
            2 => ErrorCode::ShuttingDown,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Internal,
            other => {
                return Err(FrameError::BadEnum {
                    what: "error code",
                    value: other,
                })
            }
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::UnknownWorkflow => 0,
            ErrorCode::BadScope => 1,
            ErrorCode::ShuttingDown => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Internal => 4,
        }
    }
}

/// A client-to-gateway request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Invoke catalog workflow `workflow` over glob `scope`.
    Submit {
        /// Catalog workflow name.
        workflow: String,
        /// Region scope (glob over device names).
        scope: String,
        /// Urgent fast lane + scheduler urgent priority.
        urgent: bool,
        /// Workflow parameters (`key`, `value`).
        params: Vec<(String, String)>,
    },
    /// Poll the lifecycle state of a ticket.
    Status {
        /// Ticket from an `Accepted` response.
        ticket: u64,
    },
    /// Request cooperative cancellation of a ticket.
    Cancel {
        /// Ticket from an `Accepted` response.
        ticket: u64,
    },
    /// List the workflow catalog.
    List,
    /// Fetch the gateway's metrics registry as JSON.
    Metrics,
    /// Ask the gateway to drain and shut down.
    Shutdown,
}

/// A gateway-to-client response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The submission was admitted.
    Accepted {
        /// Ticket to poll/cancel with.
        ticket: u64,
    },
    /// The admission queue is full; retry after the hint.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Status of a ticket.
    Status {
        /// The polled ticket.
        ticket: u64,
        /// Lifecycle phase.
        phase: WirePhase,
        /// Terminal detail (error message for aborted tasks, else empty).
        detail: String,
    },
    /// Result of a cancellation request.
    Cancelled {
        /// The cancelled ticket.
        ticket: u64,
        /// `false` if the job was already terminal or unknown.
        ok: bool,
    },
    /// The workflow catalog: `(name, description, read_only)`.
    Catalog {
        /// Catalog rows.
        entries: Vec<(String, String, bool)>,
    },
    /// The metrics registry rendered as JSON.
    Metrics {
        /// `Registry::to_json` output.
        json: String,
    },
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges a `Shutdown` request; the connection closes next.
    Bye,
}

// ---------------------------------------------------------------- encoding

struct Enc(Vec<u8>);

impl Enc {
    fn tag(t: u8) -> Enc {
        Enc(vec![t])
    }
    fn u8(&mut self, v: u8) -> &mut Self {
        self.0.push(v);
        self
    }
    fn u32(&mut self, v: u32) -> &mut Self {
        self.0.extend_from_slice(&v.to_be_bytes());
        self
    }
    fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_be_bytes());
        self
    }
    fn str(&mut self, s: &str) -> &mut Self {
        self.str_capped(s, MAX_STR)
    }
    fn str_capped(&mut self, s: &str, cap: usize) -> &mut Self {
        // Encoding truncates at the cap rather than erroring: the caller
        // controls its own strings, and decode enforces the limit anyway.
        // Fields that can legitimately grow large (METRICS json) pass a
        // larger cap and are length-checked by the sender before encoding.
        let bytes = s.as_bytes();
        let take = if bytes.len() > cap {
            let mut end = cap;
            while end > 0 && !s.is_char_boundary(end) {
                end -= 1;
            }
            &bytes[..end]
        } else {
            bytes
        };
        self.u32(take.len() as u32);
        self.0.extend_from_slice(take);
        self
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(FrameError::Truncated { need: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(FrameError::BadEnum { what, value }),
        }
    }

    fn str(&mut self) -> Result<String, FrameError> {
        self.str_capped(MAX_STR)
    }

    fn str_capped(&mut self, cap: usize) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(FrameError::Oversized { len, max: cap });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn items(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let n = self.u32()?;
        if n > MAX_ITEMS {
            return Err(FrameError::TooManyItems { what, count: n });
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), FrameError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes(left))
        }
    }
}

impl Request {
    /// Encodes this request as a frame body (tag + payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit {
                workflow,
                scope,
                urgent,
                params,
            } => {
                let mut e = Enc::tag(0x01);
                e.str(workflow)
                    .str(scope)
                    .u8(u8::from(*urgent))
                    .u32(params.len().min(MAX_ITEMS as usize) as u32);
                for (k, v) in params.iter().take(MAX_ITEMS as usize) {
                    e.str(k).str(v);
                }
                e.0
            }
            Request::Status { ticket } => {
                let mut e = Enc::tag(0x02);
                e.u64(*ticket);
                e.0
            }
            Request::Cancel { ticket } => {
                let mut e = Enc::tag(0x03);
                e.u64(*ticket);
                e.0
            }
            Request::List => Enc::tag(0x04).0,
            Request::Metrics => Enc::tag(0x05).0,
            Request::Shutdown => Enc::tag(0x06).0,
        }
    }

    /// Decodes a frame body into a request. Total — never panics.
    pub fn decode(body: &[u8]) -> Result<Request, FrameError> {
        let mut d = Dec::new(body);
        let req = match d.u8()? {
            0x01 => {
                let workflow = d.str()?;
                let scope = d.str()?;
                let urgent = d.bool("urgent flag")?;
                let n = d.items("submit params")?;
                let mut params = Vec::with_capacity(n.min(64) as usize);
                for _ in 0..n {
                    let k = d.str()?;
                    let v = d.str()?;
                    params.push((k, v));
                }
                Request::Submit {
                    workflow,
                    scope,
                    urgent,
                    params,
                }
            }
            0x02 => Request::Status { ticket: d.u64()? },
            0x03 => Request::Cancel { ticket: d.u64()? },
            0x04 => Request::List,
            0x05 => Request::Metrics,
            0x06 => Request::Shutdown,
            tag => return Err(FrameError::UnknownTag(tag)),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as a frame body (tag + payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Accepted { ticket } => {
                let mut e = Enc::tag(0x81);
                e.u64(*ticket);
                e.0
            }
            Response::Busy { retry_after_ms } => {
                let mut e = Enc::tag(0x82);
                e.u64(*retry_after_ms);
                e.0
            }
            Response::Status {
                ticket,
                phase,
                detail,
            } => {
                let mut e = Enc::tag(0x83);
                e.u64(*ticket).u8(phase.as_u8()).str(detail);
                e.0
            }
            Response::Cancelled { ticket, ok } => {
                let mut e = Enc::tag(0x84);
                e.u64(*ticket).u8(u8::from(*ok));
                e.0
            }
            Response::Catalog { entries } => {
                let mut e = Enc::tag(0x85);
                e.u32(entries.len().min(MAX_ITEMS as usize) as u32);
                for (name, desc, ro) in entries.iter().take(MAX_ITEMS as usize) {
                    e.str(name).str(desc).u8(u8::from(*ro));
                }
                e.0
            }
            Response::Metrics { json } => {
                let mut e = Enc::tag(0x86);
                e.str_capped(json, MAX_METRICS_STR);
                e.0
            }
            Response::Error { code, message } => {
                let mut e = Enc::tag(0x87);
                e.u8(code.as_u8()).str(message);
                e.0
            }
            Response::Bye => Enc::tag(0x88).0,
        }
    }

    /// Decodes a frame body into a response. Total — never panics.
    pub fn decode(body: &[u8]) -> Result<Response, FrameError> {
        let mut d = Dec::new(body);
        let resp = match d.u8()? {
            0x81 => Response::Accepted { ticket: d.u64()? },
            0x82 => Response::Busy {
                retry_after_ms: d.u64()?,
            },
            0x83 => Response::Status {
                ticket: d.u64()?,
                phase: WirePhase::from_u8(d.u8()?)?,
                detail: d.str()?,
            },
            0x84 => Response::Cancelled {
                ticket: d.u64()?,
                ok: d.bool("cancel ok flag")?,
            },
            0x85 => {
                let n = d.items("catalog entries")?;
                let mut entries = Vec::with_capacity(n.min(64) as usize);
                for _ in 0..n {
                    let name = d.str()?;
                    let desc = d.str()?;
                    let ro = d.bool("read-only flag")?;
                    entries.push((name, desc, ro));
                }
                Response::Catalog { entries }
            }
            0x86 => Response::Metrics {
                json: d.str_capped(MAX_METRICS_STR)?,
            },
            0x87 => Response::Error {
                code: ErrorCode::from_u8(d.u8()?)?,
                message: d.str()?,
            },
            0x88 => Response::Bye,
            tag => return Err(FrameError::UnknownTag(tag)),
        };
        d.finish()?;
        Ok(resp)
    }
}

// ----------------------------------------------------------------- framing

/// Writes one frame (`u32 BE length || body`) to `w`.
///
/// Returns `InvalidInput` (writing nothing) if `body` exceeds
/// [`MAX_FRAME`] — a peer would reject the length prefix as `Oversized`
/// and kill the connection with a confusing error on its side, so the
/// oversize is surfaced to the sender instead.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame body of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Outcome of reading one frame from a stream.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The length prefix exceeded [`MAX_FRAME`]; the stream is unusable.
    Frame(FrameError),
    /// I/O failure (including mid-frame EOF).
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Frame(e) => write!(f, "frame error: {e}"),
            RecvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A resumable frame reader for streams with a read timeout.
///
/// A server polling a shutdown flag sets `SO_RCVTIMEO`, and that timeout
/// applies to *each* `read()` — it can fire after part of the header or
/// body was already consumed (the sender writes header and body in
/// separate syscalls, so they routinely arrive more than one timeout
/// apart under real network latency). Restarting a one-shot read would
/// silently drop the buffered prefix and permanently desync the stream.
/// `FrameReader` instead keeps the partial header/body across calls:
/// [`FrameReader::poll`] returns `Ok(None)` on timeout and the next call
/// resumes exactly where the previous one stopped.
#[derive(Default)]
pub struct FrameReader {
    header: [u8; 4],
    got: usize,
    body: Option<Vec<u8>>,
    off: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether part of a frame is buffered (the stream is mid-frame).
    pub fn mid_frame(&self) -> bool {
        self.got > 0 || self.body.is_some()
    }

    /// Pulls bytes from `r` until a full frame body is available.
    ///
    /// Returns `Ok(Some(body))` for a complete frame and `Ok(None)` if
    /// the read timed out (`WouldBlock`/`TimedOut`) — partial progress is
    /// retained for the next call. Clean EOF at a frame boundary is
    /// [`RecvError::Closed`]; EOF mid-frame is an `UnexpectedEof` I/O
    /// error; an oversized length prefix is rejected before allocation.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Option<Vec<u8>>, RecvError> {
        if self.body.is_none() {
            while self.got < 4 {
                match r.read(&mut self.header[self.got..]) {
                    Ok(0) => {
                        return if self.got == 0 {
                            Err(RecvError::Closed)
                        } else {
                            Err(RecvError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "eof inside frame header",
                            )))
                        };
                    }
                    Ok(n) => self.got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Ok(None)
                    }
                    Err(e) => return Err(RecvError::Io(e)),
                }
            }
            let len = u32::from_be_bytes(self.header) as usize;
            if len > MAX_FRAME {
                return Err(RecvError::Frame(FrameError::Oversized {
                    len,
                    max: MAX_FRAME,
                }));
            }
            self.body = Some(vec![0u8; len]);
            self.off = 0;
        }
        let body = self.body.as_mut().expect("body allocated above");
        while self.off < body.len() {
            match r.read(&mut body[self.off..]) {
                Ok(0) => {
                    return Err(RecvError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside frame body",
                    )))
                }
                Ok(n) => self.off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
        self.got = 0;
        Ok(self.body.take())
    }
}

/// Reads one frame body from `r`, blocking. Returns [`RecvError::Closed`]
/// on clean EOF at a frame boundary. A read timeout on the stream
/// surfaces as a `TimedOut` I/O error; callers that must survive
/// timeouts without losing partial frames should hold a [`FrameReader`]
/// instead.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, RecvError> {
    match FrameReader::new().poll(r)? {
        Some(body) => Ok(body),
        None => Err(RecvError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "read timed out mid-frame",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Submit {
            workflow: "firmware_upgrade".into(),
            scope: "dc01.pod03.*".into(),
            urgent: true,
            params: vec![("version".into(), "fw-2.1.0".into())],
        });
        roundtrip_req(Request::Status { ticket: 42 });
        roundtrip_req(Request::Cancel { ticket: u64::MAX });
        roundtrip_req(Request::List);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Accepted { ticket: 7 });
        roundtrip_resp(Response::Busy { retry_after_ms: 25 });
        roundtrip_resp(Response::Status {
            ticket: 7,
            phase: WirePhase::Running,
            detail: String::new(),
        });
        roundtrip_resp(Response::Status {
            ticket: 8,
            phase: WirePhase::Aborted,
            detail: "task failed: boom".into(),
        });
        roundtrip_resp(Response::Cancelled {
            ticket: 7,
            ok: true,
        });
        roundtrip_resp(Response::Catalog {
            entries: vec![
                ("drain".into(), "drain a region".into(), false),
                ("status_audit".into(), "read-only audit".into(), true),
            ],
        });
        roundtrip_resp(Response::Metrics {
            json: "{\"counters\":{}}".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::UnknownWorkflow,
            message: "no such workflow".into(),
        });
        roundtrip_resp(Response::Bye);
    }

    #[test]
    fn truncation_yields_typed_errors_at_every_prefix() {
        let body = Request::Submit {
            workflow: "drain".into(),
            scope: "dc01.*".into(),
            urgent: false,
            params: vec![("a".into(), "b".into())],
        }
        .encode();
        for cut in 0..body.len() {
            let err = Request::decode(&body[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Request::List.encode();
        body.push(0);
        assert_eq!(
            Request::decode(&body).unwrap_err(),
            FrameError::TrailingBytes(1)
        );
    }

    #[test]
    fn oversized_string_rejected_without_allocation() {
        // Tag SUBMIT, then a string length far beyond MAX_STR.
        let mut body = vec![0x01];
        body.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            Request::decode(&body).unwrap_err(),
            FrameError::Oversized { .. }
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert_eq!(
            Request::decode(&[0x42]).unwrap_err(),
            FrameError::UnknownTag(0x42)
        );
        assert_eq!(
            Response::decode(&[0x07]).unwrap_err(),
            FrameError::UnknownTag(0x07)
        );
        assert!(matches!(
            Request::decode(&[]).unwrap_err(),
            FrameError::Truncated { .. }
        ));
    }

    #[test]
    fn metrics_json_larger_than_max_str_roundtrips() {
        // The registry JSON is one string and can exceed the generic
        // 64 KiB string cap; METRICS has its own cap under MAX_FRAME.
        let json = format!("{{\"pad\":\"{}\"}}", "x".repeat(MAX_STR * 3));
        assert!(json.len() > MAX_STR);
        roundtrip_resp(Response::Metrics { json });
    }

    #[test]
    fn oversized_write_frame_is_an_error_not_a_truncation() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &vec![0u8; MAX_FRAME + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing may reach the wire");
        write_frame(&mut buf, &vec![0u8; MAX_FRAME]).unwrap();
    }

    /// A reader that yields `data` in single-byte reads, interleaving a
    /// timeout before every byte — the worst case for a frame reader on a
    /// stream with `SO_RCVTIMEO`.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "timeout tick",
                ));
            }
            self.ready = false;
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_mid_frame() {
        let req = Request::Submit {
            workflow: "drain".into(),
            scope: "dc01.*".into(),
            urgent: false,
            params: vec![("a".into(), "b".into())],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        write_frame(&mut wire, &Request::List.encode()).unwrap();
        let mut r = Trickle {
            data: wire,
            pos: 0,
            ready: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0;
        loop {
            match fr.poll(&mut r) {
                Ok(Some(body)) => frames.push(body),
                Ok(None) => timeouts += 1,
                Err(RecvError::Closed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames.len(), 2, "both frames must survive the timeouts");
        assert_eq!(Request::decode(&frames[0]).unwrap(), req);
        assert_eq!(Request::decode(&frames[1]).unwrap(), Request::List);
        assert!(timeouts > 8, "every byte was preceded by a timeout");
        assert!(!fr.mid_frame());
    }

    #[test]
    fn frame_reader_reports_eof_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Metrics.encode()).unwrap();
        wire.truncate(wire.len() - 1);
        let mut r = std::io::Cursor::new(wire);
        let mut fr = FrameReader::new();
        match fr.poll(&mut r) {
            Err(RecvError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected eof error, got {other:?}"),
        }
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_oversized() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Metrics.encode()).unwrap();
        let mut r = std::io::Cursor::new(buf);
        let body = read_frame(&mut r).unwrap();
        assert_eq!(Request::decode(&body).unwrap(), Request::Metrics);
        assert!(matches!(read_frame(&mut r), Err(RecvError::Closed)));

        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(RecvError::Frame(FrameError::Oversized { .. }))
        ));
    }
}
