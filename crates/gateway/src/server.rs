//! The TCP frontend: a sharded epoll reactor, frames in, frames out.
//!
//! The server is a thin shell over [`Engine`] and the crate's private
//! `reactor` module: `engine.shards()` event-loop threads share one listener,
//! each accepting into its own connection slab and admitting SUBMIT
//! batches into its own engine shard (DESIGN.md §13). Decode errors are
//! answered with a typed `Error` response and the connection is closed —
//! a malformed peer can cost at most its own connection, never a worker
//! or an admission slot (admission happens after decoding succeeds).
//!
//! Shutdown is cooperative and graceful: the stop flag is raised, every
//! shard loop is woken through its eventfd, open connections are closed,
//! and the engine drains in-flight work before `shutdown()` returns.

use crate::engine::Engine;
use crate::reactor::Reactor;
use occam_obs::{Counter, Histogram};
use parking_lot::{Condvar, Mutex};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Connection/frame/reactor instruments, bound once per server.
pub(crate) struct ConnObs {
    pub(crate) opened: Counter,
    pub(crate) closed: Counter,
    pub(crate) frames_rx: Counter,
    pub(crate) frames_tx: Counter,
    pub(crate) proto_errors: Counter,
    /// Readiness events dispatched across all shard loops.
    pub(crate) reactor_events: Counter,
    /// Write-side `WouldBlock`s (EPOLLOUT re-arms; backpressure signal).
    pub(crate) reactor_wouldblock: Counter,
    /// SUBMITs admitted per batch-admission call.
    pub(crate) reactor_batch_len: Histogram,
}

/// State shared between the server handle and every shard loop.
pub(crate) struct ServerShared {
    pub(crate) engine: Engine,
    pub(crate) stop: AtomicBool,
    pub(crate) shutdown_requested: Mutex<bool>,
    pub(crate) shutdown_cv: Condvar,
    pub(crate) obs: ConnObs,
}

/// A running gateway server. Dropping the handle does not stop the
/// server; call [`GatewayServer::shutdown`].
pub struct GatewayServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    reactor: Option<Reactor>,
}

impl GatewayServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and starts
    /// one reactor event loop per engine admission shard.
    pub fn start(engine: Engine, addr: &str) -> std::io::Result<GatewayServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let reg = engine.runtime().obs().clone();
        let shared = Arc::new(ServerShared {
            engine,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            obs: ConnObs {
                opened: reg.counter("gateway.conn.opened"),
                closed: reg.counter("gateway.conn.closed"),
                frames_rx: reg.counter("gateway.frames.rx"),
                frames_tx: reg.counter("gateway.frames.tx"),
                proto_errors: reg.counter("gateway.proto.errors"),
                reactor_events: reg.counter("gateway.reactor.events"),
                reactor_wouldblock: reg.counter("gateway.reactor.wouldblock"),
                reactor_batch_len: reg.histogram("gateway.reactor.batch_len"),
            },
        });
        let reactor = Reactor::start(&shared, &listener)?;
        Ok(GatewayServer {
            shared,
            addr: local,
            reactor: Some(reactor),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Blocks until some client sends a SHUTDOWN frame (used by the
    /// `gateway_serve` binary's main thread).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self.shared.shutdown_requested.lock();
        while !*requested {
            self.shared.shutdown_cv.wait(&mut requested);
        }
    }

    /// Graceful stop: raise the stop flag, wake and join every shard
    /// loop (closing their connections), and drain the engine.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared
            .stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        self.shared.engine.shutdown();
        // Release anyone parked in wait_shutdown_requested().
        let mut requested = self.shared.shutdown_requested.lock();
        *requested = true;
        self.shared.shutdown_cv.notify_all();
    }
}
