//! The TCP frontend: one reader thread per connection, frames in, frames
//! out.
//!
//! The server is a thin shell over [`Engine`]: it decodes a request
//! frame, calls the corresponding engine method, and writes exactly one
//! response frame. Decode errors are answered with a typed `Error`
//! response and the connection is closed — a malformed peer can cost at
//! most its own connection, never a worker or an admission slot
//! (admission happens after decoding succeeds).
//!
//! Shutdown is cooperative and graceful: the accept loop stops, open
//! connections observe the flag at their next read-timeout tick, and the
//! engine drains in-flight work before `shutdown()` returns.

use crate::engine::{Engine, SubmitOutcome};
use crate::proto::{
    write_frame, ErrorCode, FrameError, FrameReader, RecvError, Request, Response, MAX_METRICS_STR,
};
use occam_obs::Counter;
use parking_lot::{Condvar, Mutex};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection polls the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

struct ConnObs {
    opened: Counter,
    closed: Counter,
    frames_rx: Counter,
    frames_tx: Counter,
    proto_errors: Counter,
}

struct ServerShared {
    engine: Engine,
    stop: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    obs: ConnObs,
}

/// A running gateway server. Dropping the handle does not stop the
/// server; call [`GatewayServer::shutdown`].
pub struct GatewayServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl GatewayServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop.
    pub fn start(engine: Engine, addr: &str) -> std::io::Result<GatewayServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let reg = engine.runtime().obs().clone();
        let shared = Arc::new(ServerShared {
            engine,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            obs: ConnObs {
                opened: reg.counter("gateway.conn.opened"),
                closed: reg.counter("gateway.conn.closed"),
                frames_rx: reg.counter("gateway.frames.rx"),
                frames_tx: reg.counter("gateway.frames.tx"),
                proto_errors: reg.counter("gateway.proto.errors"),
            },
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("occam-gw-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(GatewayServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Blocks until some client sends a SHUTDOWN frame (used by the
    /// `gateway_serve` binary's main thread).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self.shared.shutdown_requested.lock();
        while !*requested {
            self.shared.shutdown_cv.wait(&mut requested);
        }
    }

    /// Graceful stop: close the accept loop, let connections wind down,
    /// and drain the engine. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection; the loop rechecks
        // the flag before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.engine.shutdown();
        // Release anyone parked in wait_shutdown_requested().
        let mut requested = self.shared.shutdown_requested.lock();
        *requested = true;
        self.shared.shutdown_cv.notify_all();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("occam-gw-conn".into())
            .spawn(move || serve_connection(stream, conn_shared))
            .expect("spawn connection thread");
        conn_threads.push(handle);
        // Reap finished connection threads so a long-lived server does
        // not accumulate join handles.
        conn_threads.retain(|t| !t.is_finished());
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

fn serve_connection(mut stream: TcpStream, shared: Arc<ServerShared>) {
    shared.obs.opened.inc();
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    // The read timeout applies to each read() syscall, so it can fire
    // with part of a frame already consumed (header and body arrive in
    // separate writes). FrameReader keeps that partial state across
    // timeout ticks — a slow-but-well-behaved client is never desynced.
    let mut reader = FrameReader::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let body = match reader.poll(&mut stream) {
            Ok(Some(body)) => body,
            // Timeout tick (mid-frame or at a boundary): any partial
            // frame stays buffered in `reader`; poll the stop flag.
            Ok(None) => continue,
            Err(RecvError::Closed) => break,
            Err(RecvError::Io(_)) => break,
            Err(RecvError::Frame(err)) => {
                shared.obs.proto_errors.inc();
                let _ = send(
                    &mut stream,
                    &shared,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: err.to_string(),
                    },
                );
                break;
            }
        };
        shared.obs.frames_rx.inc();
        let (response, hangup) = match Request::decode(&body) {
            Ok(req) => handle_request(&shared, req),
            Err(err) => {
                shared.obs.proto_errors.inc();
                (bad_request(err), true)
            }
        };
        if send(&mut stream, &shared, &response).is_err() || hangup {
            break;
        }
    }
    shared.obs.closed.inc();
}

fn bad_request(err: FrameError) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: err.to_string(),
    }
}

fn send(stream: &mut TcpStream, shared: &ServerShared, resp: &Response) -> std::io::Result<()> {
    write_frame(stream, &resp.encode())?;
    shared.obs.frames_tx.inc();
    Ok(())
}

/// Maps one decoded request to `(response, hang up after sending)`.
fn handle_request(shared: &ServerShared, req: Request) -> (Response, bool) {
    let engine = &shared.engine;
    match req {
        Request::Submit {
            workflow,
            scope,
            urgent,
            params,
        } => {
            let resp = match engine.submit(&workflow, &scope, urgent, &params) {
                SubmitOutcome::Accepted(ticket) => Response::Accepted { ticket },
                SubmitOutcome::Busy(retry_after_ms) => Response::Busy { retry_after_ms },
                SubmitOutcome::Rejected(code, message) => Response::Error { code, message },
            };
            (resp, false)
        }
        Request::Status { ticket } => {
            let (phase, detail) = engine.status(ticket);
            (
                Response::Status {
                    ticket,
                    phase,
                    detail,
                },
                false,
            )
        }
        Request::Cancel { ticket } => {
            let ok = engine.cancel(ticket);
            (Response::Cancelled { ticket, ok }, false)
        }
        Request::List => (
            Response::Catalog {
                entries: engine.list(),
            },
            false,
        ),
        Request::Metrics => {
            let json = engine.metrics_json();
            // The METRICS cap is generous (MAX_FRAME minus headroom) but
            // a pathological registry must get a typed error, not a
            // silently truncated — i.e. syntactically invalid — JSON blob.
            let resp = if json.len() > MAX_METRICS_STR {
                Response::Error {
                    code: ErrorCode::Internal,
                    message: format!(
                        "metrics registry JSON is {} bytes, exceeding the {} byte frame cap",
                        json.len(),
                        MAX_METRICS_STR
                    ),
                }
            } else {
                Response::Metrics { json }
            };
            (resp, false)
        }
        Request::Shutdown => {
            let mut requested = shared.shutdown_requested.lock();
            *requested = true;
            shared.shutdown_cv.notify_all();
            (Response::Bye, true)
        }
    }
}
