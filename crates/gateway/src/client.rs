//! A blocking gateway client: one request frame out, one response frame
//! in.
//!
//! Used by `gateway_loadgen`, the CI smoke test, and the stress tests.
//! The client is deliberately dumb — no retries, no pooling — so callers
//! (the load generator in particular) control backoff policy themselves.

use crate::engine::SubmitSpec;
use crate::proto::{read_frame, write_frame, RecvError, Request, Response, WirePhase};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// An error talking to the gateway.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Frame(crate::proto::FrameError),
    /// The server closed the connection mid-exchange.
    Closed,
    /// The response type did not match the request.
    UnexpectedResponse(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Closed => write!(f, "connection closed by gateway"),
            ClientError::UnexpectedResponse(r) => write!(f, "unexpected response {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Outcome of a submit round-trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubmitReply {
    /// Admitted under this ticket.
    Accepted(u64),
    /// Shed; retry after this many milliseconds.
    Busy(u64),
    /// Typed rejection.
    Rejected(crate::proto::ErrorCode, String),
}

/// A blocking connection to a gateway.
pub struct GatewayClient {
    stream: TcpStream,
}

impl GatewayClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7421`).
    pub fn connect(addr: &str) -> Result<GatewayClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(GatewayClient { stream })
    }

    /// Sets the read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        let body = match read_frame(&mut self.stream) {
            Ok(b) => b,
            Err(RecvError::Closed) => return Err(ClientError::Closed),
            Err(RecvError::Frame(e)) => return Err(ClientError::Frame(e)),
            Err(RecvError::Io(e)) => return Err(ClientError::Io(e)),
        };
        Response::decode(&body).map_err(ClientError::Frame)
    }

    /// Submits a catalog workflow.
    pub fn submit(
        &mut self,
        workflow: &str,
        scope: &str,
        urgent: bool,
        params: &[(String, String)],
    ) -> Result<SubmitReply, ClientError> {
        let req = Request::Submit {
            workflow: workflow.into(),
            scope: scope.into(),
            urgent,
            params: params.to_vec(),
        };
        match self.roundtrip(&req)? {
            Response::Accepted { ticket } => Ok(SubmitReply::Accepted(ticket)),
            Response::Busy { retry_after_ms } => Ok(SubmitReply::Busy(retry_after_ms)),
            Response::Error { code, message } => Ok(SubmitReply::Rejected(code, message)),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Pipelined submission: writes all `specs` as back-to-back SUBMIT
    /// frames (one syscall), then reads the same number of replies.
    ///
    /// Replies are returned in spec order — the reactor answers
    /// pipelined frames in request order — and among the accepted
    /// entries tickets ascend in spec order too, since the whole batch
    /// is admitted by one engine shard in one call. This is how the
    /// load generator reaches the wire at >10⁴ submissions/s: admission
    /// cost and syscalls amortize over the batch.
    pub fn submit_batch(&mut self, specs: &[SubmitSpec]) -> Result<Vec<SubmitReply>, ClientError> {
        let mut wire = Vec::with_capacity(specs.len() * 64);
        for spec in specs {
            let req = Request::Submit {
                workflow: spec.workflow.clone(),
                scope: spec.scope.clone(),
                urgent: spec.urgent,
                params: spec.params.clone(),
            };
            write_frame(&mut wire, &req.encode())?;
        }
        self.stream.write_all(&wire)?;
        let mut replies = Vec::with_capacity(specs.len());
        for _ in specs {
            let body = match read_frame(&mut self.stream) {
                Ok(b) => b,
                Err(RecvError::Closed) => return Err(ClientError::Closed),
                Err(RecvError::Frame(e)) => return Err(ClientError::Frame(e)),
                Err(RecvError::Io(e)) => return Err(ClientError::Io(e)),
            };
            replies.push(match Response::decode(&body).map_err(ClientError::Frame)? {
                Response::Accepted { ticket } => SubmitReply::Accepted(ticket),
                Response::Busy { retry_after_ms } => SubmitReply::Busy(retry_after_ms),
                Response::Error { code, message } => SubmitReply::Rejected(code, message),
                other => return Err(ClientError::UnexpectedResponse(other)),
            });
        }
        Ok(replies)
    }

    /// Polls a ticket's phase.
    pub fn status(&mut self, ticket: u64) -> Result<(WirePhase, String), ClientError> {
        match self.roundtrip(&Request::Status { ticket })? {
            Response::Status { phase, detail, .. } => Ok((phase, detail)),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Requests cancellation of a ticket; `Ok(true)` if it was still
    /// live.
    pub fn cancel(&mut self, ticket: u64) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Cancel { ticket })? {
            Response::Cancelled { ok, .. } => Ok(ok),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Fetches the catalog as `(name, description, read_only)` rows.
    pub fn list(&mut self) -> Result<Vec<(String, String, bool)>, ClientError> {
        match self.roundtrip(&Request::List)? {
            Response::Catalog { entries } => Ok(entries),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Fetches the gateway's metrics registry as JSON.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }

    /// Asks the gateway to shut down; returns once `Bye` arrives.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::UnexpectedResponse(other)),
        }
    }
}
