//! The workflow catalog: named, parameterized management programs.
//!
//! A gateway client does not ship code — it names a catalog entry and a
//! region scope, like calling a stored procedure. Each entry builds an
//! ordinary Occam management program (a closure over [`TaskCtx`]) from a
//! [`WorkflowSpec`], so everything submitted through the gateway runs
//! under the full runtime guardrails: strict-2PL region locking,
//! execution logging, rollback suggestion, and (new in this layer)
//! cooperative cancellation checkpoints.
//!
//! Every standard workflow acquires its region with a *single*
//! `ctx.network(..)` call and holds it to commit. One acquisition per
//! task means no lock-order cycles between catalog workflows — the
//! gateway stress tests rely on this to rule out deadlock aborts.

use occam_core::{Isolation, TaskCtx, TaskError, TaskResult};
use occam_emunet::FuncArgs;
use occam_netdb::attrs;
use std::collections::BTreeMap;

/// A validated submission: which workflow, over which region, with which
/// parameters.
#[derive(Clone, Debug)]
pub struct WorkflowSpec {
    /// Region scope as a glob over device names (e.g. `dc01.pod03.*`).
    pub scope: String,
    /// Workflow parameters by name.
    pub params: BTreeMap<String, String>,
}

impl WorkflowSpec {
    /// Builds a spec from the wire representation of parameters.
    pub fn new(scope: &str, params: &[(String, String)]) -> WorkflowSpec {
        WorkflowSpec {
            scope: scope.to_string(),
            params: params.iter().cloned().collect(),
        }
    }

    fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }
}

/// A built management program, ready for the runtime. `Fn` (not
/// `FnOnce`): workflows close over an immutable [`WorkflowSpec`], so the
/// engine can re-execute them under a retry policy after transient
/// aborts.
pub type Program = Box<dyn Fn(&TaskCtx) -> TaskResult<()> + Send + 'static>;

/// One catalog row.
pub struct CatalogEntry {
    /// Stable workflow name clients submit by.
    pub name: &'static str,
    /// One-line human description (returned by LIST).
    pub description: &'static str,
    /// Accepted parameter names, for documentation.
    pub params: &'static [&'static str],
    /// Whether the workflow only reads state (uses a read-intent region).
    pub read_only: bool,
    /// The isolation mode the engine submits this workflow under.
    /// Read-mostly workflows declare [`Isolation::Occ`] and run lock-free
    /// against a frozen snapshot; everything that touches devices stays
    /// pessimistic (device functions cannot be staged).
    pub isolation: Isolation,
    build: fn(WorkflowSpec) -> Program,
}

/// The named-workflow catalog.
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// The standard management workflows, assembled from the emulated
    /// device-function library (paper §2 case studies).
    pub fn standard() -> Catalog {
        Catalog {
            entries: vec![
                CatalogEntry {
                    name: "drain",
                    description: "Mark a region under maintenance and drain traffic off it",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_drain,
                },
                CatalogEntry {
                    name: "undrain",
                    description: "Return a drained region to active service",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_undrain,
                },
                CatalogEntry {
                    name: "device_maintenance",
                    description: "Full maintenance pass: drain, run optics tests, undrain",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_device_maintenance,
                },
                CatalogEntry {
                    name: "firmware_upgrade",
                    description: "Drain a region, push firmware `version`, and undrain",
                    params: &["version"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_firmware_upgrade,
                },
                CatalogEntry {
                    name: "config_push",
                    description: "Generate and push configuration `generation` to a region",
                    params: &["generation"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_config_push,
                },
                CatalogEntry {
                    name: "planned_update",
                    description: "Diff a target config, synthesize an invariant-preserving \
                                  wave plan, and execute it wave-by-wave",
                    params: &["generation", "firmware"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    build: build_planned_update,
                },
                CatalogEntry {
                    name: "status_audit",
                    description: "Read-only audit of device status across a region",
                    params: &[],
                    read_only: true,
                    isolation: Isolation::Occ { max_retries: 3 },
                    build: build_status_audit,
                },
            ],
        }
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries, in catalog order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Builds the program for `name`, or `None` if unknown.
    pub fn build(&self, name: &str, spec: WorkflowSpec) -> Option<Program> {
        self.get(name).map(|e| (e.build)(spec))
    }
}

fn build_drain(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        region.close();
        Ok(())
    })
}

fn build_undrain(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_device_maintenance(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        ctx.check_cancelled()?;
        region.apply("f_optic_test")?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_firmware_upgrade(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let version = spec
            .param("version")
            .map(str::to_string)
            .ok_or_else(|| TaskError::Failed("firmware_upgrade requires param `version`".into()))?;
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        ctx.check_cancelled()?;
        region.set(attrs::FIRMWARE_VERSION, version.as_str().into())?;
        region.set(
            attrs::FIRMWARE_BINARY,
            format!("img-{version}").as_str().into(),
        )?;
        // `admin=drained` keeps the push from racing the drain we just did
        // (the default overwrites admin state to active — case study #1).
        region.apply_with(
            "f_push",
            &FuncArgs::one("admin", "drained").with("firmware", &version),
        )?;
        ctx.check_cancelled()?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_config_push(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let generation = spec
            .param("generation")
            .map(str::to_string)
            .ok_or_else(|| TaskError::Failed("config_push requires param `generation`".into()))?;
        let region = ctx.network(&spec.scope)?;
        region.set("CONFIG_VERSION", generation.as_str().into())?;
        region.apply("f_create_config")?;
        ctx.check_cancelled()?;
        region.apply("f_push")?;
        region.close();
        Ok(())
    })
}

/// The consistent-update coordinator (`DESIGN.md` §15). Unlike every
/// other catalog workflow it acquires **no region itself**: it snapshots
/// the database, diffs it against the requested target (scoped
/// `CONFIG_VERSION`, optionally firmware), synthesizes a wave plan that
/// the model checker proves safe at every intermediate state, and then
/// runs each wave as its own strict-2PL task through the plan executor.
/// Lock-order safety with concurrent workflows follows from the wave
/// tasks' single-acquisition discipline, not from the coordinator.
fn build_planned_update(spec: WorkflowSpec) -> Program {
    use occam_netdb::{StoreSnapshot, WalRecord};
    use occam_regex::Pattern;
    use occam_update::{
        diff as config_diff, execute_plan, ExecOptions, ModelState, Synthesizer, TrafficClass,
        UpdateObs,
    };

    Box::new(move |ctx| {
        let generation = spec
            .param("generation")
            .map(str::to_string)
            .ok_or_else(|| {
                TaskError::Failed("planned_update requires param `generation`".into())
            })?;
        let firmware = spec.param("firmware").map(str::to_string);
        let scope = Pattern::from_glob(&spec.scope)
            .map_err(|e| TaskError::Failed(format!("bad scope glob `{}`: {e}", spec.scope)))?;
        let rt = ctx.runtime();
        let obs = UpdateObs::bind(rt.obs());

        // Build the target snapshot: the current inventory replayed into
        // a scratch store, with the requested deltas applied on top. The
        // unified read accessor pins the diff base to one commit position.
        let old = rt.db().read_view();
        let mut records: Vec<WalRecord> = old
            .select_devices(&Pattern::universe())
            .into_iter()
            .map(|name| {
                let attrs = old.device_attrs(&name).unwrap_or_default();
                WalRecord::InsertDevice {
                    name,
                    attrs: attrs.into_iter().collect(),
                }
            })
            .collect();
        for name in old.select_devices(&scope) {
            records.push(WalRecord::SetDeviceAttr {
                name: name.clone(),
                attr: "CONFIG_VERSION".into(),
                value: generation.as_str().into(),
            });
            if let Some(fw) = &firmware {
                records.push(WalRecord::SetDeviceAttr {
                    name: name.clone(),
                    attr: attrs::FIRMWARE_VERSION.into(),
                    value: fw.as_str().into(),
                });
                records.push(WalRecord::SetDeviceAttr {
                    name,
                    attr: attrs::FIRMWARE_BINARY.into(),
                    value: format!("img-{fw}").as_str().into(),
                });
            }
        }
        let target = StoreSnapshot::replay(&records);
        let ops = config_diff(&old, &target);
        obs.diff_ops.add(ops.len() as u64);
        if ops.is_empty() {
            return Ok(());
        }

        // Invariants come from the emulated network when one is wired:
        // its topology, its installed flows as traffic classes, and its
        // inspected-traffic middlebox as a waypoint constraint. Other
        // services get an unconstrained (empty-topology) plan.
        let (topo, classes) = match rt
            .service()
            .as_any()
            .downcast_ref::<occam_emunet::EmuService>()
        {
            Some(svc) => {
                let net = svc.net();
                let net = net.lock();
                let waypoint = net
                    .middlebox
                    .and_then(|mb| Pattern::from_names(&[net.topo.device(mb).name.as_str()]).ok());
                let classes: Vec<TrafficClass> = net
                    .flows()
                    .iter()
                    .map(|f| {
                        let mut class =
                            TrafficClass::pair(format!("flow-{}", f.id), f.src, f.dst, f.id);
                        if f.class == occam_emunet::FlowClass::Inspected {
                            class.waypoint = waypoint.clone();
                        }
                        class
                    })
                    .collect();
                (net.topo.clone(), classes)
            }
            None => (occam_topology::Topology::new(), Vec::new()),
        };

        // Devices already drained in the current config start drained in
        // the model, so the planner never undrains something it did not
        // drain itself.
        let mut base = ModelState::default();
        for (name, status) in old.get_attr(&Pattern::universe(), attrs::DEVICE_STATUS) {
            let drained = status.as_str() == Some(attrs::STATUS_DRAINED)
                || status.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE);
            if drained {
                if let Some(id) = topo.device_by_name(&name) {
                    base.drained.insert(id);
                }
            }
        }

        let plan = Synthesizer::new(&topo, &classes)
            .with_base(base)
            .with_obs(&obs)
            .synthesize(&ops)
            .map_err(|e| TaskError::Failed(format!("update synthesis failed: {e}")))?;
        ctx.check_cancelled()?;

        let opts = ExecOptions {
            obs: Some(obs),
            ..ExecOptions::default()
        };
        let report = execute_plan(rt, &plan, &opts, None);
        if !report.ok() {
            return Err(TaskError::Failed(format!(
                "planned update stopped at wave boundary {}/{}: {}",
                report.waves_committed,
                plan.waves.len(),
                report.error.unwrap_or_else(|| "unknown".into())
            )));
        }
        Ok(())
    })
}

fn build_status_audit(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network_read(&spec.scope)?;
        // One lock-free snapshot: device list and statuses come from the
        // same committed version, so the audit can never tear across a
        // concurrent commit (and never blocks a writer).
        let view = region.view()?;
        let devices = view.select_devices(region.scope());
        let statuses = view.get_attr(region.scope(), attrs::DEVICE_STATUS);
        ctx.check_cancelled()?;
        if statuses.len() > devices.len() {
            return Err(TaskError::Failed(
                "audit saw more statuses than devices".into(),
            ));
        }
        region.close();
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_lookup() {
        let cat = Catalog::standard();
        assert_eq!(cat.entries().len(), 7);
        assert!(cat.get("firmware_upgrade").is_some());
        assert!(cat.get("planned_update").is_some());
        assert!(cat.get("rm -rf").is_none());
        let audit = cat.get("status_audit").unwrap();
        assert!(audit.read_only);
        assert!(!cat.get("drain").unwrap().read_only);
    }

    #[test]
    fn missing_required_param_fails_at_run_not_build() {
        let cat = Catalog::standard();
        let spec = WorkflowSpec::new("dc01.*", &[]);
        // Building succeeds; the error surfaces as a normal task failure.
        assert!(cat.build("firmware_upgrade", spec).is_some());
    }

    #[test]
    fn planned_update_executes_waves_and_lands_on_target_config() {
        use occam_core::{Runtime, TaskState};
        use occam_emunet::{EmuNet, EmuService, FlowClass};
        use occam_netdb::Database;
        use occam_regex::Pattern;
        use occam_topology::FatTree;
        use std::sync::Arc;

        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
                ],
            )
            .unwrap();
        }
        let mut net = EmuNet::from_fattree(&ft);
        // Cross-pod flows pin every pod's aggs: the planner must stagger
        // the upgrade instead of draining both aggs of a pod at once.
        for pod in 0..2 {
            let src = ft.hosts[pod][0][0];
            let dst = ft.hosts[(pod + 1) % 2][1][0];
            net.add_flow(src, dst, 100.0, FlowClass::Background);
        }
        let service = Arc::new(EmuService::new(net));
        let rt = Runtime::new(Arc::clone(&db), service);

        let prog = Catalog::standard()
            .build(
                "planned_update",
                WorkflowSpec::new(
                    "dc01.pod0[01].agg*",
                    &[
                        ("generation".into(), "g7".into()),
                        ("firmware".into(), "fw-2.0.0".into()),
                    ],
                ),
            )
            .unwrap();
        let report = rt.task("planned_update").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);

        let snap = db.snapshot();
        let scope = Pattern::from_glob("dc01.pod0[01].agg*").unwrap();
        let firmwares = snap.get_attr(&scope, attrs::FIRMWARE_VERSION);
        assert_eq!(firmwares.len(), 4);
        assert!(firmwares.values().all(|v| v.as_str() == Some("fw-2.0.0")));
        let gens = snap.get_attr(&scope, "CONFIG_VERSION");
        assert!(gens.values().all(|v| v.as_str() == Some("g7")));
        // Every upgraded device is back in active service.
        let statuses = snap.get_attr(&scope, attrs::DEVICE_STATUS);
        assert!(statuses
            .values()
            .all(|v| v.as_str() == Some(attrs::STATUS_ACTIVE)));
        // The plan ran through the executor, wave by wave.
        assert!(rt.obs().counter_value("update.exec.waves") >= 2);
        assert_eq!(rt.obs().counter_value("update.exec.failures"), 0);
    }
}
