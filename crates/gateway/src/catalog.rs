//! The workflow catalog: named, parameterized management programs.
//!
//! A gateway client does not ship code — it names a catalog entry and a
//! region scope, like calling a stored procedure. Every entry is a
//! declarative **spec template** (`occam-spec`): the catalog holds no
//! hand-built programs, and [`Catalog::build`] goes through
//! [`occam_spec::template_program`], which instantiates the template
//! with the submission's scope and parameters, parses it, statically
//! validates that its lowering is rollback-grammar-conformant, and
//! compiles it — all at task execution time, so a missing required
//! parameter surfaces as a normal task failure under the full runtime
//! guardrails (strict-2PL region locking, execution logging, rollback
//! suggestion, cooperative cancellation).
//!
//! Every direct-strategy workflow acquires its region with a *single*
//! `ctx.network(..)` call and holds it to commit. One acquisition per
//! task means no lock-order cycles between catalog workflows — the
//! gateway stress tests rely on this to rule out deadlock aborts.

use occam_core::Isolation;
use std::collections::BTreeMap;

pub use occam_spec::Program;

/// A validated submission: which workflow, over which region, with which
/// parameters.
#[derive(Clone, Debug)]
pub struct WorkflowSpec {
    /// Region scope as a glob over device names (e.g. `dc01.pod03.*`).
    pub scope: String,
    /// Workflow parameters by name.
    pub params: BTreeMap<String, String>,
}

impl WorkflowSpec {
    /// Builds a spec from the wire representation of parameters.
    pub fn new(scope: &str, params: &[(String, String)]) -> WorkflowSpec {
        WorkflowSpec {
            scope: scope.to_string(),
            params: params.iter().cloned().collect(),
        }
    }
}

/// One catalog row.
pub struct CatalogEntry {
    /// Stable workflow name clients submit by.
    pub name: &'static str,
    /// One-line human description (returned by LIST).
    pub description: &'static str,
    /// Accepted parameter names, for documentation. A parameter used on
    /// a `?`-prefixed template line is optional; the rest are required
    /// at execution time.
    pub params: &'static [&'static str],
    /// Whether the workflow only reads state (uses a read-intent region).
    pub read_only: bool,
    /// The isolation mode the engine submits this workflow under.
    /// Read-mostly workflows declare [`Isolation::Occ`] and run lock-free
    /// against a frozen snapshot; everything that touches devices stays
    /// pessimistic (device functions cannot be staged).
    pub isolation: Isolation,
    /// The declarative spec template this workflow compiles from.
    pub template: &'static str,
}

/// The named-workflow catalog.
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// The standard management workflows, declared as spec templates
    /// (paper §2 case studies).
    pub fn standard() -> Catalog {
        Catalog {
            entries: vec![
                CatalogEntry {
                    name: "drain",
                    description: "Mark a region under maintenance and drain traffic off it",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec drain {\n\
                               \x20 scope $scope\n\
                               \x20 ensure status under_maintenance\n\
                               }\n",
                },
                CatalogEntry {
                    name: "undrain",
                    description: "Return a drained region to active service",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec undrain {\n\
                               \x20 scope $scope\n\
                               \x20 ensure status active\n\
                               }\n",
                },
                CatalogEntry {
                    name: "device_maintenance",
                    description: "Full maintenance pass: drain, run optics tests, undrain",
                    params: &[],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec device_maintenance {\n\
                               \x20 scope $scope\n\
                               \x20 test optic\n\
                               \x20 ensure status active\n\
                               }\n",
                },
                CatalogEntry {
                    name: "firmware_upgrade",
                    description: "Drain a region, push firmware `version`, and undrain",
                    params: &["version"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec firmware_upgrade {\n\
                               \x20 scope $scope\n\
                               \x20 target firmware $version\n\
                               \x20 ensure status active\n\
                               }\n",
                },
                CatalogEntry {
                    name: "config_push",
                    description: "Generate and push configuration `generation` to a region",
                    params: &["generation"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec config_push {\n\
                               \x20 scope $scope\n\
                               \x20 target config $generation\n\
                               }\n",
                },
                CatalogEntry {
                    name: "planned_update",
                    description: "Diff a target config, synthesize an invariant-preserving \
                                  wave plan, and execute it wave-by-wave",
                    params: &["generation", "firmware", "waypoint"],
                    read_only: false,
                    isolation: Isolation::TwoPl,
                    template: "spec planned_update {\n\
                               \x20 scope $scope\n\
                               \x20 strategy waves\n\
                               \x20 target config $generation\n\
                               ? target firmware $firmware\n\
                               ? require waypoint $waypoint\n\
                               }\n",
                },
                CatalogEntry {
                    name: "status_audit",
                    description: "Read-only audit reporting every device not in active service",
                    params: &[],
                    read_only: true,
                    isolation: Isolation::Occ { max_retries: 3 },
                    template: "spec status_audit {\n\
                               \x20 scope $scope\n\
                               \x20 audit\n\
                               \x20 expect status active\n\
                               }\n",
                },
                CatalogEntry {
                    name: "compliance_audit",
                    description: "Strict audit: fail unless every device has `attr` = `value`",
                    params: &["attr", "value"],
                    read_only: true,
                    isolation: Isolation::Occ { max_retries: 3 },
                    template: "spec compliance_audit {\n\
                               \x20 scope $scope\n\
                               \x20 audit strict\n\
                               \x20 expect $attr = $value\n\
                               }\n",
                },
            ],
        }
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries, in catalog order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Builds the program for `name` through the spec compiler, or
    /// `None` if unknown. Compilation itself (and therefore validation)
    /// happens when the program first runs.
    pub fn build(&self, name: &str, spec: WorkflowSpec) -> Option<Program> {
        self.get(name)
            .map(|e| occam_spec::template_program(e.template, spec.scope, spec.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_netdb::attrs;

    #[test]
    fn standard_catalog_lookup() {
        let cat = Catalog::standard();
        assert_eq!(cat.entries().len(), 8);
        assert!(cat.get("firmware_upgrade").is_some());
        assert!(cat.get("planned_update").is_some());
        assert!(cat.get("compliance_audit").is_some());
        assert!(cat.get("rm -rf").is_none());
        let audit = cat.get("status_audit").unwrap();
        assert!(audit.read_only);
        assert!(!cat.get("drain").unwrap().read_only);
    }

    #[test]
    fn every_entry_is_a_valid_spec_template() {
        // Instantiate each template with dummy parameters and run it
        // through the full parse + validate pipeline: the catalog must
        // never ship a template whose lowering could violate the
        // rollback grammar.
        let cat = Catalog::standard();
        for entry in cat.entries() {
            let params: BTreeMap<String, String> = entry
                .params
                .iter()
                .map(|p| (p.to_string(), format!("v-{p}")))
                .collect();
            let src = occam_spec::instantiate(entry.template, "dc01.*", &params)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let spec =
                occam_spec::parse_spec(&src).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_eq!(spec.name, entry.name);
            occam_spec::validate(&spec).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            // Entry metadata agrees with the compiled semantics.
            let compiled = occam_spec::compile(spec).unwrap();
            assert_eq!(compiled.read_only(), entry.read_only, "{}", entry.name);
            assert_eq!(compiled.isolation(), entry.isolation, "{}", entry.name);
        }
    }

    #[test]
    fn missing_required_param_fails_at_run_not_build() {
        let cat = Catalog::standard();
        let spec = WorkflowSpec::new("dc01.*", &[]);
        // Building succeeds; the error surfaces as a normal task failure.
        assert!(cat.build("firmware_upgrade", spec).is_some());
    }

    #[test]
    fn planned_update_executes_waves_and_lands_on_target_config() {
        use occam_core::{Runtime, TaskState};
        use occam_emunet::{EmuNet, EmuService, FlowClass};
        use occam_netdb::Database;
        use occam_regex::Pattern;
        use occam_topology::FatTree;
        use std::sync::Arc;

        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::new());
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![
                    (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
                    (attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into()),
                ],
            )
            .unwrap();
        }
        let mut net = EmuNet::from_fattree(&ft);
        // Cross-pod flows pin every pod's aggs: the planner must stagger
        // the upgrade instead of draining both aggs of a pod at once.
        for pod in 0..2 {
            let src = ft.hosts[pod][0][0];
            let dst = ft.hosts[(pod + 1) % 2][1][0];
            net.add_flow(src, dst, 100.0, FlowClass::Background);
        }
        let service = Arc::new(EmuService::new(net));
        let rt = Runtime::new(Arc::clone(&db), service);

        let prog = Catalog::standard()
            .build(
                "planned_update",
                WorkflowSpec::new(
                    "dc01.pod0[01].agg*",
                    &[
                        ("generation".into(), "g7".into()),
                        ("firmware".into(), "fw-2.0.0".into()),
                    ],
                ),
            )
            .unwrap();
        let report = rt.task("planned_update").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);

        let snap = db.snapshot();
        let scope = Pattern::from_glob("dc01.pod0[01].agg*").unwrap();
        let firmwares = snap.get_attr(&scope, attrs::FIRMWARE_VERSION);
        assert_eq!(firmwares.len(), 4);
        assert!(firmwares.values().all(|v| v.as_str() == Some("fw-2.0.0")));
        let gens = snap.get_attr(&scope, "CONFIG_VERSION");
        assert!(gens.values().all(|v| v.as_str() == Some("g7")));
        // Every upgraded device is back in active service.
        let statuses = snap.get_attr(&scope, attrs::DEVICE_STATUS);
        assert!(statuses
            .values()
            .all(|v| v.as_str() == Some(attrs::STATUS_ACTIVE)));
        // The plan ran through the executor, wave by wave.
        assert!(rt.obs().counter_value("update.exec.waves") >= 2);
        assert_eq!(rt.obs().counter_value("update.exec.failures"), 0);
    }

    #[test]
    fn status_audit_reports_the_non_compliant_set() {
        use occam_core::{Runtime, TaskState};
        use occam_emunet::{EmuNet, EmuService};
        use occam_netdb::{Database, WriteOp};
        use occam_obs::EventKind;
        use occam_topology::FatTree;
        use std::sync::Arc;

        let reg = occam_obs::Registry::new();
        let ft = FatTree::build(1, 4).unwrap();
        let db = Arc::new(Database::with_obs(&reg));
        for (_, d) in ft
            .topo
            .devices()
            .filter(|(_, d)| d.role != occam_topology::Role::Host)
        {
            db.insert_device(
                &d.name,
                vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
            )
            .unwrap();
        }
        db.batch(&[
            WriteOp::SetDeviceAttr {
                name: "dc01.pod00.tor00".into(),
                attr: attrs::DEVICE_STATUS.into(),
                value: attrs::STATUS_DRAINED.into(),
            },
            WriteOp::SetDeviceAttr {
                name: "dc01.pod01.agg00".into(),
                attr: attrs::DEVICE_STATUS.into(),
                value: attrs::STATUS_UNDER_MAINTENANCE.into(),
            },
        ])
        .unwrap();
        let service = Arc::new(EmuService::new(EmuNet::from_fattree(&ft)));
        let rt = Runtime::with_obs(db, service, occam_sched::Policy::Ldsf, &reg);

        let prog = Catalog::standard()
            .build("status_audit", WorkflowSpec::new("dc01.*", &[]))
            .unwrap();
        let report = rt.task("status_audit").run(|ctx| prog(ctx));
        // Plain audits succeed and *report*: the exact non-compliant
        // device count lands in the counters and the event ring (the old
        // audit only sanity-checked map sizes).
        assert_eq!(report.state, TaskState::Completed, "{:?}", report.error);
        assert_eq!(rt.obs().counter_value("spec.audit.non_compliant"), 2);
        assert!(rt.obs().events().snapshot().iter().any(|e| matches!(
            &e.kind,
            EventKind::AuditNonCompliant {
                spec,
                non_compliant: 2,
                ..
            } if spec == "status_audit"
        )));

        // The strict form turns the same view into a failure.
        let prog = Catalog::standard()
            .build(
                "compliance_audit",
                WorkflowSpec::new(
                    "dc01.*",
                    &[
                        ("attr".into(), attrs::DEVICE_STATUS.into()),
                        ("value".into(), attrs::STATUS_ACTIVE.into()),
                    ],
                ),
            )
            .unwrap();
        let report = rt.task("compliance_audit").run(|ctx| prog(ctx));
        assert_eq!(report.state, TaskState::Aborted);
    }
}
