//! The workflow catalog: named, parameterized management programs.
//!
//! A gateway client does not ship code — it names a catalog entry and a
//! region scope, like calling a stored procedure. Each entry builds an
//! ordinary Occam management program (a closure over [`TaskCtx`]) from a
//! [`WorkflowSpec`], so everything submitted through the gateway runs
//! under the full runtime guardrails: strict-2PL region locking,
//! execution logging, rollback suggestion, and (new in this layer)
//! cooperative cancellation checkpoints.
//!
//! Every standard workflow acquires its region with a *single*
//! `ctx.network(..)` call and holds it to commit. One acquisition per
//! task means no lock-order cycles between catalog workflows — the
//! gateway stress tests rely on this to rule out deadlock aborts.

use occam_core::{TaskCtx, TaskError, TaskResult};
use occam_emunet::FuncArgs;
use occam_netdb::attrs;
use std::collections::BTreeMap;

/// A validated submission: which workflow, over which region, with which
/// parameters.
#[derive(Clone, Debug)]
pub struct WorkflowSpec {
    /// Region scope as a glob over device names (e.g. `dc01.pod03.*`).
    pub scope: String,
    /// Workflow parameters by name.
    pub params: BTreeMap<String, String>,
}

impl WorkflowSpec {
    /// Builds a spec from the wire representation of parameters.
    pub fn new(scope: &str, params: &[(String, String)]) -> WorkflowSpec {
        WorkflowSpec {
            scope: scope.to_string(),
            params: params.iter().cloned().collect(),
        }
    }

    fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }
}

/// A built management program, ready for the runtime. `Fn` (not
/// `FnOnce`): workflows close over an immutable [`WorkflowSpec`], so the
/// engine can re-execute them under a retry policy after transient
/// aborts.
pub type Program = Box<dyn Fn(&TaskCtx) -> TaskResult<()> + Send + 'static>;

/// One catalog row.
pub struct CatalogEntry {
    /// Stable workflow name clients submit by.
    pub name: &'static str,
    /// One-line human description (returned by LIST).
    pub description: &'static str,
    /// Accepted parameter names, for documentation.
    pub params: &'static [&'static str],
    /// Whether the workflow only reads state (uses a read-intent region).
    pub read_only: bool,
    build: fn(WorkflowSpec) -> Program,
}

/// The named-workflow catalog.
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// The standard management workflows, assembled from the emulated
    /// device-function library (paper §2 case studies).
    pub fn standard() -> Catalog {
        Catalog {
            entries: vec![
                CatalogEntry {
                    name: "drain",
                    description: "Mark a region under maintenance and drain traffic off it",
                    params: &[],
                    read_only: false,
                    build: build_drain,
                },
                CatalogEntry {
                    name: "undrain",
                    description: "Return a drained region to active service",
                    params: &[],
                    read_only: false,
                    build: build_undrain,
                },
                CatalogEntry {
                    name: "device_maintenance",
                    description: "Full maintenance pass: drain, run optics tests, undrain",
                    params: &[],
                    read_only: false,
                    build: build_device_maintenance,
                },
                CatalogEntry {
                    name: "firmware_upgrade",
                    description: "Drain a region, push firmware `version`, and undrain",
                    params: &["version"],
                    read_only: false,
                    build: build_firmware_upgrade,
                },
                CatalogEntry {
                    name: "config_push",
                    description: "Generate and push configuration `generation` to a region",
                    params: &["generation"],
                    read_only: false,
                    build: build_config_push,
                },
                CatalogEntry {
                    name: "status_audit",
                    description: "Read-only audit of device status across a region",
                    params: &[],
                    read_only: true,
                    build: build_status_audit,
                },
            ],
        }
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries, in catalog order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Builds the program for `name`, or `None` if unknown.
    pub fn build(&self, name: &str, spec: WorkflowSpec) -> Option<Program> {
        self.get(name).map(|e| (e.build)(spec))
    }
}

fn build_drain(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        region.close();
        Ok(())
    })
}

fn build_undrain(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_device_maintenance(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        ctx.check_cancelled()?;
        region.apply("f_optic_test")?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_firmware_upgrade(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let version = spec
            .param("version")
            .map(str::to_string)
            .ok_or_else(|| TaskError::Failed("firmware_upgrade requires param `version`".into()))?;
        let region = ctx.network(&spec.scope)?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_UNDER_MAINTENANCE.into())?;
        region.apply("f_drain")?;
        ctx.check_cancelled()?;
        region.set(attrs::FIRMWARE_VERSION, version.as_str().into())?;
        region.set(
            attrs::FIRMWARE_BINARY,
            format!("img-{version}").as_str().into(),
        )?;
        // `admin=drained` keeps the push from racing the drain we just did
        // (the default overwrites admin state to active — case study #1).
        region.apply_with(
            "f_push",
            &FuncArgs::one("admin", "drained").with("firmware", &version),
        )?;
        ctx.check_cancelled()?;
        region.apply("f_undrain")?;
        region.set(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE.into())?;
        region.close();
        Ok(())
    })
}

fn build_config_push(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let generation = spec
            .param("generation")
            .map(str::to_string)
            .ok_or_else(|| TaskError::Failed("config_push requires param `generation`".into()))?;
        let region = ctx.network(&spec.scope)?;
        region.set("CONFIG_VERSION", generation.as_str().into())?;
        region.apply("f_create_config")?;
        ctx.check_cancelled()?;
        region.apply("f_push")?;
        region.close();
        Ok(())
    })
}

fn build_status_audit(spec: WorkflowSpec) -> Program {
    Box::new(move |ctx| {
        let region = ctx.network_read(&spec.scope)?;
        // One lock-free snapshot: device list and statuses come from the
        // same committed version, so the audit can never tear across a
        // concurrent commit (and never blocks a writer).
        let view = region.view()?;
        let devices = view.select_devices(region.scope());
        let statuses = view.get_attr(region.scope(), attrs::DEVICE_STATUS);
        ctx.check_cancelled()?;
        if statuses.len() > devices.len() {
            return Err(TaskError::Failed(
                "audit saw more statuses than devices".into(),
            ));
        }
        region.close();
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_lookup() {
        let cat = Catalog::standard();
        assert_eq!(cat.entries().len(), 6);
        assert!(cat.get("firmware_upgrade").is_some());
        assert!(cat.get("rm -rf").is_none());
        let audit = cat.get("status_audit").unwrap();
        assert!(audit.read_only);
        assert!(!cat.get("drain").unwrap().read_only);
    }

    #[test]
    fn missing_required_param_fails_at_run_not_build() {
        let cat = Catalog::standard();
        let spec = WorkflowSpec::new("dc01.*", &[]);
        // Building succeeds; the error surfaces as a normal task failure.
        assert!(cat.build("firmware_upgrade", spec).is_some());
    }
}
