//! Property tests for the observability instruments: histogram bucket
//! boundaries and quantile laws, merge equivalence, and event-ring
//! bounding/ordering under concurrent writers.

use occam_obs::{EventKind, EventRing, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,                           // exact unit buckets
            16u64..1_000,                       // small latencies
            1_000u64..10_000_000,               // µs..ms range
            (0u32..63).prop_map(|e| 1u64 << e), // bucket boundaries
            Just(u64::MAX),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// count/sum/min/max are exact, and every quantile lies inside
    /// `[min, max]` within one bucket of the true (sorted) quantile.
    #[test]
    fn histogram_totals_exact_quantiles_bounded(samples in arb_samples()) {
        let h = Histogram::new();
        let mut sum = 0u128;
        for &v in &samples {
            h.record(v);
            sum += v as u128;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        // The histogram's sum saturates at u64::MAX only if the true sum does.
        if sum <= u64::MAX as u128 {
            prop_assert_eq!(h.sum(), sum as u64);
        }
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = h.quantile(q);
            prop_assert!(got >= h.min() && got <= h.max(), "q={} -> {}", q, got);
            // Relative error vs the true quantile is within one bucket
            // (1/8 of the value) in either direction.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let lo = truth.saturating_sub(truth / 8 + 1);
            let hi = truth.saturating_add(truth / 8 + 1);
            prop_assert!(got >= lo && got <= hi,
                "q={} got={} truth={}", q, got, truth);
        }
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_monotone(samples in arb_samples()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let cur = snap.quantile(q);
            prop_assert!(cur >= prev, "q={} {} < {}", q, cur, prev);
            prev = cur;
        }
    }

    /// Merging two histograms is indistinguishable from recording all
    /// samples into one.
    #[test]
    fn histogram_merge_equivalence(xs in arb_samples(), ys in arb_samples()) {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), both.snapshot());
    }

    /// Bucket counts always total the sample count, and no sample lands
    /// outside the fixed bucket range.
    #[test]
    fn histogram_buckets_conserve_count(samples in arb_samples()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets.len(), NUM_BUCKETS);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), samples.len() as u64);
    }

    /// The ring never exceeds its capacity, keeps events in sequence
    /// order, and accounts for every drop.
    #[test]
    fn ring_bounded_and_ordered(cap in 1usize..16, n in 0u64..64) {
        let r = EventRing::with_capacity(cap);
        for t in 0..n {
            r.record(EventKind::TaskCompleted { task: t });
        }
        prop_assert!(r.len() <= cap);
        prop_assert_eq!(r.len() as u64 + r.dropped(), n);
        prop_assert_eq!(r.recorded(), n);
        let snap = r.snapshot();
        for w in snap.windows(2) {
            prop_assert_eq!(w[1].seq, w[0].seq + 1);
            prop_assert!(w[1].at_ns >= w[0].at_ns);
        }
        if let Some(last) = snap.last() {
            prop_assert_eq!(last.seq, n - 1);
        }
    }
}

/// Concurrent writers: every record is counted exactly once (buffered or
/// dropped), sequence numbers stay unique, and buffered events remain
/// ordered.
#[test]
fn ring_concurrent_writers() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 500;
    let r = EventRing::with_capacity(256);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = r.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    r.record(EventKind::TaskSubmitted {
                        task: t * PER_THREAD + i,
                        name: format!("writer{t}"),
                    });
                }
            });
        }
    });
    assert_eq!(r.recorded(), THREADS * PER_THREAD);
    assert_eq!(r.len() as u64 + r.dropped(), THREADS * PER_THREAD);
    let snap = r.snapshot();
    for w in snap.windows(2) {
        assert!(w[1].seq > w[0].seq, "sequence must be strictly increasing");
    }
}

/// Concurrent histogram writers: totals conserved across threads.
#[test]
fn histogram_concurrent_writers() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 2000;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * 1_000_000 + i);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(
        h.snapshot().buckets.iter().sum::<u64>(),
        THREADS * PER_THREAD
    );
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), (THREADS - 1) * 1_000_000 + PER_THREAD - 1);
}
