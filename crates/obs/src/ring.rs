//! Bounded structured event ring buffer.

use crate::json_escape;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Default event capacity for a [`EventRing::new`] ring.
const DEFAULT_CAP: usize = 4096;

/// A structured runtime event, one of the paper-relevant lifecycle points:
/// task submission/completion/abort, 2PL lock request/grant/release, WAL
/// appends, and rollback-plan generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A task entered the runtime.
    TaskSubmitted {
        /// Runtime task id.
        task: u64,
        /// Human-readable task name.
        name: String,
    },
    /// A task committed.
    TaskCompleted {
        /// Runtime task id.
        task: u64,
    },
    /// A task aborted (failure or deadlock victim).
    TaskAborted {
        /// Runtime task id.
        task: u64,
    },
    /// A task requested locks on a region covering `objects` tree objects.
    LockRequested {
        /// Runtime task id.
        task: u64,
        /// Number of objects in the covering set.
        objects: u64,
        /// True for exclusive (X) mode, false for shared (S).
        exclusive: bool,
    },
    /// All requested locks were granted after `wait_ns` of blocking.
    LockGranted {
        /// Runtime task id.
        task: u64,
        /// Number of objects granted.
        objects: u64,
        /// Wall-clock nanoseconds between request and full grant.
        wait_ns: u64,
    },
    /// A task released its locks (strict 2PL: all at once, at the end).
    LockReleased {
        /// Runtime task id.
        task: u64,
        /// Number of objects released.
        objects: u64,
    },
    /// A batch of records was appended to the database WAL.
    WalAppend {
        /// Data records in the batch (excluding the commit marker).
        records: u64,
        /// WAL sequence number of the commit marker.
        seq: u64,
    },
    /// A rollback plan was generated from a failed task's typed log.
    RollbackPlanned {
        /// Runtime task id.
        task: u64,
        /// Number of steps in the generated plan.
        steps: u64,
    },
    /// The serializability certifier detected a conflict cycle.
    CertViolation {
        /// Name of the committing task that closed the cycle.
        task: String,
    },
    /// A spec compliance audit found devices violating its assertions.
    AuditNonCompliant {
        /// Spec name the audit ran for.
        spec: String,
        /// Devices the audit covered.
        devices: u64,
        /// Devices violating at least one assertion.
        non_compliant: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event type (the `event` column).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskSubmitted { .. } => "task_submitted",
            EventKind::TaskCompleted { .. } => "task_completed",
            EventKind::TaskAborted { .. } => "task_aborted",
            EventKind::LockRequested { .. } => "lock_requested",
            EventKind::LockGranted { .. } => "lock_granted",
            EventKind::LockReleased { .. } => "lock_released",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::RollbackPlanned { .. } => "rollback_planned",
            EventKind::CertViolation { .. } => "cert_violation",
            EventKind::AuditNonCompliant { .. } => "audit_non_compliant",
        }
    }

    /// The event's payload as `key=value` TSV detail text.
    fn detail_tsv(&self) -> String {
        match self {
            EventKind::TaskSubmitted { task, name } => format!("task={task} name={name}"),
            EventKind::TaskCompleted { task } | EventKind::TaskAborted { task } => {
                format!("task={task}")
            }
            EventKind::LockRequested {
                task,
                objects,
                exclusive,
            } => format!("task={task} objects={objects} exclusive={exclusive}"),
            EventKind::LockGranted {
                task,
                objects,
                wait_ns,
            } => format!("task={task} objects={objects} wait_ns={wait_ns}"),
            EventKind::LockReleased { task, objects } => format!("task={task} objects={objects}"),
            EventKind::WalAppend { records, seq } => format!("records={records} seq={seq}"),
            EventKind::RollbackPlanned { task, steps } => format!("task={task} steps={steps}"),
            EventKind::CertViolation { task } => format!("task={task}"),
            EventKind::AuditNonCompliant {
                spec,
                devices,
                non_compliant,
            } => format!("spec={spec} devices={devices} non_compliant={non_compliant}"),
        }
    }

    /// The event's payload as JSON object fields (no braces).
    fn fields_json(&self) -> String {
        match self {
            EventKind::TaskSubmitted { task, name } => {
                format!("\"task\":{task},\"name\":\"{}\"", json_escape(name))
            }
            EventKind::TaskCompleted { task } | EventKind::TaskAborted { task } => {
                format!("\"task\":{task}")
            }
            EventKind::LockRequested {
                task,
                objects,
                exclusive,
            } => format!("\"task\":{task},\"objects\":{objects},\"exclusive\":{exclusive}"),
            EventKind::LockGranted {
                task,
                objects,
                wait_ns,
            } => format!("\"task\":{task},\"objects\":{objects},\"wait_ns\":{wait_ns}"),
            EventKind::LockReleased { task, objects } => {
                format!("\"task\":{task},\"objects\":{objects}")
            }
            EventKind::WalAppend { records, seq } => format!("\"records\":{records},\"seq\":{seq}"),
            EventKind::RollbackPlanned { task, steps } => {
                format!("\"task\":{task},\"steps\":{steps}")
            }
            EventKind::CertViolation { task } => {
                format!("\"task\":\"{}\"", json_escape(task))
            }
            EventKind::AuditNonCompliant {
                spec,
                devices,
                non_compliant,
            } => format!(
                "\"spec\":\"{}\",\"devices\":{devices},\"non_compliant\":{non_compliant}",
                json_escape(spec)
            ),
        }
    }
}

/// One recorded event: a monotone sequence number, nanoseconds since the
/// ring's creation, and the structured payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-ring sequence number (gap-free across drops).
    pub seq: u64,
    /// Nanoseconds since the ring was created (monotonic clock).
    pub at_ns: u64,
    /// The structured payload.
    pub kind: EventKind,
}

/// A bounded, thread-safe ring of [`Event`]s.
///
/// When full, recording a new event drops the oldest one and counts it in
/// [`EventRing::dropped`]; sequence numbers keep increasing so consumers
/// can detect the gap. Cloning shares the ring.
#[derive(Clone, Debug)]
pub struct EventRing {
    inner: Arc<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    cap: usize,
    epoch: Instant,
    state: Mutex<RingState>,
}

#[derive(Debug)]
struct RingState {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl EventRing {
    /// A ring with the default capacity (4096 events).
    pub fn new() -> EventRing {
        EventRing::with_capacity(DEFAULT_CAP)
    }

    /// A ring bounded to `cap` events (min 1).
    pub fn with_capacity(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            inner: Arc::new(RingInner {
                cap,
                epoch: Instant::now(),
                state: Mutex::new(RingState {
                    next_seq: 0,
                    dropped: 0,
                    events: VecDeque::with_capacity(cap),
                }),
            }),
        }
    }

    /// Records an event, returning its sequence number. Evicts the oldest
    /// event when the ring is at capacity.
    pub fn record(&self, kind: EventKind) -> u64 {
        let at_ns = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut st = self.inner.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.events.len() == self.inner.cap {
            st.events.pop_front();
            st.dropped += 1;
        }
        st.events.push_back(Event { seq, at_ns, kind });
        seq
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Number of events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().dropped
    }

    /// Total events ever recorded (buffered + dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.state.lock().next_seq
    }

    /// The buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.state.lock().events.iter().cloned().collect()
    }

    /// The buffered events as TSV: a header line, then
    /// `seq \t at_ns \t event \t detail` rows (detail is `key=value` pairs).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("seq\tat_ns\tevent\tdetail\n");
        for e in self.snapshot() {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}",
                e.seq,
                e.at_ns,
                e.kind.name(),
                e.kind.detail_tsv()
            );
        }
        out
    }

    /// The buffered events as a JSON array of objects, oldest first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ns\":{},\"event\":\"{}\",{}}}",
                e.seq,
                e.at_ns,
                e.kind.name(),
                e.kind.fields_json()
            );
        }
        out.push(']');
        out
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_ordered() {
        let r = EventRing::with_capacity(3);
        for t in 0..5 {
            r.record(EventKind::TaskCompleted { task: t });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
        let seqs: Vec<u64> = r.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn export_shapes() {
        let r = EventRing::new();
        r.record(EventKind::TaskSubmitted {
            task: 1,
            name: "drain \"pod\"".into(),
        });
        r.record(EventKind::WalAppend { records: 3, seq: 9 });
        let tsv = r.to_tsv();
        assert!(tsv.starts_with("seq\tat_ns\tevent\tdetail\n"));
        assert!(tsv.contains("task_submitted"));
        assert!(tsv.contains("records=3 seq=9"));
        let json = r.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"event\":\"wal_append\""));
        assert!(json.contains("drain \\\"pod\\\""), "{json}");
    }
}
