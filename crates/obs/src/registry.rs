//! Named instrument registry with hand-written TSV/JSON export.

use crate::{json_escape, Counter, EventRing, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A named, get-or-create collection of [`Counter`]s and [`Histogram`]s
/// plus one shared [`EventRing`].
///
/// Cloning is cheap (`Arc`) and shares every instrument, so a single
/// registry threads through a whole runtime or simulation run: components
/// register their instruments by name at construction and the bench
/// binaries read them back by the same names. The name contract lives in
/// `DESIGN.md` §9.
///
/// Lookup takes a short mutex on a `BTreeMap`; hot paths should call
/// [`Registry::counter`]/[`Registry::histogram`] once and keep the
/// returned handle, which is lock-free to update.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: EventRing,
}

impl Registry {
    /// A registry with the default event-ring capacity.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry whose event ring holds at most `cap` events.
    pub fn with_event_capacity(cap: usize) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: EventRing::with_capacity(cap),
            }),
        }
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.counters.lock();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.histograms.lock();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The shared event ring.
    pub fn events(&self) -> EventRing {
        self.inner.events.clone()
    }

    /// Current value of counter `name`, without creating it (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(Counter::get)
            .unwrap_or(0)
    }

    /// Snapshot of histogram `name`, without creating it.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .histograms
            .lock()
            .get(name)
            .map(Histogram::snapshot)
    }

    /// All counters as sorted `(name, value)` pairs.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as sorted `(name, snapshot)` pairs.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Exports every instrument as TSV. Counter rows are
    /// `counter \t name \t value`; histogram rows are
    /// `histogram \t name \t count \t sum \t min \t max \t mean \t p50 \t p90 \t p99`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "counter\t{name}\t{v}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "histogram\t{name}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        out
    }

    /// Exports every instrument as one JSON object:
    /// `{"counters": {..}, "histograms": {name: {count, sum, min, max,
    /// mean, p50, p90, p99}}, "events": {capacity, recorded, dropped}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        let ev = self.events();
        let _ = write!(
            out,
            "}},\"events\":{{\"capacity\":{},\"recorded\":{},\"dropped\":{}}}}}",
            ev.capacity(),
            ev.recorded(),
            ev.dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_instruments() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a.b").inc();
        assert_eq!(r.counter_value("a.b"), 2);
        assert_eq!(r.counter_value("missing"), 0);
        r.histogram("h").record(7);
        assert_eq!(r.histogram_snapshot("h").unwrap().count, 1);
        assert!(r.histogram_snapshot("missing").is_none());
    }

    #[test]
    fn clones_share_everything() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("x").inc();
        r2.events()
            .record(crate::EventKind::TaskCompleted { task: 1 });
        assert_eq!(r2.counter_value("x"), 1);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn exports_are_well_formed() {
        let r = Registry::with_event_capacity(8);
        r.counter("c.one").add(3);
        r.histogram("h.lat_ns").record(1000);
        let tsv = r.to_tsv();
        assert!(tsv.contains("counter\tc.one\t3"));
        assert!(tsv.contains("histogram\th.lat_ns\t1\t1000\t1000\t1000"));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c.one\":3"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"capacity\":8"));
    }
}
