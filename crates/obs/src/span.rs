//! RAII span timing over monotonic clocks.

use crate::Histogram;
use std::time::{Duration, Instant};

/// A lightweight span: starts a monotonic clock on construction and
/// records the elapsed nanoseconds into its [`Histogram`] when dropped
/// (or explicitly via [`Span::finish`]).
///
/// ```
/// let h = occam_obs::Histogram::new();
/// {
///     let _span = occam_obs::Span::start(&h);
///     // ... timed section ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    hist: Option<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts a span that will record into `hist`.
    pub fn start(hist: &Histogram) -> Span {
        Span {
            hist: Some(hist.clone()),
            start: Instant::now(),
        }
    }

    /// Time elapsed so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now, records it, and returns the elapsed time.
    pub fn finish(mut self) -> Duration {
        let dt = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record_duration(dt);
        }
        dt
    }

    /// Abandons the span without recording anything.
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Histogram::new();
        {
            let _s = Span::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_once_and_returns_elapsed() {
        let h = Histogram::new();
        let s = Span::start(&h);
        let dt = s.finish();
        assert_eq!(h.count(), 1);
        assert!(h.max() as u128 >= dt.as_nanos() / 2);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        Span::start(&h).cancel();
        assert_eq!(h.count(), 0);
    }
}
