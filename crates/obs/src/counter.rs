//! Lock-free monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A lock-free monotonically increasing counter.
///
/// Cloning is cheap and shares the underlying cell, so the same counter
/// can be handed to many threads; increments use relaxed atomics (counts
/// are aggregates — no ordering is needed between them and other memory).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
