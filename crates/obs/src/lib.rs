//! Runtime observability for the Occam reproduction: counters, latency
//! histograms, span timing, and a bounded structured event log.
//!
//! The paper's entire evaluation (Figs. 8–10) reports *observed* runtime
//! behaviour — task wait times, queue depths, SCHED invocation latency,
//! object-tree maintenance cost. This crate is the single instrumentation
//! source those numbers flow through, replacing the ad-hoc stat structs
//! each bench binary used to scrape. It is built from scratch on `std`
//! atomics plus the `parking_lot` shim — no external dependencies, no
//! `serde` (all export formats are hand-written).
//!
//! # Instruments
//!
//! - [`Counter`] — a lock-free monotonic `u64`, cheap to clone and share.
//! - [`Histogram`] — a fixed-size log-scale (HDR-style) latency histogram
//!   with exact count/sum/min/max and bucketed p50/p90/p99 readout.
//! - [`Span`] — an RAII timer recording its elapsed time into a
//!   [`Histogram`] on drop (monotonic clock, thread-safe).
//! - [`EventRing`] — a bounded ring of structured [`Event`]s (task
//!   lifecycle, lock grant/wait/release, WAL appends, rollback plans).
//! - [`Registry`] — a named get-or-create collection of the above with
//!   TSV/JSON export; cloning is cheap (`Arc`) so one registry threads
//!   through a whole runtime or simulation run.
//!
//! # Naming contract
//!
//! Instrument names are dotted lowercase paths, `<crate>.<noun>[.<sub>]`,
//! with histogram units suffixed (`_ns` for wall-clock nanoseconds, `_mh`
//! for simulated milli-hours). The full contract — every name, unit, and
//! emitting call site — is documented in `DESIGN.md` §9 at the repository
//! root; `metrics_dump` (in `occam-bench`) emits a `BENCH_obs.json`
//! exercising every instrument.
//!
//! # Example
//!
//! ```
//! use occam_obs::{Registry, Span};
//!
//! let reg = Registry::new();
//! reg.counter("demo.requests").inc();
//! {
//!     let _span = Span::start(&reg.histogram("demo.latency_ns"));
//!     // ... timed work ...
//! }
//! assert_eq!(reg.counter("demo.requests").get(), 1);
//! assert_eq!(reg.histogram("demo.latency_ns").count(), 1);
//! println!("{}", reg.to_json());
//! ```
#![deny(missing_docs)]

mod counter;
mod histogram;
mod registry;
mod ring;
mod span;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::Registry;
pub use ring::{Event, EventKind, EventRing};
pub use span::Span;

/// Escapes a string for inclusion in a hand-written JSON document.
///
/// Handles the two characters that can actually appear in instrument and
/// task names (`"` and `\`) plus control characters, which become `\u00XX`.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
