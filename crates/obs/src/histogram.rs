//! Fixed-bucket log-scale latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding quantile error to one part in
/// `2^SUB_BITS` of the value (≤ 12.5% here).
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: values `0..8` get one
/// bucket each, then 61 octaves × 8 sub-buckets.
pub const NUM_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// A thread-safe log-scale histogram of `u64` samples (HDR-style).
///
/// Count, sum, min, and max are tracked exactly with atomics, so means and
/// extrema are precise; quantiles ([`Histogram::quantile`]) resolve to the
/// containing log-scale bucket (relative error ≤ `1/2^3`). Recording is
/// lock-free (a handful of relaxed atomic RMWs) and cloning shares the
/// underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<Cells>,
}

#[derive(Debug)]
struct Cells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Cells {
    fn default() -> Cells {
        Cells {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Maps a sample to its bucket index. Values below `SUB_BUCKETS` are exact;
/// above that, the index is (octave, top `SUB_BITS` mantissa bits).
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64;
    let sub = (v >> (exp - SUB_BITS as u64)) & (SUB_BUCKETS - 1);
    ((exp - SUB_BITS as u64 + 1) * SUB_BUCKETS + sub) as usize
}

/// Smallest sample landing in bucket `idx` (inverse of [`bucket_index`]).
pub(crate) fn bucket_lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let exp = idx / SUB_BUCKETS - 1 + SUB_BITS as u64;
    let sub = idx % SUB_BUCKETS;
    (1u64 << exp) + (sub << (exp - SUB_BITS as u64))
}

/// A representative value for bucket `idx`: its midpoint (exact for the
/// unit-width buckets below `SUB_BUCKETS`).
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let exp = idx as u64 / SUB_BUCKETS - 1 + SUB_BITS as u64;
    let width = 1u64 << (exp - SUB_BITS as u64);
    bucket_lower_bound(idx) + width / 2
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let c = &*self.inner;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.inner.min.load(Ordering::Relaxed)
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) resolved to the bucket midpoint
    /// and clamped into `[min, max]`; 0 when empty. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; count, sum,
    /// min, and max merge exactly).
    pub fn merge_from(&self, other: &Histogram) {
        let dst = &*self.inner;
        let src = other.snapshot();
        for (i, &n) in src.buckets.iter().enumerate() {
            if n > 0 {
                dst.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if src.count > 0 {
            dst.count.fetch_add(src.count, Ordering::Relaxed);
            dst.sum.fetch_add(src.sum, Ordering::Relaxed);
            dst.min.fetch_min(src.min, Ordering::Relaxed);
            dst.max.fetch_max(src.max, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the histogram state. Taken bucket by bucket
    /// without a global lock, so under concurrent writes the totals may be
    /// off by the handful of in-flight samples — fine for metrics readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.inner;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = c.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (`NUM_BUCKETS` long).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), bucket-resolved and clamped into
    /// `[min, max]`; 0 when empty. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bound_agree_on_boundaries() {
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of bucket {idx}");
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), idx - 1, "below bucket {idx}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!(got < 8, "q={q} -> {got}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.sum(), 28);
    }

    #[test]
    fn mean_max_exact_quantile_bounded() {
        let h = Histogram::new();
        let vals = [100u64, 200, 300, 400, 1000, 2000, 50_000];
        for &v in &vals {
            h.record(v);
        }
        let sum: u64 = vals.iter().sum();
        assert_eq!(h.sum(), sum);
        assert_eq!(h.max(), 50_000);
        assert_eq!(h.min(), 100);
        let p50 = h.quantile(0.5);
        // True median 400; bucket resolution is 12.5%.
        assert!((350..=450).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 9, 77, 1024, 65_535] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 500, 8_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn concurrent_recording_keeps_totals() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
        let bucket_total: u64 = h.snapshot().buckets.iter().sum();
        assert_eq!(bucket_total, 4000);
    }
}
