//! Write-ahead logging for the network database.
//!
//! Every committed mutation is appended to the WAL before it becomes
//! visible (ARIES-style, simplified to redo-only records since queries are
//! applied atomically). Replaying the WAL from an empty store reconstructs
//! the exact database state — a property the test suite checks after random
//! workloads.

use crate::value::AttrValue;

/// One redo record.
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// A device row was inserted with the given attributes.
    InsertDevice {
        /// Device name.
        name: String,
        /// Initial attributes.
        attrs: Vec<(String, AttrValue)>,
    },
    /// A device row was deleted.
    DeleteDevice {
        /// Device name.
        name: String,
    },
    /// A device attribute was written.
    SetDeviceAttr {
        /// Device name.
        name: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// A device attribute was removed.
    UnsetDeviceAttr {
        /// Device name.
        name: String,
        /// Attribute name.
        attr: String,
    },
    /// A link row was inserted.
    InsertLink {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Initial attributes.
        attrs: Vec<(String, AttrValue)>,
    },
    /// A link row was deleted.
    DeleteLink {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
    },
    /// A link attribute was written.
    SetLinkAttr {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// A link attribute was removed.
    UnsetLinkAttr {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Attribute name.
        attr: String,
    },
    /// Marks the atomic commit of the preceding records of one batch.
    Commit {
        /// Monotonic commit sequence number.
        seq: u64,
    },
}

/// An in-memory write-ahead log.
///
/// Commit sequence numbers are *global*: a log re-based by a snapshot
/// bootstrap (the crate-private `rebase`) holds only the records committed since
/// its base, but keeps numbering where the leader left off, so a
/// replica's "durable WAL prefix" is always comparable across the
/// replica set by [`Wal::num_commits`] alone.
#[derive(Clone, Default, Debug)]
pub struct Wal {
    records: Vec<WalRecord>,
    next_seq: u64,
    /// First commit sequence this log physically holds records for.
    /// `0` for a full-history log; the snapshot base for a re-based one.
    base_seq: u64,
    /// Record index one past each local `Commit` marker, so shipping a
    /// suffix after N commits is an O(suffix) slice, not an O(log) scan.
    commit_index: Vec<usize>,
}

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Appends the records of one atomic batch followed by a commit marker,
    /// returning the commit sequence number.
    pub fn append_batch(&mut self, records: impl IntoIterator<Item = WalRecord>) -> u64 {
        self.records.extend(records);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(WalRecord::Commit { seq });
        self.commit_index.push(self.records.len());
        seq
    }

    /// Appends one replicated batch at a *forced* commit sequence — the
    /// follower-side half of WAL shipping. Fails (without mutating the
    /// log) unless `seq` is exactly the next expected sequence, so a
    /// shipped stream can neither skip nor double-apply a commit.
    pub(crate) fn append_batch_at(
        &mut self,
        records: impl IntoIterator<Item = WalRecord>,
        seq: u64,
    ) -> Result<(), String> {
        if seq != self.next_seq {
            return Err(format!(
                "replicated commit {seq} out of order: expected {}",
                self.next_seq
            ));
        }
        self.records.extend(records);
        self.next_seq = seq + 1;
        self.records.push(WalRecord::Commit { seq });
        self.commit_index.push(self.records.len());
        Ok(())
    }

    /// Re-bases an empty log so numbering continues from `base` — used
    /// when a replica bootstraps from a state snapshot rather than the
    /// full history. The log then physically holds only commits
    /// `base..`, while [`Wal::num_commits`] stays globally comparable.
    pub(crate) fn rebase(&mut self, base: u64) {
        debug_assert!(self.records.is_empty(), "rebase is for fresh logs");
        self.records.clear();
        self.commit_index.clear();
        self.base_seq = base;
        self.next_seq = base;
    }

    /// First commit sequence this log physically holds records for.
    pub fn base_commits(&self) -> u64 {
        self.base_seq
    }

    /// The records committed *after* the first `commits` commits, along
    /// with the sequence the suffix starts at. Returns `None` when the
    /// log has been re-based past `commits` — the history is simply not
    /// here and the caller must fall back to a snapshot transfer.
    pub(crate) fn suffix_after_commits(&self, commits: u64) -> Option<(u64, Vec<WalRecord>)> {
        if commits < self.base_seq {
            return None;
        }
        if commits >= self.next_seq {
            return Some((self.next_seq, Vec::new()));
        }
        let skip = (commits - self.base_seq) as usize;
        let start = if skip == 0 {
            0
        } else {
            self.commit_index[skip - 1]
        };
        Some((commits, self.records[start..].to_vec()))
    }

    /// All records appended so far.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of committed batches (globally numbered: a re-based log
    /// counts the commits captured by its bootstrap snapshot too).
    pub fn num_commits(&self) -> u64 {
        self.next_seq
    }

    /// Serializes the log to a line-oriented text form (for persistence and
    /// debugging; the format is stable within a build).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("{r:?}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_sequence_is_monotonic() {
        let mut wal = Wal::new();
        let a = wal.append_batch([WalRecord::DeleteDevice { name: "x".into() }]);
        let b = wal.append_batch(Vec::<WalRecord>::new());
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(wal.num_commits(), 2);
    }

    #[test]
    fn records_preserved_in_order() {
        let mut wal = Wal::new();
        wal.append_batch([
            WalRecord::InsertDevice {
                name: "d1".into(),
                attrs: vec![("A".into(), AttrValue::Int(1))],
            },
            WalRecord::SetDeviceAttr {
                name: "d1".into(),
                attr: "A".into(),
                value: AttrValue::Int(2),
            },
        ]);
        assert_eq!(wal.records().len(), 3);
        assert!(matches!(wal.records()[2], WalRecord::Commit { seq: 0 }));
    }

    #[test]
    fn dump_is_line_per_record() {
        let mut wal = Wal::new();
        wal.append_batch([WalRecord::DeleteDevice { name: "x".into() }]);
        assert_eq!(wal.dump().lines().count(), 2);
    }
}
