//! Follower replicas: databases that apply shipped WAL batches through
//! the normal commit protocol so they stay byte-identical to the leader.

use super::ReplObs;
use crate::db::Database;
use crate::shard::StoreSnapshot;
use crate::wal::WalRecord;
use occam_obs::Registry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One unit of leader→follower traffic (the in-process form; [`super::msg`]
/// carries the same shapes over TCP).
#[derive(Clone, Debug)]
pub enum Shipment {
    /// Full-state bootstrap: install this snapshot, which contains the
    /// first `base_commits` commits, and continue from there.
    Snapshot {
        /// The consistent state to install (O(shards) `Arc` bumps).
        snap: StoreSnapshot,
        /// Commits the snapshot contains; the follower's WAL re-bases here.
        base_commits: u64,
        /// When the leader captured the shipment, for lag accounting.
        shipped_at: Instant,
    },
    /// A WAL suffix: zero or more complete batches, each terminated by
    /// its `Commit` marker, starting at commit sequence `first_seq`.
    Entries {
        /// Sequence of the first batch in `records`.
        first_seq: u64,
        /// The raw WAL records, commit markers included.
        records: Vec<WalRecord>,
        /// When the leader captured the shipment, for lag accounting.
        shipped_at: Instant,
    },
    /// No new commits; carries the leader's current commit count so the
    /// follower can track its own staleness.
    Heartbeat {
        /// The leader's commit count at send time.
        commits: u64,
    },
}

/// A follower replica: wraps a [`Database`] that is only ever written by
/// [`Follower::ingest`], plus crash/truncation helpers for the chaos and
/// regression suites.
#[derive(Debug)]
pub struct Follower {
    id: u32,
    /// Behind a mutex so [`Follower::crash_reset`] can swap in a fresh
    /// database (simulated total state loss) while readers hold the old
    /// `Arc` safely.
    db: Mutex<Arc<Database>>,
    /// Last leader commit count heard (entries or heartbeat).
    leader_commits: AtomicU64,
    obs: ReplObs,
}

impl Follower {
    /// Creates an empty follower whose instruments bind to `reg`.
    pub fn new(id: u32, reg: &Registry) -> Follower {
        Follower {
            id,
            db: Mutex::new(Arc::new(Database::with_obs(reg))),
            leader_commits: AtomicU64::new(0),
            obs: ReplObs::bound(reg),
        }
    }

    /// This follower's id (stable across partitions and rejoins).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The follower's database handle (serves routed reads; promoted to
    /// leader on failover).
    pub fn db(&self) -> Arc<Database> {
        Arc::clone(&self.db.lock())
    }

    /// Commits this follower has durably applied — its confirmed prefix.
    pub fn commits(&self) -> u64 {
        self.db().commits()
    }

    /// The leader commit count last heard from the stream.
    pub fn leader_commits(&self) -> u64 {
        self.leader_commits.load(Ordering::Acquire)
    }

    /// This follower's staleness in commits, relative to the last heard
    /// leader position.
    pub fn lag(&self) -> u64 {
        self.leader_commits().saturating_sub(self.commits())
    }

    /// A consistent snapshot of the follower's current state.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.db().snapshot()
    }

    /// Applies one shipment. Entries are split at their commit markers
    /// and each batch runs the full commit protocol at the leader's
    /// sequence number; batches at or below the follower's confirmed
    /// prefix are deduplicated (re-shipping after a heal is idempotent),
    /// and a gap past the confirmed prefix is an error.
    pub fn ingest(&self, shipment: Shipment) -> Result<(), String> {
        match shipment {
            Shipment::Heartbeat { commits } => {
                self.leader_commits.fetch_max(commits, Ordering::AcqRel);
                Ok(())
            }
            Shipment::Snapshot {
                snap,
                base_commits,
                shipped_at,
            } => {
                self.leader_commits
                    .fetch_max(base_commits, Ordering::AcqRel);
                let db = self.db();
                if base_commits <= db.commits() {
                    return Ok(()); // stale re-ship; nothing to do
                }
                db.install_snapshot(&snap, base_commits);
                self.obs.applied.inc();
                self.obs
                    .lag_ns
                    .record(shipped_at.elapsed().as_nanos() as u64);
                Ok(())
            }
            Shipment::Entries {
                first_seq,
                records,
                shipped_at,
            } => {
                let db = self.db();
                let mut batch: Vec<WalRecord> = Vec::new();
                let mut seq = first_seq;
                for rec in records {
                    match rec {
                        WalRecord::Commit { seq: marked } => {
                            if marked != seq {
                                return Err(format!(
                                    "shipped stream corrupt: commit {marked} where {seq} expected"
                                ));
                            }
                            let confirmed = db.commits();
                            if seq >= confirmed {
                                if seq > confirmed {
                                    return Err(format!(
                                        "gap in shipped stream: batch {seq} past confirmed {confirmed}"
                                    ));
                                }
                                db.apply_replicated(&batch, seq)?;
                                self.obs.applied.inc();
                                self.obs
                                    .lag_ns
                                    .record(shipped_at.elapsed().as_nanos() as u64);
                            }
                            batch.clear();
                            seq += 1;
                        }
                        other => batch.push(other),
                    }
                }
                // Records after the last commit marker belong to an
                // uncommitted batch and are dropped — commit markers are
                // the unit of durability.
                self.leader_commits.fetch_max(seq, Ordering::AcqRel);
                Ok(())
            }
        }
    }

    /// Simulates a crash with total state loss: the database is replaced
    /// by an empty one, so the next shipping round bootstraps the
    /// follower from scratch (full WAL or snapshot).
    pub fn crash_reset(&self) {
        let reg = self.db().obs().clone();
        *self.db.lock() = Arc::new(Database::with_obs(&reg));
        self.leader_commits.store(0, Ordering::Release);
    }

    /// Simulates a crash that loses the WAL suffix past the first `keep`
    /// commits (a torn write on the follower's disk): the database is
    /// rebuilt by replaying the surviving prefix. Only meaningful on
    /// followers with full history (`wal_base_commits() == 0`).
    pub fn truncate_to_commits(&self, keep: u64) -> Result<(), String> {
        let db = self.db();
        if db.wal_base_commits() != 0 {
            return Err("cannot truncate a snapshot-bootstrapped follower".to_string());
        }
        let mut prefix = Vec::new();
        let mut seen = 0u64;
        for rec in db.wal_records() {
            if seen >= keep {
                break;
            }
            if matches!(rec, WalRecord::Commit { .. }) {
                seen += 1;
            }
            prefix.push(rec);
        }
        let reg = db.obs().clone();
        let fresh = Database::with_obs(&reg);
        fresh.install_recovered(prefix);
        *self.db.lock() = Arc::new(fresh);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(db: &Database) -> Shipment {
        Shipment::Entries {
            first_seq: 0,
            records: db.wal_records(),
            shipped_at: Instant::now(),
        }
    }

    #[test]
    fn ingest_applies_and_dedups() {
        let leader = Database::new();
        leader.insert_device("dc01.pod00.sw00", vec![]).unwrap();
        leader.insert_device("dc01.pod00.sw01", vec![]).unwrap();
        let f = Follower::new(0, &Registry::new());
        f.ingest(entries(&leader)).unwrap();
        assert_eq!(f.commits(), 2);
        // Re-shipping the same suffix is idempotent.
        f.ingest(entries(&leader)).unwrap();
        assert_eq!(f.commits(), 2);
        assert_eq!(f.snapshot(), leader.snapshot());
    }

    #[test]
    fn ingest_rejects_gaps() {
        let leader = Database::new();
        leader.insert_device("a", vec![]).unwrap();
        leader.insert_device("b", vec![]).unwrap();
        let f = Follower::new(0, &Registry::new());
        let (_, suffix) = leader.wal_suffix_after_commits(1).unwrap();
        let err = f
            .ingest(Shipment::Entries {
                first_seq: 1,
                records: suffix,
                shipped_at: Instant::now(),
            })
            .unwrap_err();
        assert!(err.contains("gap"), "{err}");
        assert_eq!(f.commits(), 0);
    }

    #[test]
    fn snapshot_bootstrap_rebases() {
        let leader = Database::new();
        for i in 0..4 {
            leader.insert_device(&format!("d{i}"), vec![]).unwrap();
        }
        let (snap, commits) = leader.snapshot_with_commits();
        let f = Follower::new(0, &Registry::new());
        f.ingest(Shipment::Snapshot {
            snap,
            base_commits: commits,
            shipped_at: Instant::now(),
        })
        .unwrap();
        assert_eq!(f.commits(), 4);
        assert_eq!(f.db().wal_base_commits(), 4);
        assert_eq!(f.snapshot(), leader.snapshot());
        // The entry stream continues past the snapshot.
        leader.insert_device("d9", vec![]).unwrap();
        let (first_seq, records) = leader.wal_suffix_after_commits(f.commits()).unwrap();
        f.ingest(Shipment::Entries {
            first_seq,
            records,
            shipped_at: Instant::now(),
        })
        .unwrap();
        assert_eq!(f.snapshot(), leader.snapshot());
    }

    #[test]
    fn trailing_uncommitted_records_are_dropped() {
        let leader = Database::new();
        leader.insert_device("a", vec![]).unwrap();
        let mut records = leader.wal_records();
        records.push(WalRecord::InsertDevice {
            name: "torn".into(),
            attrs: vec![],
        });
        let f = Follower::new(0, &Registry::new());
        f.ingest(Shipment::Entries {
            first_seq: 0,
            records,
            shipped_at: Instant::now(),
        })
        .unwrap();
        assert_eq!(f.commits(), 1);
        assert!(!f.db().device_exists("torn").unwrap());
    }
}
