//! Scoped-read routing: serve consistent snapshots from any caught-up
//! follower, falling back to the leader when every follower is stale.

use super::{Follower, ReplObs};
use crate::db::Database;
use crate::error::DbResult;
use crate::shard::StoreSnapshot;
use crate::view::ReadView;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Routes snapshot reads across a replica set.
///
/// Every read picks the next follower round-robin; a follower serves the
/// read iff its lag (leader commits minus follower commits, measured at
/// routing time) is within `max_lag`. If no follower qualifies the read
/// falls back to the leader, counted under
/// `netdb.repl.reads.stale_fallback`. The lag of every follower-served
/// read is recorded in `netdb.repl.read_lag_commits` — the surfaced
/// staleness bound.
#[derive(Debug)]
pub struct ReadRouter {
    leader: Arc<Database>,
    followers: Vec<Arc<Follower>>,
    max_lag: u64,
    next: AtomicUsize,
    obs: ReplObs,
}

impl ReadRouter {
    /// Builds a router. Crate-internal: use [`super::ReplicaSet::router`].
    pub(crate) fn new(
        leader: Arc<Database>,
        followers: Vec<Arc<Follower>>,
        max_lag: u64,
        obs: ReplObs,
    ) -> ReadRouter {
        ReadRouter {
            leader,
            followers,
            max_lag,
            next: AtomicUsize::new(0),
            obs,
        }
    }

    /// The configured staleness bound, in commits.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// Serves one consistent snapshot read, preferring a caught-up
    /// follower; returns where it was served from alongside the snapshot.
    pub fn snapshot_from(&self) -> DbResult<(StoreSnapshot, ReadSource)> {
        let leader_commits = self.leader.commits();
        let n = self.followers.len();
        if n > 0 {
            let start = self.next.fetch_add(1, Ordering::Relaxed);
            for i in 0..n {
                let f = &self.followers[(start + i) % n];
                let lag = leader_commits.saturating_sub(f.commits());
                if lag <= self.max_lag {
                    self.obs.reads_follower.inc();
                    self.obs.read_lag_commits.record(lag);
                    let snap = f.db().query_snapshot()?;
                    return Ok((snap, ReadSource::Follower(f.id())));
                }
            }
            self.obs.reads_stale.inc();
        }
        self.obs.reads_leader.inc();
        Ok((self.leader.query_snapshot()?, ReadSource::Leader))
    }

    /// Serves one consistent snapshot read (see [`ReadRouter::snapshot_from`]).
    pub fn snapshot(&self) -> DbResult<StoreSnapshot> {
        Ok(self.snapshot_from()?.0)
    }

    /// Serves one routed read as a unified [`ReadView`]: the follower (or
    /// leader-fallback) snapshot together with where it was served from,
    /// so callers share one accessor with the un-replicated leader path.
    pub fn read_view(&self) -> DbResult<ReadView> {
        let (snap, source) = self.snapshot_from()?;
        Ok(ReadView::new(snap, source))
    }
}

/// Where a routed read was served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadSource {
    /// Served by the follower with this id.
    Follower(u32),
    /// Served by the leader (no follower within the staleness bound, or
    /// no followers configured).
    Leader,
}

#[cfg(test)]
mod tests {
    use super::super::follower::Shipment;
    use super::*;
    use occam_obs::Registry;
    use std::time::Instant;

    fn synced_follower(id: u32, leader: &Database, reg: &Registry) -> Arc<Follower> {
        let f = Arc::new(Follower::new(id, reg));
        f.ingest(Shipment::Entries {
            first_seq: 0,
            records: leader.wal_records(),
            shipped_at: Instant::now(),
        })
        .unwrap();
        f
    }

    #[test]
    fn routes_to_caught_up_follower_round_robin() {
        let reg = Registry::new();
        let leader = Arc::new(Database::with_obs(&reg));
        leader.insert_device("d0", vec![]).unwrap();
        let followers = vec![
            synced_follower(0, &leader, &reg),
            synced_follower(1, &leader, &reg),
        ];
        let obs = ReplObs::bound(&reg);
        let router = ReadRouter::new(Arc::clone(&leader), followers, 0, obs);
        let (_, s0) = router.snapshot_from().unwrap();
        let (_, s1) = router.snapshot_from().unwrap();
        assert_ne!(s0, s1, "round-robin should alternate followers");
        assert!(matches!(s0, ReadSource::Follower(_)));
        assert_eq!(reg.counter_value("netdb.repl.reads.follower"), 2);
    }

    #[test]
    fn stale_followers_fall_back_to_leader() {
        let reg = Registry::new();
        let leader = Arc::new(Database::with_obs(&reg));
        leader.insert_device("d0", vec![]).unwrap();
        let followers = vec![synced_follower(0, &leader, &reg)];
        // New commits the follower never sees.
        leader.insert_device("d1", vec![]).unwrap();
        let obs = ReplObs::bound(&reg);
        let router = ReadRouter::new(Arc::clone(&leader), followers, 0, obs);
        let (snap, src) = router.snapshot_from().unwrap();
        assert_eq!(src, ReadSource::Leader);
        assert_eq!(snap, leader.snapshot());
        assert_eq!(reg.counter_value("netdb.repl.reads.stale_fallback"), 1);
        assert_eq!(reg.counter_value("netdb.repl.reads.leader"), 1);
    }

    #[test]
    fn lag_within_bound_still_served_by_follower() {
        let reg = Registry::new();
        let leader = Arc::new(Database::with_obs(&reg));
        leader.insert_device("d0", vec![]).unwrap();
        let followers = vec![synced_follower(0, &leader, &reg)];
        leader.insert_device("d1", vec![]).unwrap();
        let obs = ReplObs::bound(&reg);
        let router = ReadRouter::new(Arc::clone(&leader), followers, 8, obs);
        let (snap, src) = router.snapshot_from().unwrap();
        assert!(matches!(src, ReadSource::Follower(0)));
        // The served snapshot is consistent but one commit behind.
        assert!(!snap.device_exists("d1"));
    }
}
