//! TCP transport for replication: a passive follower server and the
//! leader-side shipper, speaking the [`super::msg`] frame protocol.
//!
//! The handshake is follower-first: on accept, the follower sends
//! `Hello { follower, have_commits }` so the leader ships only the
//! missing suffix (or a synthesized-snapshot bootstrap when it no longer
//! holds that history). Every leader frame is answered by an
//! `Ack { commits }`, which both confirms durability and drives the next
//! suffix computation — the same ack-driven loop as the in-process
//! shipper, just with the network in the middle.

use super::follower::{Follower, Shipment};
use super::msg::{read_msg, write_msg, ReplMsg};
use crate::db::Database;
use crate::shard::StoreSnapshot;
use crate::wal::WalRecord;
use parking_lot::Mutex;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Synthesizes records that, replayed from empty, rebuild `snap` — the
/// wire form of a snapshot transfer. Deterministic: devices first (name
/// order), then links (key order), so two syntheses of equal snapshots
/// are byte-identical on the wire.
pub fn synthesize_snapshot_records(snap: &StoreSnapshot) -> Vec<WalRecord> {
    let store = snap.materialize();
    let mut out = Vec::with_capacity(store.devices.len() + store.links.len());
    for (name, dev) in &store.devices {
        out.push(WalRecord::InsertDevice {
            name: name.clone(),
            attrs: dev
                .attrs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        });
    }
    for ((a, z), link) in &store.links {
        out.push(WalRecord::InsertLink {
            a_end: a.clone(),
            z_end: z.clone(),
            attrs: link
                .attrs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        });
    }
    out
}

/// A TCP server exposing one [`Follower`] to a remote leader.
///
/// Each accepted connection is served on its own thread, so a leader can
/// reconnect (or a new leader can take over after failover) while an old
/// link is still draining. [`FollowerServer::shutdown`] force-closes every
/// live connection, so it never waits on a leader that stopped talking.
#[derive(Debug)]
pub struct FollowerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<ConnTable>,
}

/// Live-connection bookkeeping shared between the accept loop and
/// [`FollowerServer::shutdown`]: stream clones (for forced shutdown) and
/// the per-connection handler threads (for joining).
#[derive(Debug, Default)]
struct ConnTable {
    streams: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl FollowerServer {
    /// Binds `addr` (use port 0 for ephemeral) and serves the follower on
    /// a background thread until [`FollowerServer::shutdown`].
    pub fn start(follower: Arc<Follower>, addr: &str) -> io::Result<FollowerServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());
        let handle = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        conns.streams.lock().push(clone);
                    }
                    let follower = Arc::clone(&follower);
                    let handler = std::thread::spawn(move || {
                        let _ = serve_conn(&follower, stream);
                    });
                    conns.handlers.lock().push(handler);
                }
            })
        };
        Ok(FollowerServer {
            addr,
            stop,
            handle: Some(handle),
            conns,
        })
    }

    /// The bound address (for the leader to connect to).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, force-closes every live connection, and
    /// joins every server thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Force-close live connections so their handlers unblock even if
        // the leader side never closes its end.
        for stream in self.conns.streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        for h in self.conns.handlers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FollowerServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_inner();
        }
    }
}

/// Serves one leader connection: greet with `Hello`, then apply every
/// shipped frame and answer with the follower's confirmed prefix.
fn serve_conn(follower: &Follower, mut stream: TcpStream) -> io::Result<()> {
    write_msg(
        &mut stream,
        &ReplMsg::Hello {
            follower: follower.id(),
            have_commits: follower.commits(),
        },
    )?;
    while let Some(msg) = read_msg(&mut stream)? {
        let shipped_at = Instant::now();
        let result = match msg {
            ReplMsg::Snapshot {
                base_commits,
                records,
            } => follower.ingest(Shipment::Snapshot {
                snap: StoreSnapshot::replay(&records),
                base_commits,
                shipped_at,
            }),
            ReplMsg::Entries { first_seq, records } => follower.ingest(Shipment::Entries {
                first_seq,
                records,
                shipped_at,
            }),
            ReplMsg::Heartbeat { commits } => follower.ingest(Shipment::Heartbeat { commits }),
            // Hello and Ack are follower-to-leader; ignore if echoed.
            ReplMsg::Hello { .. } | ReplMsg::Ack { .. } => Ok(()),
        };
        if let Err(e) = result {
            return Err(io::Error::new(io::ErrorKind::InvalidData, e));
        }
        write_msg(
            &mut stream,
            &ReplMsg::Ack {
                follower: follower.id(),
                commits: follower.commits(),
            },
        )?;
    }
    Ok(())
}

/// The leader side of one TCP shipping link.
#[derive(Debug)]
pub struct TcpShipper {
    stream: TcpStream,
    /// The follower's id, learned from its `Hello`.
    follower: u32,
    /// The follower's confirmed commit count (from `Hello`, then acks).
    confirmed: u64,
}

impl TcpShipper {
    /// Connects to a [`FollowerServer`] and reads its greeting.
    pub fn connect(addr: &SocketAddr) -> io::Result<TcpShipper> {
        let mut stream = TcpStream::connect(addr)?;
        match read_msg(&mut stream)? {
            Some(ReplMsg::Hello {
                follower,
                have_commits,
            }) => Ok(TcpShipper {
                stream,
                follower,
                confirmed: have_commits,
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// The remote follower's id.
    pub fn follower(&self) -> u32 {
        self.follower
    }

    /// The follower's last confirmed commit count.
    pub fn confirmed(&self) -> u64 {
        self.confirmed
    }

    /// Ships one round: the WAL suffix past the follower's confirmed
    /// prefix (or a synthesized-snapshot bootstrap, or a heartbeat), then
    /// reads the ack. Returns the follower's new confirmed count.
    pub fn ship_round(&mut self, db: &Database) -> io::Result<u64> {
        let msg = match db.wal_suffix_after_commits(self.confirmed) {
            None => {
                let (snap, base_commits) = db.snapshot_with_commits();
                ReplMsg::Snapshot {
                    base_commits,
                    records: synthesize_snapshot_records(&snap),
                }
            }
            Some((first_seq, records)) if !records.is_empty() => {
                ReplMsg::Entries { first_seq, records }
            }
            Some(_) => ReplMsg::Heartbeat {
                commits: db.commits(),
            },
        };
        write_msg(&mut self.stream, &msg)?;
        match read_msg(&mut self.stream)? {
            Some(ReplMsg::Ack { commits, .. }) => {
                self.confirmed = self.confirmed.max(commits);
                Ok(self.confirmed)
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Ack, got {other:?}"),
            )),
        }
    }

    /// Ships rounds until the follower has confirmed every commit `db`
    /// currently holds; returns the confirmed count.
    pub fn sync_to(&mut self, db: &Database) -> io::Result<u64> {
        loop {
            let target = db.commits();
            let confirmed = self.ship_round(db)?;
            if confirmed >= target {
                return Ok(confirmed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_obs::Registry;

    #[test]
    fn tcp_suffix_shipping_converges_byte_identically() {
        let leader = Database::new();
        for i in 0..12 {
            leader
                .insert_device(&format!("dc01.pod00.sw{i:02}"), vec![])
                .unwrap();
        }
        let follower = Arc::new(Follower::new(7, &Registry::new()));
        let server = FollowerServer::start(Arc::clone(&follower), "127.0.0.1:0").unwrap();
        let mut shipper = TcpShipper::connect(&server.local_addr()).unwrap();
        assert_eq!(shipper.follower(), 7);
        assert_eq!(shipper.sync_to(&leader).unwrap(), 12);
        assert_eq!(follower.snapshot(), leader.snapshot());
        assert_eq!(follower.db().dump_wal(), leader.dump_wal());
        // Incremental rounds after more writes ship only the suffix.
        leader.insert_device("dc01.pod00.sw99", vec![]).unwrap();
        assert_eq!(shipper.sync_to(&leader).unwrap(), 13);
        assert_eq!(follower.snapshot(), leader.snapshot());
        server.shutdown();
    }

    #[test]
    fn tcp_snapshot_bootstrap_when_history_missing() {
        // A leader that itself bootstrapped from a snapshot no longer
        // holds the full history, so a fresh follower needs the wire
        // snapshot path.
        let origin = Database::new();
        for i in 0..6 {
            origin
                .insert_device(&format!("dc01.pod01.sw{i:02}"), vec![])
                .unwrap();
        }
        origin
            .insert_link("dc01.pod01.sw00", "dc01.pod01.sw01", vec![])
            .unwrap();
        let (snap, commits) = origin.snapshot_with_commits();
        let leader = Database::new();
        leader.install_snapshot(&snap, commits);
        leader.insert_device("dc01.pod01.sw90", vec![]).unwrap();

        let follower = Arc::new(Follower::new(1, &Registry::new()));
        let server = FollowerServer::start(Arc::clone(&follower), "127.0.0.1:0").unwrap();
        let mut shipper = TcpShipper::connect(&server.local_addr()).unwrap();
        assert_eq!(shipper.sync_to(&leader).unwrap(), 8);
        assert_eq!(follower.snapshot(), leader.snapshot());
        follower.snapshot().self_check().unwrap();
        server.shutdown();
    }
}
