//! WAL-shipping replication: a leader database, N follower replicas,
//! scoped-read routing, and deterministic leader failover.
//!
//! # Model
//!
//! The leader is an ordinary [`Database`]: PR 5's commit protocol already
//! guarantees **WAL order equals publication order**, so the WAL *is* the
//! replication stream — no second log, no operation transformation. A
//! background shipper thread wakes on the leader's commit condvar and
//! ships, per follower, exactly the WAL suffix past that follower's
//! confirmed commit count ([`Database::wait_commits`] +
//! `Wal::suffix_after_commits`). Followers apply each shipped batch
//! through the same commit protocol (`apply_replicated`: writer lock →
//! copy-on-write apply → WAL append at the leader's sequence →
//! pointer-swap publish), so a caught-up follower is *byte-identical* to
//! the leader — same logical contents, same WAL, same shard layout —
//! which the chaos phases assert with snapshot equality plus shard
//! [`StoreSnapshot::self_check`].
//!
//! # Bootstrap and catch-up
//!
//! A follower behind by more history than the leader's WAL physically
//! holds (possible after the leader itself snapshot-bootstrapped) is sent
//! an O(shards) [`StoreSnapshot`] transfer — `Arc` bumps in-process,
//! synthesized insert records over TCP (see [`tcp`]) — then rejoins the
//! entry stream. Shipping is *ack-driven*: the shipper re-reads the
//! follower's confirmed commit count every round, so a partitioned
//! follower simply stops confirming and, once healed, receives the whole
//! missing suffix with no shipper-side bookkeeping to corrupt.
//!
//! # Durability and failover
//!
//! A commit is **acknowledged** once a quorum of followers has confirmed
//! it ([`Leader::acked`]). On leader death, [`ReplicaSet::failover`]
//! promotes the follower with the longest durable WAL prefix (max commit
//! count, ties to the lowest id). Because every follower's prefix is a
//! prefix of the leader's WAL and the quorum follower had every
//! acknowledged commit, promotion never loses an acknowledged commit —
//! the invariant the chaos `kill-leader-mid-commit` phase checks.
//!
//! # Reads
//!
//! [`ReadRouter`] serves consistent snapshots from any follower within a
//! staleness bound (`max_lag` commits), falling back to the leader. The
//! observed lag of every routed read lands in `netdb.repl.read_lag_commits`.
//!
//! # Example
//!
//! ```
//! use occam_netdb::{Database, ReplicaConfig, ReplicaSet};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let leader = Arc::new(Database::new());
//! leader.insert_device("dc01.pod00.sw00", vec![]).unwrap();
//! let set = ReplicaSet::start(leader, ReplicaConfig::default());
//! set.leader().wait_acked(1, Duration::from_secs(5));
//! assert!(set.wait_converged(Duration::from_secs(5)));
//! for f in set.followers() {
//!     assert_eq!(f.snapshot(), set.leader_db().snapshot());
//! }
//! set.shutdown();
//! ```

pub mod follower;
pub mod leader;
pub mod msg;
pub mod router;
pub mod tcp;

pub use follower::{Follower, Shipment};
pub use leader::Leader;
pub use msg::{ReplCodecError, ReplMsg};
pub use router::ReadRouter;

use crate::db::Database;
use crate::shard::StoreSnapshot;
use occam_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observability handles for the replication subsystem, bound to a
/// [`Registry`] under the `netdb.repl.*` names (DESIGN.md §9). All
/// instruments are created eagerly so the metrics contract holds even on
/// paths a given deployment never exercises.
#[derive(Clone, Debug)]
pub(crate) struct ReplObs {
    pub(crate) ship_batches: Counter,
    pub(crate) ship_records: Counter,
    pub(crate) ship_snapshots: Counter,
    pub(crate) acks: Counter,
    pub(crate) applied: Counter,
    pub(crate) reads_follower: Counter,
    pub(crate) reads_leader: Counter,
    pub(crate) reads_stale: Counter,
    pub(crate) failovers: Counter,
    pub(crate) lag_ns: Histogram,
    pub(crate) read_lag_commits: Histogram,
    pub(crate) failover_ns: Histogram,
}

impl ReplObs {
    pub(crate) fn bound(reg: &Registry) -> ReplObs {
        ReplObs {
            ship_batches: reg.counter("netdb.repl.ship.batches"),
            ship_records: reg.counter("netdb.repl.ship.records"),
            ship_snapshots: reg.counter("netdb.repl.ship.snapshots"),
            acks: reg.counter("netdb.repl.acks"),
            applied: reg.counter("netdb.repl.follower.applied"),
            reads_follower: reg.counter("netdb.repl.reads.follower"),
            reads_leader: reg.counter("netdb.repl.reads.leader"),
            reads_stale: reg.counter("netdb.repl.reads.stale_fallback"),
            failovers: reg.counter("netdb.repl.failovers"),
            lag_ns: reg.histogram("netdb.repl.lag_ns"),
            read_lag_commits: reg.histogram("netdb.repl.read_lag_commits"),
            failover_ns: reg.histogram("netdb.repl.failover_ns"),
        }
    }
}

/// Configuration for an in-process replica set.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Number of follower replicas.
    pub followers: usize,
    /// Followers that must confirm a commit before it counts as
    /// acknowledged (durable). Clamped to the follower count.
    pub quorum: usize,
    /// Shipper idle tick: the longest a new commit waits before shipping
    /// when the condvar wake is missed, and the partition re-probe period.
    pub tick: Duration,
    /// Staleness bound for routed reads, in commits behind the leader.
    pub max_lag: u64,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            followers: 2,
            quorum: 1,
            tick: Duration::from_millis(2),
            max_lag: 4,
        }
    }
}

/// One leader→follower shipping link. Partitioning a link makes the
/// shipper skip the follower; healing it lets the ack-driven protocol
/// re-ship the whole missing suffix on the next tick.
#[derive(Debug, Default)]
struct Link {
    partitioned: AtomicBool,
}

/// Outcome of a [`ReplicaSet::failover`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Promotion {
    /// Id of the promoted follower (longest durable WAL prefix).
    pub promoted: u32,
    /// The promoted replica's commit count at promotion — the new
    /// leader's history length.
    pub promoted_commits: u64,
    /// Surviving followers caught up synchronously during the failover.
    pub caught_up: usize,
}

/// A leader plus N in-process follower replicas wired together by a
/// background WAL shipper. See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct ReplicaSet {
    leader: Arc<Leader>,
    followers: Vec<Arc<Follower>>,
    links: Vec<Arc<Link>>,
    stop: Arc<AtomicBool>,
    shipper: Option<std::thread::JoinHandle<()>>,
    tick: Duration,
    max_lag: u64,
    quorum: usize,
    registry: Registry,
    obs: ReplObs,
}

/// Ships the WAL suffix past `follower`'s confirmed commits (or a
/// snapshot when the leader no longer holds that history), then records
/// the follower's resulting confirmation in the leader's ack table.
fn ship_to(leader: &Leader, follower: &Follower, obs: &ReplObs) {
    let confirmed = follower.commits();
    let shipped_at = Instant::now();
    match leader.db().wal_suffix_after_commits(confirmed) {
        None => {
            let (snap, base_commits) = leader.db().snapshot_with_commits();
            obs.ship_snapshots.inc();
            let _ = follower.ingest(Shipment::Snapshot {
                snap,
                base_commits,
                shipped_at,
            });
        }
        Some((first_seq, records)) if !records.is_empty() => {
            obs.ship_batches.inc();
            obs.ship_records.add(records.len() as u64);
            let _ = follower.ingest(Shipment::Entries {
                first_seq,
                records,
                shipped_at,
            });
        }
        Some(_) => {
            let _ = follower.ingest(Shipment::Heartbeat {
                commits: leader.db().commits(),
            });
        }
    }
    leader.record_ack(follower.id(), follower.commits());
    obs.acks.inc();
}

impl ReplicaSet {
    /// Starts a replica set around an existing leader database, with the
    /// replication instruments bound to the leader's registry. Followers
    /// bootstrap from scratch (the first shipping round sends them the
    /// full WAL, or a snapshot if the leader is itself re-based).
    pub fn start(leader_db: Arc<Database>, cfg: ReplicaConfig) -> ReplicaSet {
        let registry = leader_db.obs().clone();
        let obs = ReplObs::bound(&registry);
        let followers: Vec<Arc<Follower>> = (0..cfg.followers)
            .map(|i| Arc::new(Follower::new(i as u32, &registry)))
            .collect();
        let links: Vec<Arc<Link>> = (0..cfg.followers)
            .map(|_| Arc::new(Link::default()))
            .collect();
        let quorum = cfg.quorum.clamp(1, cfg.followers.max(1));
        let leader = Arc::new(Leader::new(leader_db, quorum, obs.clone()));
        ReplicaSet::spawn(
            leader,
            followers,
            links,
            cfg.tick,
            cfg.max_lag,
            quorum,
            registry,
            obs,
        )
    }

    /// Wires the pieces together and starts the shipper thread. Shared by
    /// [`ReplicaSet::start`] and [`ReplicaSet::failover`].
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        leader: Arc<Leader>,
        followers: Vec<Arc<Follower>>,
        links: Vec<Arc<Link>>,
        tick: Duration,
        max_lag: u64,
        quorum: usize,
        registry: Registry,
        obs: ReplObs,
    ) -> ReplicaSet {
        let stop = Arc::new(AtomicBool::new(false));
        let shipper = {
            let leader = Arc::clone(&leader);
            let followers = followers.clone();
            let links = links.clone();
            let stop = Arc::clone(&stop);
            let obs = obs.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for (f, link) in followers.iter().zip(&links) {
                        if link.partitioned.load(Ordering::Acquire) {
                            continue;
                        }
                        ship_to(&leader, f, &obs);
                    }
                    seen = leader.db().wait_commits(seen + 1, tick);
                }
            })
        };
        ReplicaSet {
            leader,
            followers,
            links,
            stop,
            shipper: Some(shipper),
            tick,
            max_lag,
            quorum,
            registry,
            obs,
        }
    }

    /// The leader handle (commit acknowledgement surface).
    pub fn leader(&self) -> &Arc<Leader> {
        &self.leader
    }

    /// The leader database.
    pub fn leader_db(&self) -> Arc<Database> {
        Arc::clone(self.leader.db())
    }

    /// The follower replicas, in id order.
    pub fn followers(&self) -> &[Arc<Follower>] {
        &self.followers
    }

    /// The registry the set's `netdb.repl.*` instruments are bound to.
    pub fn obs(&self) -> &Registry {
        &self.registry
    }

    /// Partitions (or heals) the shipping link to follower `idx`. While
    /// partitioned the follower receives nothing and confirms nothing;
    /// on heal the ack-driven shipper re-sends the whole missing suffix.
    pub fn set_partitioned(&self, idx: usize, partitioned: bool) {
        self.links[idx]
            .partitioned
            .store(partitioned, Ordering::Release);
    }

    /// A read router over this set's leader and followers, honoring the
    /// configured staleness bound.
    pub fn router(&self) -> Arc<ReadRouter> {
        Arc::new(ReadRouter::new(
            self.leader_db(),
            self.followers.clone(),
            self.max_lag,
            self.obs.clone(),
        ))
    }

    /// Blocks until every non-partitioned follower has confirmed every
    /// leader commit, or `timeout` elapses. Returns whether convergence
    /// was reached.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let target = self.leader.db().commits();
            let behind = self
                .followers
                .iter()
                .zip(&self.links)
                .any(|(f, l)| !l.partitioned.load(Ordering::Acquire) && f.commits() < target);
            if !behind {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn stop_shipper(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.shipper.take() {
            let _ = h.join();
        }
    }

    /// Simulates a leader crash: the shipper stops immediately, so
    /// nothing committed after this point reaches any follower. The
    /// leader database handle stays readable (it is the "dead disk" the
    /// chaos phases diff against); call [`ReplicaSet::failover`] next.
    pub fn kill_leader(&mut self) {
        self.stop_shipper();
    }

    /// Deterministic leader failover: promotes the follower with the
    /// longest durable WAL prefix (max confirmed commits, ties broken
    /// toward the lowest id), synchronously catches up the surviving
    /// non-partitioned followers from the new leader, and returns the
    /// restarted set plus a [`Promotion`] report.
    ///
    /// Acknowledged-commit durability: the promoted follower confirmed at
    /// least every quorum-acknowledged commit, so no acknowledged commit
    /// is lost — asserted by the chaos `kill-leader-mid-commit` phase.
    ///
    /// # Panics
    ///
    /// Panics if the set has no followers to promote.
    pub fn failover(mut self) -> (ReplicaSet, Promotion) {
        let started = Instant::now();
        self.stop_shipper();
        let (idx, _) = self
            .followers
            .iter()
            .enumerate()
            .max_by_key(|(i, f)| (f.commits(), std::cmp::Reverse(*i)))
            .expect("failover requires at least one follower");
        let promoted = self.followers.remove(idx);
        self.links.remove(idx);
        let new_leader_db = promoted.db();

        let mut caught_up = 0;
        for (f, link) in self.followers.iter().zip(&self.links) {
            if link.partitioned.load(Ordering::Acquire) {
                continue;
            }
            while f.commits() < new_leader_db.commits() {
                let confirmed = f.commits();
                let shipped_at = Instant::now();
                match new_leader_db.wal_suffix_after_commits(confirmed) {
                    None => {
                        let (snap, base_commits) = new_leader_db.snapshot_with_commits();
                        self.obs.ship_snapshots.inc();
                        let _ = f.ingest(Shipment::Snapshot {
                            snap,
                            base_commits,
                            shipped_at,
                        });
                    }
                    Some((first_seq, records)) => {
                        self.obs.ship_batches.inc();
                        self.obs.ship_records.add(records.len() as u64);
                        let _ = f.ingest(Shipment::Entries {
                            first_seq,
                            records,
                            shipped_at,
                        });
                    }
                }
            }
            caught_up += 1;
        }

        let promotion = Promotion {
            promoted: promoted.id(),
            promoted_commits: new_leader_db.commits(),
            caught_up,
        };
        self.obs.failovers.inc();
        self.obs
            .failover_ns
            .record(started.elapsed().as_nanos() as u64);

        let quorum = self.quorum.clamp(1, self.followers.len().max(1));
        let leader = Arc::new(Leader::new(new_leader_db, quorum, self.obs.clone()));
        let set = ReplicaSet::spawn(
            leader,
            self.followers.clone(),
            self.links.clone(),
            self.tick,
            self.max_lag,
            quorum,
            self.registry.clone(),
            self.obs.clone(),
        );
        // `self` still holds the old shipper state; it is already stopped.
        self.shipper = None;
        (set, promotion)
    }

    /// Stops the shipper thread and drops the set.
    pub fn shutdown(mut self) {
        self.stop_shipper();
    }
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.shipper.take() {
            let _ = h.join();
        }
    }
}

/// Asserts two replicas are byte-identical: same logical snapshot, and
/// both snapshots pass the shard self-check. Returns a description of
/// the first divergence instead of panicking, so chaos phases can fold
/// it into their violation accounting.
pub fn check_identical(a: &StoreSnapshot, b: &StoreSnapshot) -> Result<(), String> {
    a.self_check()?;
    b.self_check()?;
    if a != b {
        return Err("replica snapshots diverge".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;

    fn write_n(db: &Database, n: usize, tag: &str) {
        for i in 0..n {
            db.insert_device(&format!("dc01.pod00.{tag}{i:03}"), vec![])
                .unwrap();
        }
    }

    #[test]
    fn followers_converge_byte_identically() {
        let leader = Arc::new(Database::new());
        write_n(&leader, 10, "sw");
        let set = ReplicaSet::start(Arc::clone(&leader), ReplicaConfig::default());
        write_n(&leader, 10, "lf");
        assert!(set.wait_converged(Duration::from_secs(10)));
        for f in set.followers() {
            check_identical(&f.snapshot(), &leader.snapshot()).unwrap();
            assert_eq!(f.db().dump_wal(), leader.dump_wal());
        }
        set.shutdown();
    }

    #[test]
    fn partitioned_follower_catches_up_after_heal() {
        let leader = Arc::new(Database::new());
        let set = ReplicaSet::start(Arc::clone(&leader), ReplicaConfig::default());
        write_n(&leader, 5, "a");
        assert!(set.wait_converged(Duration::from_secs(10)));
        set.set_partitioned(0, true);
        write_n(&leader, 5, "b");
        // Follower 1 still converges; follower 0 is dark.
        assert!(set.wait_converged(Duration::from_secs(10)));
        assert!(set.followers()[0].commits() < leader.commits());
        set.set_partitioned(0, false);
        assert!(set.wait_converged(Duration::from_secs(10)));
        check_identical(&set.followers()[0].snapshot(), &leader.snapshot()).unwrap();
        set.shutdown();
    }

    #[test]
    fn failover_promotes_longest_prefix_and_preserves_acked() {
        let leader = Arc::new(Database::new());
        let mut set = ReplicaSet::start(
            Arc::clone(&leader),
            ReplicaConfig {
                followers: 3,
                ..ReplicaConfig::default()
            },
        );
        write_n(&leader, 8, "sw");
        let acked = set.leader().wait_acked(8, Duration::from_secs(10));
        assert!(acked >= 8);
        // Partition everyone, then write commits nobody will see.
        for i in 0..3 {
            set.set_partitioned(i, true);
        }
        write_n(&leader, 3, "lost");
        set.kill_leader();
        for i in 0..3 {
            set.set_partitioned(i, false);
        }
        let (set, promotion) = set.failover();
        assert!(promotion.promoted_commits >= acked, "acked commit lost");
        assert_eq!(promotion.caught_up, 2);
        let new_leader = set.leader_db();
        assert!(set.wait_converged(Duration::from_secs(10)));
        for f in set.followers() {
            check_identical(&f.snapshot(), &new_leader.snapshot()).unwrap();
        }
        // The promoted leader accepts new writes and replicates them.
        new_leader
            .insert_device("dc01.pod00.post0", vec![("X".into(), AttrValue::Int(1))])
            .unwrap();
        assert!(set.wait_converged(Duration::from_secs(10)));
        for f in set.followers() {
            assert!(f.db().device_exists("dc01.pod00.post0").unwrap());
        }
        set.shutdown();
    }
}
