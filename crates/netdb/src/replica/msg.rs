//! Wire format for replication traffic, for followers living in other
//! processes: the same length-prefixed framing convention as the gateway
//! protocol (`u32` big-endian length, then a tag byte, then the payload),
//! with WAL records carried in the stable [`crate::persist`] text format.
//!
//! Decoding is total: any frame either parses to a [`ReplMsg`] or to a
//! typed [`ReplCodecError`] — no panics on hostile bytes, which the
//! property tests check by truncating and corrupting valid frames.

use crate::persist;
use crate::wal::WalRecord;
use std::io::{Read, Write};

/// Maximum frame size (snapshot transfers ship whole stores, so this is
/// larger than the gateway's per-request bound).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

const TAG_HELLO: u8 = 0x01;
const TAG_SNAPSHOT: u8 = 0x02;
const TAG_ENTRIES: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
const TAG_HEARTBEAT: u8 = 0x05;

/// One replication protocol message.
#[derive(Clone, PartialEq, Debug)]
pub enum ReplMsg {
    /// Follower → leader greeting: who is connecting and how many commits
    /// it already holds, so the leader ships only the missing suffix.
    Hello {
        /// The follower's id.
        follower: u32,
        /// Commits the follower already holds durably.
        have_commits: u64,
    },
    /// Leader → follower bootstrap: records that, replayed from empty,
    /// rebuild the leader state as of `base_commits` commits (synthesized
    /// inserts — the TCP form of an O(shards) snapshot transfer).
    Snapshot {
        /// Commits the snapshot state contains.
        base_commits: u64,
        /// Synthesized records rebuilding that state from empty.
        records: Vec<WalRecord>,
    },
    /// Leader → follower WAL suffix starting at commit `first_seq`,
    /// commit markers included.
    Entries {
        /// Sequence of the first batch in `records`.
        first_seq: u64,
        /// Raw WAL records, commit markers included.
        records: Vec<WalRecord>,
    },
    /// Follower → leader confirmation of its durable prefix.
    Ack {
        /// The follower's id.
        follower: u32,
        /// Commits the follower now holds durably.
        commits: u64,
    },
    /// Leader → follower liveness + staleness beacon.
    Heartbeat {
        /// The leader's current commit count.
        commits: u64,
    },
}

/// A typed decode failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplCodecError {
    /// Frame length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Frame body shorter than its fixed fields require.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Payload failed to parse (bad WAL text, bad UTF-8).
    BadPayload(String),
}

impl std::fmt::Display for ReplCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplCodecError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ReplCodecError::Truncated => write!(f, "frame truncated"),
            ReplCodecError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            ReplCodecError::BadPayload(m) => write!(f, "bad frame payload: {m}"),
        }
    }
}

impl std::error::Error for ReplCodecError {}

fn take_u32(body: &[u8], at: usize) -> Result<u32, ReplCodecError> {
    let bytes: [u8; 4] = body
        .get(at..at + 4)
        .ok_or(ReplCodecError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u32::from_be_bytes(bytes))
}

fn take_u64(body: &[u8], at: usize) -> Result<u64, ReplCodecError> {
    let bytes: [u8; 8] = body
        .get(at..at + 8)
        .ok_or(ReplCodecError::Truncated)?
        .try_into()
        .expect("slice length checked");
    Ok(u64::from_be_bytes(bytes))
}

fn records_from(body: &[u8], at: usize) -> Result<Vec<WalRecord>, ReplCodecError> {
    let text = std::str::from_utf8(body.get(at..).ok_or(ReplCodecError::Truncated)?)
        .map_err(|e| ReplCodecError::BadPayload(e.to_string()))?;
    persist::decode(text).map_err(|e| ReplCodecError::BadPayload(e.to_string()))
}

impl ReplMsg {
    /// Encodes the message as one frame body (tag byte plus payload; no
    /// length prefix — [`write_msg`] adds it).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            ReplMsg::Hello {
                follower,
                have_commits,
            } => {
                body.push(TAG_HELLO);
                body.extend_from_slice(&follower.to_be_bytes());
                body.extend_from_slice(&have_commits.to_be_bytes());
            }
            ReplMsg::Snapshot {
                base_commits,
                records,
            } => {
                body.push(TAG_SNAPSHOT);
                body.extend_from_slice(&base_commits.to_be_bytes());
                body.extend_from_slice(persist::encode(records).as_bytes());
            }
            ReplMsg::Entries { first_seq, records } => {
                body.push(TAG_ENTRIES);
                body.extend_from_slice(&first_seq.to_be_bytes());
                body.extend_from_slice(persist::encode(records).as_bytes());
            }
            ReplMsg::Ack { follower, commits } => {
                body.push(TAG_ACK);
                body.extend_from_slice(&follower.to_be_bytes());
                body.extend_from_slice(&commits.to_be_bytes());
            }
            ReplMsg::Heartbeat { commits } => {
                body.push(TAG_HEARTBEAT);
                body.extend_from_slice(&commits.to_be_bytes());
            }
        }
        body
    }

    /// Decodes one frame body (tag byte plus payload, no length prefix).
    pub fn decode_body(body: &[u8]) -> Result<ReplMsg, ReplCodecError> {
        if body.len() > MAX_FRAME {
            return Err(ReplCodecError::Oversized(body.len()));
        }
        let tag = *body.first().ok_or(ReplCodecError::Truncated)?;
        match tag {
            TAG_HELLO => Ok(ReplMsg::Hello {
                follower: take_u32(body, 1)?,
                have_commits: take_u64(body, 5)?,
            }),
            TAG_SNAPSHOT => Ok(ReplMsg::Snapshot {
                base_commits: take_u64(body, 1)?,
                records: records_from(body, 9)?,
            }),
            TAG_ENTRIES => Ok(ReplMsg::Entries {
                first_seq: take_u64(body, 1)?,
                records: records_from(body, 9)?,
            }),
            TAG_ACK => Ok(ReplMsg::Ack {
                follower: take_u32(body, 1)?,
                commits: take_u64(body, 5)?,
            }),
            TAG_HEARTBEAT => Ok(ReplMsg::Heartbeat {
                commits: take_u64(body, 1)?,
            }),
            other => Err(ReplCodecError::BadTag(other)),
        }
    }
}

/// Writes one length-prefixed frame.
pub fn write_msg<W: Write>(w: &mut W, msg: &ReplMsg) -> std::io::Result<()> {
    let body = msg.encode_body();
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            ReplCodecError::Oversized(body.len()).to_string(),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; decode failures surface as `InvalidData` I/O errors.
pub fn read_msg<R: Read>(r: &mut R) -> std::io::Result<Option<ReplMsg>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ReplCodecError::Oversized(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    ReplMsg::decode_body(&body)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;

    fn sample_msgs() -> Vec<ReplMsg> {
        vec![
            ReplMsg::Hello {
                follower: 3,
                have_commits: 17,
            },
            ReplMsg::Snapshot {
                base_commits: 9,
                records: vec![WalRecord::InsertDevice {
                    name: "dc01.pod00.sw00".into(),
                    attrs: vec![("STATUS".into(), AttrValue::str("ACTIVE"))],
                }],
            },
            ReplMsg::Entries {
                first_seq: 42,
                records: vec![
                    WalRecord::SetDeviceAttr {
                        name: "weird\tname\\here".into(),
                        attr: "A".into(),
                        value: AttrValue::Int(-7),
                    },
                    WalRecord::Commit { seq: 42 },
                ],
            },
            ReplMsg::Ack {
                follower: 3,
                commits: 43,
            },
            ReplMsg::Heartbeat { commits: 43 },
        ]
    }

    #[test]
    fn body_roundtrip() {
        for msg in sample_msgs() {
            let body = msg.encode_body();
            assert_eq!(ReplMsg::decode_body(&body).unwrap(), msg);
        }
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = sample_msgs();
        let mut buf = Vec::new();
        for m in &msgs {
            write_msg(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(read_msg(&mut r).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_msg(&mut r).unwrap(), None);
    }

    #[test]
    fn truncation_is_total() {
        for msg in sample_msgs() {
            let body = msg.encode_body();
            for cut in 0..body.len() {
                // Either decodes (a shorter valid frame) or errors; must
                // never panic.
                let _ = ReplMsg::decode_body(&body[..cut]);
            }
        }
    }

    #[test]
    fn bad_tag_and_payload_rejected() {
        assert_eq!(
            ReplMsg::decode_body(&[0xEE, 0, 0]),
            Err(ReplCodecError::BadTag(0xEE))
        );
        assert_eq!(ReplMsg::decode_body(&[]), Err(ReplCodecError::Truncated));
        let mut body = vec![0x03];
        body.extend_from_slice(&7u64.to_be_bytes());
        body.extend_from_slice(b"BOGUS\trecord\n");
        assert!(matches!(
            ReplMsg::decode_body(&body),
            Err(ReplCodecError::BadPayload(_))
        ));
        let mut bad_utf8 = vec![0x03];
        bad_utf8.extend_from_slice(&7u64.to_be_bytes());
        bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            ReplMsg::decode_body(&bad_utf8),
            Err(ReplCodecError::BadPayload(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.push(0x01);
        let err = read_msg(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
