//! The leader's acknowledgement surface: which commits are durable on a
//! quorum of followers.

use super::ReplObs;
use crate::db::Database;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The leader handle: the leader database plus the per-follower
/// acknowledgement table that defines which commits are *acknowledged*
/// (confirmed by at least `quorum` followers, hence guaranteed to survive
/// a [`super::ReplicaSet::failover`]).
#[derive(Debug)]
pub struct Leader {
    db: Arc<Database>,
    quorum: usize,
    /// follower id → highest commit count that follower has confirmed.
    acks: Mutex<BTreeMap<u32, u64>>,
    acked_cv: Condvar,
    obs: ReplObs,
}

impl Leader {
    /// Wraps a database as the replication leader. Crate-internal:
    /// leaders are built by [`super::ReplicaSet`].
    pub(crate) fn new(db: Arc<Database>, quorum: usize, obs: ReplObs) -> Leader {
        Leader {
            db,
            quorum,
            acks: Mutex::new(BTreeMap::new()),
            acked_cv: Condvar::new(),
            obs,
        }
    }

    /// The leader database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The configured durability quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Records that `follower` has confirmed its first `commits` commits.
    /// Monotonic per follower; wakes any [`Leader::wait_acked`] callers.
    pub fn record_ack(&self, follower: u32, commits: u64) {
        let mut acks = self.acks.lock();
        let slot = acks.entry(follower).or_insert(0);
        if commits > *slot {
            *slot = commits;
            drop(acks);
            self.acked_cv.notify_all();
        }
    }

    /// The acknowledged commit count: the largest `n` such that at least
    /// `quorum` followers have confirmed their first `n` commits. `0`
    /// until a quorum of followers has reported.
    pub fn acked(&self) -> u64 {
        Self::acked_of(&self.acks.lock(), self.quorum)
    }

    fn acked_of(acks: &BTreeMap<u32, u64>, quorum: usize) -> u64 {
        if acks.len() < quorum {
            return 0;
        }
        let mut confirmed: Vec<u64> = acks.values().copied().collect();
        confirmed.sort_unstable_by(|a, b| b.cmp(a));
        confirmed[quorum - 1]
    }

    /// Blocks until at least `commits` commits are acknowledged or
    /// `timeout` elapses; returns the acknowledged count observed on
    /// wake-up. The `netdb.repl.acks` counter ticks on the shipping path,
    /// not here — waiting is free.
    pub fn wait_acked(&self, commits: u64, timeout: Duration) -> u64 {
        let _ = &self.obs; // obs is carried for future per-wait metrics
        let deadline = Instant::now() + timeout;
        let mut acks = self.acks.lock();
        loop {
            let now = Self::acked_of(&acks, self.quorum);
            if now >= commits {
                return now;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return now;
            };
            if left.is_zero() || self.acked_cv.wait_for(&mut acks, left).timed_out() {
                return Self::acked_of(&acks, self.quorum);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_obs::Registry;

    fn leader(quorum: usize) -> Leader {
        let reg = Registry::new();
        Leader::new(
            Arc::new(Database::with_obs(&reg)),
            quorum,
            ReplObs::bound(&reg),
        )
    }

    #[test]
    fn acked_is_quorum_th_largest() {
        let l = leader(2);
        assert_eq!(l.acked(), 0);
        l.record_ack(0, 10);
        assert_eq!(l.acked(), 0, "one follower is below quorum 2");
        l.record_ack(1, 7);
        assert_eq!(l.acked(), 7);
        l.record_ack(2, 9);
        assert_eq!(l.acked(), 9);
    }

    #[test]
    fn acks_are_monotonic() {
        let l = leader(1);
        l.record_ack(0, 5);
        l.record_ack(0, 3); // stale report ignored
        assert_eq!(l.acked(), 5);
    }

    #[test]
    fn wait_acked_times_out() {
        let l = leader(1);
        l.record_ack(0, 2);
        assert_eq!(l.wait_acked(5, Duration::from_millis(10)), 2);
        assert_eq!(l.wait_acked(2, Duration::from_millis(10)), 2);
    }
}
