//! Attribute values stored in the network database.

/// A value for a device or link attribute.
///
/// The source-of-truth schema is intentionally loose — Robotron-style
/// network databases store heterogeneous per-device attributes (state
/// enums, IP strings, firmware versions, counters).
#[derive(Clone, PartialEq, Debug)]
pub enum AttrValue {
    /// A string value (states, versions, addresses).
    Str(String),
    /// An integer value (speeds, counters).
    Int(i64),
    /// A boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// Convenience constructor from `&str`.
    pub fn str(s: impl Into<String>) -> AttrValue {
        AttrValue::Str(s.into())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Well-known attribute names used across the system.
///
/// These mirror the conventions in the paper's examples (`DEVICE_STATUS`,
/// `LINK_STATUS`, firmware attributes in the upgrade case study).
pub mod attrs {
    /// Device operational status (`ACTIVE`, `UNDER_MAINTENANCE`, `DRAINED`).
    pub const DEVICE_STATUS: &str = "DEVICE_STATUS";
    /// Link operational status (`UP`, `DOWN`).
    pub const LINK_STATUS: &str = "LINK_STATUS";
    /// Firmware version string.
    pub const FIRMWARE_VERSION: &str = "FIRMWARE_VERSION";
    /// Location of the firmware binary to push.
    pub const FIRMWARE_BINARY: &str = "FIRMWARE_BINARY";
    /// Device management IP address.
    pub const IP_ADDRESS: &str = "IP_ADDRESS";
    /// Temporary test IP address (allocated by `f_alloc_ip`).
    pub const TEST_IP: &str = "TEST_IP";
    /// Interface speed in Mbps.
    pub const LINK_SPEED: &str = "LINK_SPEED";
    /// Device health as recorded by monitoring (`HEALTHY`, `DEGRADED`).
    pub const HEALTH: &str = "HEALTH";
    /// Device status value: serving traffic.
    pub const STATUS_ACTIVE: &str = "ACTIVE";
    /// Device status value: flagged for maintenance.
    pub const STATUS_UNDER_MAINTENANCE: &str = "UNDER_MAINTENANCE";
    /// Device status value: drained of traffic.
    pub const STATUS_DRAINED: &str = "DRAINED";
    /// Link status value.
    pub const UP: &str = "UP";
    /// Link status value.
    pub const DOWN: &str = "DOWN";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::str("x").as_str(), Some("x"));
        assert_eq!(AttrValue::Int(3).as_int(), Some(3));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Int(3).as_str(), None);
        assert_eq!(AttrValue::str("x").as_int(), None);
    }

    #[test]
    fn conversions_and_display() {
        let v: AttrValue = "UP".into();
        assert_eq!(v.to_string(), "UP");
        let v: AttrValue = 42i64.into();
        assert_eq!(v.to_string(), "42");
        let v: AttrValue = true.into();
        assert_eq!(v.to_string(), "true");
    }
}
