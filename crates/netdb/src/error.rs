//! Database error types.
//!
//! The paper's dataset attributes 63% of workflow failures to "database
//! query errors and failures"; the error surface here models the classes a
//! workflow sees: connectivity, bad scopes, missing rows, and rejected
//! writes.

/// An error returned by a database query.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm so new failure classes can be added without a breaking change.
/// Retry logic should branch on [`DbError::is_transient`] rather than on
/// concrete variants.
#[non_exhaustive]
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// The query could not reach the database (injected or simulated
    /// connectivity loss).
    ConnectionFailure {
        /// Sequence number of the failed query attempt.
        query_seq: u64,
    },
    /// The scope regex failed to compile.
    InvalidScope(String),
    /// A referenced device does not exist.
    NoSuchDevice(String),
    /// A referenced link does not exist.
    NoSuchLink {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
    },
    /// An insert collided with an existing row.
    AlreadyExists(String),
    /// A constraint rejected the write (e.g. link endpoints missing).
    Constraint(String),
}

impl DbError {
    /// Whether retrying the operation can plausibly succeed.
    ///
    /// Connectivity loss is the paper's dominant failure class (63% of
    /// incidents) and is inherently transient: the query never reached
    /// the database, so re-issuing it is safe and often sufficient. The
    /// remaining classes are semantic (bad scope, missing row, rejected
    /// write) — retrying the same operation deterministically fails again.
    pub fn is_transient(&self) -> bool {
        matches!(self, DbError::ConnectionFailure { .. })
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::ConnectionFailure { query_seq } => {
                write!(f, "database connection failure (query #{query_seq})")
            }
            DbError::InvalidScope(msg) => write!(f, "invalid scope: {msg}"),
            DbError::NoSuchDevice(name) => write!(f, "no such device: {name}"),
            DbError::NoSuchLink { a_end, z_end } => {
                write!(f, "no such link: {a_end} <-> {z_end}")
            }
            DbError::AlreadyExists(name) => write!(f, "already exists: {name}"),
            DbError::Constraint(msg) => write!(f, "constraint violation: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;
