//! Sharded, versioned storage for the network database.
//!
//! The monolithic `RwLock<Store>` the database started with made every
//! query contend on one lock and made `snapshot()` deep-clone the whole
//! network — untenable at the paper's production simulation scale (16 DCs
//! × 96 pods × 92 switches ≈ 141k devices). This module replaces it with
//! a **sharded copy-on-write** layout:
//!
//! - Devices are partitioned into [`NUM_SHARDS`] shards by *name prefix*,
//!   aligned with the `occam-topology` naming scheme (`dc01.pod03.tor07`):
//!   the `(dc, pod)` prefix of a conforming name picks one of
//!   [`DEVICE_SHARDS`] data shards, and every non-conforming name lands in
//!   a single catch-all shard. Scoped queries whose literal prefix pins a
//!   `(dc, pod)` pair therefore touch exactly one shard.
//! - Links are stored once, in the shard of their lexically-smaller
//!   endpoint (the *owner* shard), and indexed per endpoint shard in a
//!   `by_endpoint` map, so `links_touching` is a scoped index scan and a
//!   device delete walks only the device's own links.
//! - Each shard is an immutable `ShardData` behind an `Arc`. Writers
//!   never mutate a published shard: a commit clones the shards it
//!   touches (`Arc::make_mut`), applies its records, and publishes a new
//!   shard vector. Readers and snapshots clone `Arc`s — they never block
//!   on a committing writer and never observe a partial batch.
//!
//! A [`StoreSnapshot`] is a handle on one published shard vector: taking
//! it is an O(1) `Arc` bump (the per-shard `Arc`s are shared, not
//! walked), reading it is lock-free, and [`StoreSnapshot::materialize`]
//! recovers the flat [`Store`] representation when a caller really needs
//! one (diff, legacy comparisons).

use crate::db::{link_key, DeviceRecord, LinkKey, LinkRecord, Store};
use crate::value::AttrValue;
use crate::wal::WalRecord;
use occam_regex::Pattern;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;
use std::sync::Arc;

/// Number of data shards conforming `(dc, pod)` prefixes hash into.
pub const DEVICE_SHARDS: usize = 128;
/// Index of the catch-all shard for names outside the naming scheme.
pub const CATCH_ALL_SHARD: usize = DEVICE_SHARDS;
/// Total shard count (data shards plus the catch-all).
pub const NUM_SHARDS: usize = DEVICE_SHARDS + 1;

/// Parses a `dcNN` name label; `None` for anything else.
fn parse_dc(label: &str) -> Option<u64> {
    let digits = label.strip_prefix("dc")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    // Cap at 12 digits so absurd labels cannot overflow the arithmetic.
    if digits.len() > 12 {
        return None;
    }
    digits.parse::<u64>().ok()
}

/// Maps the second name label to a pod slot: `podNN` → `NN + 1`, anything
/// else (`core`, a host label, absent) → `0`.
fn pod_slot(label: &str) -> u64 {
    match label.strip_prefix("pod") {
        Some(digits)
            if !digits.is_empty()
                && digits.len() <= 12
                && digits.bytes().all(|b| b.is_ascii_digit()) =>
        {
            digits.parse::<u64>().map(|p| p + 1).unwrap_or(0)
        }
        _ => 0,
    }
}

fn dc_pod_shard(dc: u64, pod: u64) -> usize {
    ((dc.wrapping_mul(131).wrapping_add(pod)) % DEVICE_SHARDS as u64) as usize
}

/// The shard a device name routes to. Total: every name has exactly one
/// home shard, and the assignment depends only on the name's first two
/// labels, so a literal scope prefix that pins both labels pins the shard.
pub fn shard_of(name: &str) -> usize {
    let (l1, rest) = match name.split_once('.') {
        Some((l1, rest)) => (l1, Some(rest)),
        None => (name, None),
    };
    match parse_dc(l1) {
        None => CATCH_ALL_SHARD,
        Some(dc) => {
            let l2 = rest.map(|r| r.split_once('.').map_or(r, |(l2, _)| l2));
            dc_pod_shard(dc, l2.map_or(0, pod_slot))
        }
    }
}

/// Which shards a scoped query must visit, derived from the scope's
/// literal prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardRoute {
    /// The prefix pins a single shard.
    One(usize),
    /// The prefix is too short to pin a shard; visit all of them.
    All,
}

/// Routes a literal scope prefix. Sound: every name starting with
/// `prefix` lives in the returned shard (or anywhere, for [`ShardRoute::All`]).
pub fn route_prefix(prefix: &str) -> ShardRoute {
    let Some((l1, rest)) = prefix.split_once('.') else {
        // First label incomplete: names continuing it may land anywhere.
        return ShardRoute::All;
    };
    let Some(dc) = parse_dc(l1) else {
        // Complete non-conforming first label: only catch-all names match.
        return ShardRoute::One(CATCH_ALL_SHARD);
    };
    match rest.split_once('.') {
        // Second label complete: the (dc, pod) pair is pinned.
        Some((l2, _)) => ShardRoute::One(dc_pod_shard(dc, pod_slot(l2))),
        // `dc01.po…`: matching names may carry any pod.
        None => ShardRoute::All,
    }
}

/// One shard's immutable contents. Cloned copy-on-write by commits.
#[derive(Clone, PartialEq, Default, Debug)]
pub(crate) struct ShardData {
    /// Device rows homed in this shard.
    pub devices: BTreeMap<String, Arc<DeviceRecord>>,
    /// Link rows owned by this shard (owner = shard of the lexically
    /// smaller endpoint).
    pub links: BTreeMap<LinkKey, Arc<LinkRecord>>,
    /// Endpoint index: device name homed here → keys of every link
    /// touching it (the link itself may be owned by another shard).
    pub by_endpoint: BTreeMap<String, BTreeSet<LinkKey>>,
}

/// One published version of the whole store: a fixed-length vector of
/// shard `Arc`s. The database keeps the current version behind a pointer
/// swap; snapshots hold old versions alive for as long as they need.
#[derive(Clone, Debug)]
pub(crate) struct StoreState {
    pub shards: Vec<Arc<ShardData>>,
    /// Per-shard monotonic version counters: `versions[i]` is bumped once
    /// per committed batch that replaced shard `i`'s `Arc`. Because
    /// [`StoreState::apply`] is existence-checked (a no-op record never
    /// clones a shard), dirtiness — and therefore the version vector — is
    /// a deterministic function of the WAL history, which is what lets
    /// recovery replay reproduce live versions exactly.
    pub versions: Vec<u64>,
    /// Number of committed batches folded into this state. Matches
    /// `Wal::num_commits()` for states published by the live commit
    /// protocol: a write assigned WAL seq `s` is first visible in the
    /// state with `commits == s + 1`.
    pub commits: u64,
}

impl StoreState {
    /// An empty store: every shard its own (distinct) empty allocation.
    pub fn new() -> StoreState {
        StoreState {
            shards: (0..NUM_SHARDS)
                .map(|_| Arc::new(ShardData::default()))
                .collect(),
            versions: vec![0; NUM_SHARDS],
            commits: 0,
        }
    }

    /// Seals one committed batch applied on top of `base`: bumps the
    /// version of every shard whose `Arc` was replaced since `base` and
    /// advances the commit counter. Returns how many shards were dirtied.
    pub fn finalize(&mut self, base: &StoreState) -> usize {
        let mut dirtied = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if !Arc::ptr_eq(shard, &base.shards[i]) {
                self.versions[i] += 1;
                dirtied += 1;
            }
        }
        self.commits += 1;
        dirtied
    }

    fn shard_mut(&mut self, idx: usize) -> &mut ShardData {
        Arc::make_mut(&mut self.shards[idx])
    }

    /// True if a device row exists.
    pub fn device_exists(&self, name: &str) -> bool {
        self.shards[shard_of(name)].devices.contains_key(name)
    }

    /// True if a link row exists (key must be normalized).
    pub fn link_exists(&self, key: &LinkKey) -> bool {
        self.shards[shard_of(&key.0)].links.contains_key(key)
    }

    pub fn num_devices(&self) -> usize {
        self.shards.iter().map(|s| s.devices.len()).sum()
    }

    pub fn num_links(&self) -> usize {
        self.shards.iter().map(|s| s.links.len()).sum()
    }

    fn index_link(&mut self, endpoint: &str, key: &LinkKey) {
        self.shard_mut(shard_of(endpoint))
            .by_endpoint
            .entry(endpoint.to_string())
            .or_default()
            .insert(key.clone());
    }

    fn unindex_link(&mut self, endpoint: &str, key: &LinkKey) {
        let shard = self.shard_mut(shard_of(endpoint));
        if let Some(set) = shard.by_endpoint.get_mut(endpoint) {
            set.remove(key);
            if set.is_empty() {
                shard.by_endpoint.remove(endpoint);
            }
        }
    }

    /// Applies one redo record. Semantics are identical to
    /// [`Store::apply`] — total application, records referencing missing
    /// rows are no-ops — which the shard-equivalence property tests
    /// assert over arbitrary record sequences. Existence is checked
    /// before `shard_mut` so a no-op record never clones a shard.
    pub fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::InsertDevice { name, attrs } => {
                let shard = self.shard_mut(shard_of(name));
                let dev = shard.devices.entry(name.clone()).or_default();
                let dev = Arc::make_mut(dev);
                for (k, v) in attrs {
                    dev.attrs.insert(k.clone(), v.clone());
                }
            }
            WalRecord::DeleteDevice { name } => {
                let si = shard_of(name);
                if self.shards[si].devices.contains_key(name)
                    || self.shards[si].by_endpoint.contains_key(name)
                {
                    let shard = self.shard_mut(si);
                    shard.devices.remove(name);
                    let keys = shard.by_endpoint.remove(name).unwrap_or_default();
                    for key in keys {
                        self.shard_mut(shard_of(&key.0)).links.remove(&key);
                        let other = if key.0 == *name { &key.1 } else { &key.0 };
                        if other != name {
                            self.unindex_link(other, &key);
                        }
                    }
                }
            }
            WalRecord::SetDeviceAttr { name, attr, value } => {
                let si = shard_of(name);
                if self.shards[si].devices.contains_key(name) {
                    let dev = self.shard_mut(si).devices.get_mut(name).expect("checked");
                    Arc::make_mut(dev).attrs.insert(attr.clone(), value.clone());
                }
            }
            WalRecord::UnsetDeviceAttr { name, attr } => {
                let si = shard_of(name);
                if self.shards[si].devices.contains_key(name) {
                    let dev = self.shard_mut(si).devices.get_mut(name).expect("checked");
                    Arc::make_mut(dev).attrs.remove(attr);
                }
            }
            WalRecord::InsertLink {
                a_end,
                z_end,
                attrs,
            } => {
                let key = link_key(a_end, z_end);
                let owner = self.shard_mut(shard_of(&key.0));
                let link = owner.links.entry(key.clone()).or_default();
                let link = Arc::make_mut(link);
                for (k, v) in attrs {
                    link.attrs.insert(k.clone(), v.clone());
                }
                self.index_link(&key.0, &key);
                self.index_link(&key.1, &key);
            }
            WalRecord::DeleteLink { a_end, z_end } => {
                let key = link_key(a_end, z_end);
                let oi = shard_of(&key.0);
                if self.shards[oi].links.contains_key(&key) {
                    self.shard_mut(oi).links.remove(&key);
                    self.unindex_link(&key.0.clone(), &key);
                    self.unindex_link(&key.1.clone(), &key);
                }
            }
            WalRecord::SetLinkAttr {
                a_end,
                z_end,
                attr,
                value,
            } => {
                let key = link_key(a_end, z_end);
                let oi = shard_of(&key.0);
                if self.shards[oi].links.contains_key(&key) {
                    let link = self.shard_mut(oi).links.get_mut(&key).expect("checked");
                    Arc::make_mut(link)
                        .attrs
                        .insert(attr.clone(), value.clone());
                }
            }
            WalRecord::UnsetLinkAttr { a_end, z_end, attr } => {
                let key = link_key(a_end, z_end);
                let oi = shard_of(&key.0);
                if self.shards[oi].links.contains_key(&key) {
                    let link = self.shard_mut(oi).links.get_mut(&key).expect("checked");
                    Arc::make_mut(link).attrs.remove(attr);
                }
            }
            WalRecord::Commit { .. } => {}
        }
    }
}

impl Default for StoreState {
    fn default() -> Self {
        StoreState::new()
    }
}

/// Devices of one shard that a literal prefix can reach, in name order.
pub(crate) fn prefixed<'a>(
    shard: &'a ShardData,
    prefix: &'a str,
) -> impl Iterator<Item = (&'a String, &'a Arc<DeviceRecord>)> + 'a {
    shard
        .devices
        .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
        .take_while(move |(n, _)| n.starts_with(prefix))
}

/// An immutable, consistent point-in-time view of the whole store.
///
/// Cheap to take (`Database::snapshot` bumps one `Arc`) and cheap to
/// clone; all reads are lock-free and observe exactly one committed
/// version. The read API mirrors the `Database` query surface;
/// [`StoreSnapshot::materialize`] is the escape hatch to a flat
/// [`Store`] for `diff` and legacy equality.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    pub(crate) state: Arc<StoreState>,
}

impl StoreSnapshot {
    /// An empty snapshot.
    pub fn empty() -> StoreSnapshot {
        StoreSnapshot {
            state: Arc::new(StoreState::new()),
        }
    }

    /// Builds a snapshot by replaying a record sequence from empty — the
    /// sharded counterpart of [`Store::replay`], asserted equivalent to
    /// it by property tests and the chaos crash points.
    ///
    /// Version accounting mirrors the live commit protocol: each
    /// `Commit` marker seals one batch, bumping the versions of the
    /// shards that batch dirtied and advancing the commit counter, so a
    /// replay of a database's WAL reproduces its published shard-version
    /// vector exactly. Trailing records after the last `Commit` (a torn
    /// tail, or a plain record list with no markers) still bump the
    /// versions of the shards they touch, but not the commit counter.
    pub fn replay(records: &[WalRecord]) -> StoreSnapshot {
        let mut state = StoreState::new();
        let mut base = state.clone();
        for r in records {
            state.apply(r);
            if matches!(r, WalRecord::Commit { .. }) {
                state.finalize(&base);
                base = state.clone();
            }
        }
        let tail_dirty = state
            .shards
            .iter()
            .zip(base.shards.iter())
            .any(|(a, b)| !Arc::ptr_eq(a, b));
        if tail_dirty {
            let commits = state.commits;
            state.finalize(&base);
            state.commits = commits;
        }
        StoreSnapshot {
            state: Arc::new(state),
        }
    }

    /// Returns a new snapshot with `records` applied copy-on-write on top
    /// of `self`, as one committed batch. Shards and device records the
    /// batch does not touch stay `Arc`-shared with `self`, so
    /// [`snapshot_delta`](crate::ivm::snapshot_delta) between `self` and
    /// the overlay — and everything built on it, like `occam-update`'s
    /// config diff — costs O(records), not O(devices). This is how
    /// "target state" snapshots should be constructed for diffing against
    /// a live base.
    pub fn overlay(&self, records: &[WalRecord]) -> StoreSnapshot {
        let mut state = (*self.state).clone();
        for r in records {
            state.apply(r);
        }
        state.finalize(&self.state);
        StoreSnapshot {
            state: Arc::new(state),
        }
    }

    /// Number of committed batches folded into this snapshot — equal to
    /// the WAL commit count at the instant the snapshot was taken, so a
    /// read served from it can be placed exactly in the commit order.
    pub fn commits(&self) -> u64 {
        self.state.commits
    }

    /// The per-shard monotonic version vector ([`NUM_SHARDS`] entries):
    /// entry `i` counts the committed batches that modified shard `i`.
    /// OCC validation compares these against the currently published
    /// vector to detect conflicting writes since the snapshot was taken.
    pub fn shard_versions(&self) -> &[u64] {
        &self.state.versions
    }

    /// The version counter of one shard. Panics if `shard >= NUM_SHARDS`.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.state.versions[shard]
    }

    /// The shards a scope can reach, as `(shard, prefix)` scan inputs.
    fn scoped_shards<'a>(&'a self, prefix: &str) -> impl Iterator<Item = &'a ShardData> + 'a {
        let route = route_prefix(prefix);
        self.state
            .shards
            .iter()
            .enumerate()
            .filter(move |(i, _)| match route {
                ShardRoute::One(idx) => *i == idx,
                ShardRoute::All => true,
            })
            .map(|(_, s)| s.as_ref())
    }

    /// Names of devices matching `scope`, sorted.
    pub fn select_devices(&self, scope: &Pattern) -> Vec<String> {
        let prefix = scope.literal_prefix();
        let mut out: Vec<String> = Vec::new();
        for shard in self.scoped_shards(&prefix) {
            out.extend(
                prefixed(shard, &prefix)
                    .filter(|(n, _)| scope.matches(n))
                    .map(|(n, _)| n.clone()),
            );
        }
        // Shards partition the namespace by hash, so cross-shard results
        // arrive unordered; single-shard results are already sorted.
        if matches!(route_prefix(&prefix), ShardRoute::All) {
            out.sort_unstable();
        }
        out
    }

    /// `device → value` for one attribute across a scope; devices without
    /// the attribute are omitted.
    pub fn get_attr(&self, scope: &Pattern, attr: &str) -> BTreeMap<String, AttrValue> {
        let prefix = scope.literal_prefix();
        let mut out = BTreeMap::new();
        for shard in self.scoped_shards(&prefix) {
            for (n, d) in prefixed(shard, &prefix).filter(|(n, _)| scope.matches(n)) {
                if let Some(v) = d.attrs.get(attr) {
                    out.insert(n.clone(), v.clone());
                }
            }
        }
        out
    }

    /// The full attribute map for every device in a scope.
    pub fn get_all(&self, scope: &Pattern) -> BTreeMap<String, BTreeMap<String, AttrValue>> {
        let prefix = scope.literal_prefix();
        let mut out = BTreeMap::new();
        for shard in self.scoped_shards(&prefix) {
            for (n, d) in prefixed(shard, &prefix).filter(|(n, _)| scope.matches(n)) {
                out.insert(n.clone(), d.attrs.clone());
            }
        }
        out
    }

    /// True if a device row exists.
    pub fn device_exists(&self, name: &str) -> bool {
        self.state.device_exists(name)
    }

    /// The attribute map of one device, if it exists.
    pub fn device_attrs(&self, name: &str) -> Option<BTreeMap<String, AttrValue>> {
        self.state.shards[shard_of(name)]
            .devices
            .get(name)
            .map(|d| d.attrs.clone())
    }

    /// Keys of the links with at least one endpoint matching `scope`,
    /// sorted. Served from the per-endpoint index, so a pod-scoped query
    /// scans one shard's index slice rather than every link.
    pub fn links_touching(&self, scope: &Pattern) -> Vec<LinkKey> {
        let prefix = scope.literal_prefix();
        let mut out: BTreeSet<LinkKey> = BTreeSet::new();
        for shard in self.scoped_shards(&prefix) {
            for (endpoint, keys) in shard
                .by_endpoint
                .range::<str, _>((Bound::Included(prefix.as_str()), Bound::Unbounded))
                .take_while(|(n, _)| n.starts_with(&prefix))
            {
                if scope.matches(endpoint) {
                    out.extend(keys.iter().cloned());
                }
            }
        }
        out.into_iter().collect()
    }

    /// `link → value` for one attribute across links touching a scope;
    /// links without the attribute are omitted.
    pub fn get_link_attr(&self, scope: &Pattern, attr: &str) -> BTreeMap<LinkKey, AttrValue> {
        let mut out = BTreeMap::new();
        for key in self.links_touching(scope) {
            if let Some(v) = self.link_attrs_ref(&key).and_then(|attrs| attrs.get(attr)) {
                out.insert(key, v.clone());
            }
        }
        out
    }

    fn link_attrs_ref(&self, key: &LinkKey) -> Option<&BTreeMap<String, AttrValue>> {
        self.state.shards[shard_of(&key.0)]
            .links
            .get(key)
            .map(|l| &l.attrs)
    }

    /// The attribute map of one link (key need not be normalized).
    pub fn link_attrs(&self, a_end: &str, z_end: &str) -> Option<BTreeMap<String, AttrValue>> {
        self.link_attrs_ref(&link_key(a_end, z_end)).cloned()
    }

    /// Number of device rows.
    pub fn num_devices(&self) -> usize {
        self.state.num_devices()
    }

    /// Number of link rows.
    pub fn num_links(&self) -> usize {
        self.state.num_links()
    }

    /// Flattens the snapshot into the legacy [`Store`] representation —
    /// the deep-clone escape hatch for [`crate::db::diff`] and other
    /// whole-store consumers. O(devices + links).
    pub fn materialize(&self) -> Store {
        let mut store = Store::default();
        for shard in &self.state.shards {
            for (n, d) in &shard.devices {
                store.devices.insert(n.clone(), (**d).clone());
            }
            for (k, l) in &shard.links {
                store.links.insert(k.clone(), (**l).clone());
            }
            for (e, keys) in &shard.by_endpoint {
                store
                    .by_endpoint
                    .entry(e.clone())
                    .or_default()
                    .extend(keys.iter().cloned());
            }
        }
        store
    }

    /// Verifies internal invariants: every device and endpoint is homed
    /// in the shard the router assigns it, every link is owned by its
    /// `key.0` shard, and the per-endpoint index is exactly the set of
    /// existing links. Used by the stress tests and the bench smoke gate.
    pub fn self_check(&self) -> Result<(), String> {
        let state = &self.state;
        if state.shards.len() != NUM_SHARDS {
            return Err(format!("expected {NUM_SHARDS} shards"));
        }
        let mut indexed: BTreeSet<LinkKey> = BTreeSet::new();
        for (i, shard) in state.shards.iter().enumerate() {
            for name in shard.devices.keys() {
                if shard_of(name) != i {
                    return Err(format!("device {name} homed in wrong shard {i}"));
                }
            }
            for key in shard.links.keys() {
                if shard_of(&key.0) != i {
                    return Err(format!("link {key:?} owned by wrong shard {i}"));
                }
                if key.0 > key.1 {
                    return Err(format!("link key {key:?} not normalized"));
                }
            }
            for (endpoint, keys) in &shard.by_endpoint {
                if shard_of(endpoint) != i {
                    return Err(format!("endpoint {endpoint} indexed in wrong shard {i}"));
                }
                if keys.is_empty() {
                    return Err(format!("empty index set left for {endpoint}"));
                }
                for key in keys {
                    if key.0 != *endpoint && key.1 != *endpoint {
                        return Err(format!("{endpoint} indexes foreign link {key:?}"));
                    }
                    if !state.link_exists(key) {
                        return Err(format!("index references missing link {key:?}"));
                    }
                    indexed.insert(key.clone());
                }
            }
        }
        let total_links = state.num_links();
        if indexed.len() != total_links {
            return Err(format!(
                "index covers {} links, store holds {total_links}",
                indexed.len()
            ));
        }
        Ok(())
    }
}

impl PartialEq for StoreSnapshot {
    fn eq(&self, other: &StoreSnapshot) -> bool {
        self.state
            .shards
            .iter()
            .zip(other.state.shards.iter())
            // Shard routing is deterministic, so shard-wise equality is
            // store equality; pointer equality short-circuits unchanged
            // shards (the common case between nearby snapshots).
            .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl PartialEq<Store> for StoreSnapshot {
    fn eq(&self, other: &Store) -> bool {
        if self.num_devices() != other.devices.len() || self.num_links() != other.links.len() {
            return false;
        }
        self.state.shards.iter().all(|shard| {
            shard
                .devices
                .iter()
                .all(|(n, d)| other.devices.get(n).is_some_and(|od| **d == *od))
                && shard
                    .links
                    .iter()
                    .all(|(k, l)| other.links.get(k).is_some_and(|ol| **l == *ol))
        })
    }
}

impl PartialEq<StoreSnapshot> for Store {
    fn eq(&self, other: &StoreSnapshot) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_names_shard_by_dc_pod() {
        assert_eq!(
            shard_of("dc01.pod03.tor07"),
            shard_of("dc01.pod03.tor00.host02")
        );
        assert_eq!(shard_of("dc01.pod03.tor07"), shard_of("dc01.pod03.agg01"));
        assert_ne!(shard_of("dc01.pod03.tor07"), shard_of("dc01.pod04.tor07"));
        assert_eq!(shard_of("dc02.core.c00"), shard_of("dc02.core.c07"));
        assert!(shard_of("dc01.pod00.sw00") < DEVICE_SHARDS);
    }

    #[test]
    fn foreign_names_land_in_catch_all() {
        for name in ["rack5", "", "dcxx.pod01.tor01", "x.y.z", "dc.pod00.a"] {
            assert_eq!(shard_of(name), CATCH_ALL_SHARD, "{name:?}");
        }
        // A bare `dcNN` is conforming (pod slot 0).
        assert!(shard_of("dc07") < DEVICE_SHARDS);
    }

    #[test]
    fn prefix_routing_is_sound_and_precise() {
        // Complete (dc, pod) prefix pins the shard of every match.
        assert_eq!(
            route_prefix("dc01.pod03."),
            ShardRoute::One(shard_of("dc01.pod03.tor07"))
        );
        assert_eq!(
            route_prefix("dc01.core.c"),
            ShardRoute::One(shard_of("dc01.core.c00"))
        );
        // Complete foreign first label pins the catch-all.
        assert_eq!(route_prefix("rack."), ShardRoute::One(CATCH_ALL_SHARD));
        // Incomplete labels cannot be routed.
        assert_eq!(route_prefix(""), ShardRoute::All);
        assert_eq!(route_prefix("dc01"), ShardRoute::All);
        assert_eq!(route_prefix("dc01.pod0"), ShardRoute::All);
    }

    #[test]
    fn replay_matches_naive_store_on_a_small_script() {
        let records = vec![
            WalRecord::InsertDevice {
                name: "dc01.pod00.tor00".into(),
                attrs: vec![("A".into(), AttrValue::Int(1))],
            },
            WalRecord::InsertDevice {
                name: "weird-device".into(),
                attrs: vec![],
            },
            WalRecord::InsertLink {
                a_end: "dc01.pod00.tor00".into(),
                z_end: "weird-device".into(),
                attrs: vec![("S".into(), AttrValue::Int(9))],
            },
            WalRecord::SetDeviceAttr {
                name: "missing".into(),
                attr: "X".into(),
                value: AttrValue::Int(0),
            },
            WalRecord::DeleteDevice {
                name: "weird-device".into(),
            },
            WalRecord::Commit { seq: 0 },
        ];
        let sharded = StoreSnapshot::replay(&records);
        let naive = Store::replay(&records);
        assert_eq!(sharded, naive);
        sharded.self_check().unwrap();
        assert_eq!(sharded.materialize(), naive);
        assert_eq!(sharded.num_links(), 0);
    }

    #[test]
    fn snapshot_reads_mirror_scope_semantics() {
        let mut recs = Vec::new();
        for pod in 0..3u32 {
            for sw in 0..2u32 {
                recs.push(WalRecord::InsertDevice {
                    name: format!("dc01.pod{pod:02}.sw{sw:02}"),
                    attrs: vec![("N".into(), AttrValue::Int(i64::from(pod)))],
                });
            }
        }
        recs.push(WalRecord::InsertLink {
            a_end: "dc01.pod00.sw00".into(),
            z_end: "dc01.pod01.sw00".into(),
            attrs: vec![],
        });
        let snap = StoreSnapshot::replay(&recs);
        let pod1 = Pattern::from_glob("dc01.pod01.*").unwrap();
        assert_eq!(
            snap.select_devices(&pod1),
            vec!["dc01.pod01.sw00".to_string(), "dc01.pod01.sw01".to_string()]
        );
        assert_eq!(snap.get_attr(&pod1, "N").len(), 2);
        // The cross-pod link is visible from both endpoints' scopes.
        assert_eq!(snap.links_touching(&pod1).len(), 1);
        assert_eq!(
            snap.links_touching(&Pattern::from_glob("dc01.pod00.*").unwrap()),
            snap.links_touching(&pod1)
        );
        let all = Pattern::from_glob("*").unwrap();
        let everything = snap.select_devices(&all);
        assert_eq!(everything.len(), 6);
        let mut sorted = everything.clone();
        sorted.sort();
        assert_eq!(everything, sorted, "All-route results must stay sorted");
    }
}
