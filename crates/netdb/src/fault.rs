//! Fault injection for database queries.
//!
//! Database query errors are the top failure class in the paper's dataset
//! (63%). The injector lets tests and experiments fail specific queries
//! (deterministically, by sequence number) or a random fraction of queries
//! (seeded, reproducible).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration for query fault injection.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Query sequence numbers (0-based, global per database) that must fail.
    pub fail_queries: HashSet<u64>,
    /// Probability in `[0, 1]` that any other query fails.
    pub failure_rate: f64,
    /// Seed for the probabilistic failures.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that never fails anything.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that fails exactly the given query sequence numbers.
    pub fn fail_at(seqs: impl IntoIterator<Item = u64>) -> FaultPlan {
        FaultPlan {
            fail_queries: seqs.into_iter().collect(),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails each query independently with probability `rate`.
    pub fn random(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            failure_rate: rate.clamp(0.0, 1.0),
            seed,
            ..FaultPlan::default()
        }
    }

    /// Starts a fluent [`FaultPlanBuilder`] — the uniform way campaign
    /// configs declare faults across layers (netdb queries and the
    /// emunet device-fault shim share this plan type):
    ///
    /// ```
    /// use occam_netdb::FaultPlan;
    /// let plan = FaultPlan::builder().fail_at([3, 7]).rate(0.05).seed(42).build();
    /// assert!(plan.fail_queries.contains(&3));
    /// assert_eq!(plan.failure_rate, 0.05);
    /// assert_eq!(plan.seed, 42);
    /// ```
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }
}

/// Fluent constructor for [`FaultPlan`] (see [`FaultPlan::builder`]).
///
/// All knobs compose: deterministic per-sequence failures (`fail_at`),
/// a seeded probabilistic failure rate (`rate` + `seed`), or both.
#[derive(Clone, Debug, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Adds operation sequence numbers (0-based, counted from the moment
    /// the plan is installed) that must fail. Accumulates across calls.
    pub fn fail_at(mut self, seqs: impl IntoIterator<Item = u64>) -> FaultPlanBuilder {
        self.plan.fail_queries.extend(seqs);
        self
    }

    /// Sets the independent per-operation failure probability, clamped to
    /// `[0, 1]`.
    pub fn rate(mut self, rate: f64) -> FaultPlanBuilder {
        self.plan.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Seeds the probabilistic failures (same seed ⇒ same fault stream).
    pub fn seed(mut self, seed: u64) -> FaultPlanBuilder {
        self.plan.seed = seed;
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// Stateful injector: consulted once per query.
#[derive(Debug)]
pub struct FaultInjector {
    plan: Mutex<FaultPlan>,
    rng: Mutex<StdRng>,
    seq: Mutex<u64>,
    injected: Mutex<u64>,
    enabled: AtomicBool,
}

impl FaultInjector {
    /// Creates an injector from a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan: Mutex::new(plan),
            rng: Mutex::new(rng),
            seq: Mutex::new(0),
            injected: Mutex::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Replaces the plan and restarts the query sequence at zero, so
    /// `fail_queries` offsets are relative to the moment the plan is set.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.rng.lock() = StdRng::seed_from_u64(plan.seed);
        *self.plan.lock() = plan;
        *self.seq.lock() = 0;
    }

    /// Pauses (`false`) or resumes (`true`) injection without touching the
    /// plan, the sequence counter, or the probabilistic stream. A paused
    /// injector answers every [`FaultInjector::check`] with `None` and
    /// does not advance the sequence, so recovery procedures (rollback
    /// execution, invariant verification) can run fault-free and the fault
    /// stream stays aligned with the *injected-into* operation count.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether injection is currently active (see
    /// [`FaultInjector::set_enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Advances the query sequence; returns `Some(seq)` if this query must
    /// fail, `None` otherwise.
    pub fn check(&self) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let mut seq_guard = self.seq.lock();
        let seq = *seq_guard;
        *seq_guard += 1;
        drop(seq_guard);
        let plan = self.plan.lock();
        let fail = plan.fail_queries.contains(&seq)
            || (plan.failure_rate > 0.0 && self.rng.lock().random::<f64>() < plan.failure_rate);
        drop(plan);
        if fail {
            *self.injected.lock() += 1;
            Some(seq)
        } else {
            None
        }
    }

    /// Total queries observed.
    pub fn queries_seen(&self) -> u64 {
        *self.seq.lock()
    }

    /// Total failures injected.
    pub fn failures_injected(&self) -> u64 {
        *self.injected.lock()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(FaultPlan::none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_never_fails() {
        let inj = FaultInjector::default();
        for _ in 0..100 {
            assert_eq!(inj.check(), None);
        }
        assert_eq!(inj.queries_seen(), 100);
        assert_eq!(inj.failures_injected(), 0);
    }

    #[test]
    fn targeted_failures_hit_exact_sequence() {
        let inj = FaultInjector::new(FaultPlan::fail_at([2, 5]));
        let results: Vec<bool> = (0..8).map(|_| inj.check().is_some()).collect();
        assert_eq!(
            results,
            vec![false, false, true, false, false, true, false, false]
        );
        assert_eq!(inj.failures_injected(), 2);
    }

    #[test]
    fn random_failures_are_reproducible() {
        let run = |seed| {
            let inj = FaultInjector::new(FaultPlan::random(0.3, seed));
            (0..50).map(|_| inj.check().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let hits = run(7).iter().filter(|&&b| b).count();
        assert!(hits > 0 && hits < 50, "rate 0.3 over 50 should be interior");
    }

    #[test]
    fn builder_composes_all_knobs() {
        let plan = FaultPlan::builder()
            .fail_at([3, 7])
            .fail_at([11])
            .rate(0.05)
            .seed(42)
            .build();
        assert_eq!(
            plan.fail_queries,
            HashSet::from([3, 7, 11]),
            "fail_at accumulates"
        );
        assert_eq!(plan.failure_rate, 0.05);
        assert_eq!(plan.seed, 42);
        assert_eq!(FaultPlan::builder().rate(9.0).build().failure_rate, 1.0);
    }

    #[test]
    fn paused_injector_neither_fails_nor_advances() {
        let inj = FaultInjector::new(FaultPlan::fail_at([0, 1, 2, 3]));
        assert!(inj.check().is_some());
        inj.set_enabled(false);
        assert!(!inj.is_enabled());
        for _ in 0..10 {
            assert_eq!(inj.check(), None);
        }
        assert_eq!(inj.queries_seen(), 1, "paused checks do not advance seq");
        inj.set_enabled(true);
        assert_eq!(inj.check(), Some(1), "sequence resumes where it paused");
    }

    #[test]
    fn rate_is_clamped() {
        let plan = FaultPlan::random(7.0, 1);
        assert_eq!(plan.failure_rate, 1.0);
        let inj = FaultInjector::new(plan);
        assert!(inj.check().is_some());
    }
}
