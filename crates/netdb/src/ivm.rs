//! Incremental view maintenance over shard snapshots.
//!
//! PR 5's sharded store already gives every commit an exact dirt trail:
//! a commit replaces the `Arc`s of the shards it touched and bumps their
//! version counters, leaving every other shard pointer-identical. This
//! module turns that trail into *incremental views*: a [`ViewCache`]
//! keyed by `(scope, assertions)` keeps a per-shard partial result next
//! to the shard `Arc` it was computed from, and a refresh recomputes only
//! the shards whose pointer moved (`Arc::ptr_eq` fast path) — O(delta)
//! instead of O(network) for the audit-style reads that dominate the
//! management plane (DESIGN.md §17.3).
//!
//! Two consumers ride on the same machinery:
//!
//! - **Compliance views** ([`ViewCache::refresh`]): "every device in
//!   scope has attribute A = v" checks, the substrate of `status_audit`
//!   and spec compliance (`occam-spec`). [`compliance_cold`] is the
//!   from-scratch oracle the property tests and `spec_bench` compare
//!   against.
//! - **Snapshot deltas** ([`snapshot_delta`]): the changed/removed device
//!   sets between two snapshots, skipping pointer-equal shards *and*
//!   pointer-equal device records — the engine under `occam-update`'s
//!   config diff.

use crate::shard::{prefixed, route_prefix, ShardData, ShardRoute, StoreSnapshot, NUM_SHARDS};
use crate::value::AttrValue;
use occam_obs::{Counter, Histogram, Registry};
use occam_regex::Pattern;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One desired-state assertion: every device in scope must carry
/// `attr = expected`.
#[derive(Clone, PartialEq, Debug)]
pub struct Assertion {
    /// Attribute name.
    pub attr: String,
    /// Required value.
    pub expected: AttrValue,
}

impl Assertion {
    /// Convenience constructor.
    pub fn new(attr: impl Into<String>, expected: impl Into<AttrValue>) -> Assertion {
        Assertion {
            attr: attr.into(),
            expected: expected.into(),
        }
    }
}

/// One device that fails an assertion.
#[derive(Clone, PartialEq, Debug)]
pub struct NonCompliance {
    /// Device name.
    pub device: String,
    /// The assertion's attribute.
    pub attr: String,
    /// The required value.
    pub expected: AttrValue,
    /// What the device actually carries (`None`: attribute missing).
    pub actual: Option<AttrValue>,
}

/// The merged result of a compliance view evaluation.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ComplianceReport {
    /// Devices in scope at the evaluated snapshot.
    pub devices: u64,
    /// Every `(device, assertion)` pair that fails, sorted by device then
    /// attribute — deterministic regardless of shard layout.
    pub non_compliant: Vec<NonCompliance>,
    /// Shards recomputed by this evaluation (dirty or uncached).
    pub recomputed_shards: u64,
    /// Shards whose cached partial was reused via pointer equality.
    pub reused_shards: u64,
}

impl ComplianceReport {
    /// True when every device in scope satisfies every assertion.
    pub fn compliant(&self) -> bool {
        self.non_compliant.is_empty()
    }

    /// Result equality: same devices and the same non-compliant set,
    /// ignoring how much work (recomputed vs reused shards) produced it.
    /// This is what "incremental == cold" means in the property tests and
    /// `spec_bench`.
    pub fn same_result(&self, other: &ComplianceReport) -> bool {
        self.devices == other.devices && self.non_compliant == other.non_compliant
    }

    /// A short human summary of the worst offenders (up to `max`).
    pub fn summary(&self, max: usize) -> String {
        if self.compliant() {
            return format!("{} devices, all compliant", self.devices);
        }
        let shown: Vec<String> = self
            .non_compliant
            .iter()
            .take(max)
            .map(|nc| {
                let actual = match &nc.actual {
                    Some(v) => format!("{v:?}"),
                    None => "<missing>".to_string(),
                };
                format!(
                    "{} {}={} (want {:?})",
                    nc.device, nc.attr, actual, nc.expected
                )
            })
            .collect();
        let more = self.non_compliant.len().saturating_sub(max);
        let tail = if more > 0 {
            format!(" (+{more} more)")
        } else {
            String::new()
        };
        format!(
            "{}/{} non-compliant: {}{}",
            self.non_compliant.len(),
            self.devices,
            shown.join(", "),
            tail
        )
    }
}

/// One shard's cached partial: the result plus the shard `Arc` it was
/// computed from. Valid exactly while the live shard is pointer-equal.
struct CachedShard {
    base: Arc<ShardData>,
    devices: u64,
    non_compliant: Vec<NonCompliance>,
}

/// One view's partials, indexed by shard.
struct CachedView {
    shards: Vec<Option<CachedShard>>,
}

impl CachedView {
    fn empty() -> CachedView {
        CachedView {
            shards: (0..NUM_SHARDS).map(|_| None).collect(),
        }
    }
}

/// `netdb.view.*` instruments (DESIGN.md §9).
#[derive(Clone)]
struct ViewObs {
    refreshes: Counter,
    hits: Counter,
    dirty_shards: Counter,
    recompute_ns: Histogram,
}

impl ViewObs {
    fn bound(reg: &Registry) -> ViewObs {
        ViewObs {
            refreshes: reg.counter("netdb.view.refreshes"),
            hits: reg.counter("netdb.view.hits"),
            dirty_shards: reg.counter("netdb.view.dirty_shards"),
            recompute_ns: reg.histogram("netdb.view.recompute_ns"),
        }
    }
}

/// Keys the cache can hold before the oldest entries are dropped; bounds
/// memory when callers audit many distinct scopes.
const MAX_CACHED_VIEWS: usize = 64;

/// The incremental compliance-view cache. One per [`Database`]
/// (`db.views()`); safe to share across tasks — refreshes serialize on an
/// internal mutex, which is fine because a refresh after the first is
/// O(dirty shards).
///
/// [`Database`]: crate::Database
pub struct ViewCache {
    views: Mutex<BTreeMap<String, CachedView>>,
    obs: ViewObs,
}

impl std::fmt::Debug for ViewCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewCache")
            .field("views", &self.views.lock().len())
            .finish()
    }
}

/// Stable cache key: the scope's source glob plus the assertion list.
fn view_key(scope: &Pattern, assertions: &[Assertion]) -> String {
    let mut key = String::from(scope.source());
    for a in assertions {
        key.push('|');
        key.push_str(&a.attr);
        key.push('=');
        key.push_str(&format!("{:?}", a.expected));
    }
    key
}

/// Whether `route` visits shard `i`. A pinned route still visits the
/// catch-all shard: non-conforming names (which always land there) can
/// still match a conforming glob prefix.
fn route_visits(route: &ShardRoute, i: usize) -> bool {
    match route {
        ShardRoute::All => true,
        ShardRoute::One(idx) => i == *idx || i == crate::shard::CATCH_ALL_SHARD,
    }
}

/// Evaluates the assertions over one shard from scratch.
fn scan_shard(
    shard: &ShardData,
    prefix: &str,
    scope: &Pattern,
    assertions: &[Assertion],
) -> (u64, Vec<NonCompliance>) {
    let mut devices = 0;
    let mut non_compliant = Vec::new();
    for (name, record) in prefixed(shard, prefix) {
        if !scope.matches(name) {
            continue;
        }
        devices += 1;
        for a in assertions {
            let actual = record.attrs.get(&a.attr);
            if actual != Some(&a.expected) {
                non_compliant.push(NonCompliance {
                    device: name.clone(),
                    attr: a.attr.clone(),
                    expected: a.expected.clone(),
                    actual: actual.cloned(),
                });
            }
        }
    }
    (devices, non_compliant)
}

impl ViewCache {
    /// Creates a cache whose `netdb.view.*` instruments bind to `reg`.
    pub fn new(reg: &Registry) -> ViewCache {
        ViewCache {
            views: Mutex::new(BTreeMap::new()),
            obs: ViewObs::bound(reg),
        }
    }

    /// Evaluates the compliance view at `snap`, reusing every cached
    /// shard partial whose shard `Arc` is unchanged and recomputing the
    /// rest. The returned report is identical to [`compliance_cold`] on
    /// the same inputs (the soundness argument of DESIGN.md §17.3: a
    /// pointer-equal shard holds byte-identical rows, so its partial is
    /// still exact; a moved pointer is recomputed from the new rows).
    pub fn refresh(
        &self,
        snap: &StoreSnapshot,
        scope: &Pattern,
        assertions: &[Assertion],
    ) -> ComplianceReport {
        let key = view_key(scope, assertions);
        let prefix = scope.literal_prefix();
        let route = route_prefix(&prefix);
        let mut report = ComplianceReport::default();
        let mut views = self.views.lock();
        if !views.contains_key(&key) && views.len() >= MAX_CACHED_VIEWS {
            views.pop_first();
        }
        let cached = views.entry(key).or_insert_with(CachedView::empty);
        for (i, shard) in snap.state.shards.iter().enumerate() {
            if !route_visits(&route, i) {
                continue;
            }
            let reusable = cached.shards[i]
                .as_ref()
                .is_some_and(|c| Arc::ptr_eq(&c.base, shard));
            if reusable {
                report.reused_shards += 1;
            } else {
                let started = Instant::now();
                let (devices, non_compliant) = scan_shard(shard, &prefix, scope, assertions);
                self.obs.recompute_ns.record_duration(started.elapsed());
                cached.shards[i] = Some(CachedShard {
                    base: Arc::clone(shard),
                    devices,
                    non_compliant,
                });
                report.recomputed_shards += 1;
            }
            let partial = cached.shards[i].as_ref().expect("partial just ensured");
            report.devices += partial.devices;
            report
                .non_compliant
                .extend(partial.non_compliant.iter().cloned());
        }
        report
            .non_compliant
            .sort_by(|a, b| (&a.device, &a.attr).cmp(&(&b.device, &b.attr)));
        self.obs.refreshes.inc();
        self.obs.hits.add(report.reused_shards);
        self.obs.dirty_shards.add(report.recomputed_shards);
        report
    }

    /// Drops every cached view (used by tests; a live system never needs
    /// it — stale partials are revalidated by pointer, not by time).
    pub fn clear(&self) {
        self.views.lock().clear();
    }
}

/// From-scratch compliance evaluation: scans every routed shard without
/// consulting or populating any cache. The oracle incremental refreshes
/// are compared against.
pub fn compliance_cold(
    snap: &StoreSnapshot,
    scope: &Pattern,
    assertions: &[Assertion],
) -> ComplianceReport {
    let prefix = scope.literal_prefix();
    let route = route_prefix(&prefix);
    let mut report = ComplianceReport::default();
    for (i, shard) in snap.state.shards.iter().enumerate() {
        if !route_visits(&route, i) {
            continue;
        }
        let (devices, non_compliant) = scan_shard(shard, &prefix, scope, assertions);
        report.devices += devices;
        report.non_compliant.extend(non_compliant);
        report.recomputed_shards += 1;
    }
    report
        .non_compliant
        .sort_by(|a, b| (&a.device, &a.attr).cmp(&(&b.device, &b.attr)));
    report
}

/// The device-level difference between two snapshots, computed by
/// skipping pointer-equal shards and pointer-equal device records.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SnapshotDelta {
    /// Devices present in `new` that were added or whose record changed
    /// since `old`, sorted by name.
    pub changed: Vec<String>,
    /// Devices present in `old` but absent from `new`, sorted by name.
    pub removed: Vec<String>,
    /// Shards skipped wholesale because their `Arc` was unchanged.
    pub shards_reused: u64,
    /// Shards that needed a record-level walk.
    pub shards_scanned: u64,
}

/// Computes the [`SnapshotDelta`] from `old` to `new`.
///
/// A pointer-equal shard contributes nothing (same rows); inside a moved
/// shard, a pointer-equal device record likewise contributes nothing —
/// the copy-on-write commit path only replaces the records it writes, so
/// the walk is O(changed devices) plus O(log n) map overhead, not
/// O(devices).
pub fn snapshot_delta(old: &StoreSnapshot, new: &StoreSnapshot) -> SnapshotDelta {
    let mut delta = SnapshotDelta::default();
    for (old_shard, new_shard) in old.state.shards.iter().zip(new.state.shards.iter()) {
        if Arc::ptr_eq(old_shard, new_shard) {
            delta.shards_reused += 1;
            continue;
        }
        delta.shards_scanned += 1;
        for (name, record) in &new_shard.devices {
            match old_shard.devices.get(name) {
                Some(old_record) if Arc::ptr_eq(old_record, record) => {}
                _ => delta.changed.push(name.clone()),
            }
        }
        for name in old_shard.devices.keys() {
            if !new_shard.devices.contains_key(name) {
                delta.removed.push(name.clone());
            }
        }
    }
    delta.changed.sort();
    delta.removed.sort();
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, WriteOp};
    use crate::value::attrs;

    fn set(db: &Database, name: &str, attr: &str, value: &str) {
        db.batch(&[WriteOp::SetDeviceAttr {
            name: name.into(),
            attr: attr.into(),
            value: value.into(),
        }])
        .unwrap();
    }

    fn seeded() -> Database {
        let db = Database::new();
        for pod in 0..4 {
            for sw in 0..8 {
                db.insert_device(
                    &format!("dc01.pod{pod:02}.sw{sw:02}"),
                    vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
                )
                .unwrap();
            }
        }
        db
    }

    fn active_everywhere() -> Vec<Assertion> {
        vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)]
    }

    #[test]
    fn refresh_matches_cold_and_reuses_clean_shards() {
        let db = seeded();
        let scope = Pattern::universe();
        let want = active_everywhere();

        let snap = db.snapshot();
        let first = db.views().refresh(&snap, &scope, &want);
        assert!(first.same_result(&compliance_cold(&snap, &scope, &want)));
        assert!(first.compliant());
        assert_eq!(first.devices, 32);
        assert_eq!(first.reused_shards, 0);

        // Untouched store: every routed shard is reused.
        let again = db.views().refresh(&db.snapshot(), &scope, &want);
        assert!(again.same_result(&first));
        assert_eq!(again.recomputed_shards, 0);

        // Dirty one pod: exactly one shard recomputes, and the report
        // carries the real offender.
        set(
            &db,
            "dc01.pod02.sw03",
            attrs::DEVICE_STATUS,
            attrs::STATUS_DRAINED,
        );
        let snap = db.snapshot();
        let after = db.views().refresh(&snap, &scope, &want);
        assert!(after.same_result(&compliance_cold(&snap, &scope, &want)));
        assert_eq!(after.recomputed_shards, 1);
        assert_eq!(after.non_compliant.len(), 1);
        assert_eq!(after.non_compliant[0].device, "dc01.pod02.sw03");
        assert_eq!(
            after.non_compliant[0].actual,
            Some(AttrValue::from(attrs::STATUS_DRAINED))
        );
    }

    #[test]
    fn scoped_refresh_routes_to_one_shard() {
        let db = seeded();
        let scope = Pattern::from_glob("dc01.pod01.*").unwrap();
        let want = active_everywhere();
        let report = db.views().refresh(&db.snapshot(), &scope, &want);
        assert_eq!(report.devices, 8);
        // The pinned shard plus the catch-all.
        assert_eq!(report.recomputed_shards + report.reused_shards, 2);
    }

    #[test]
    fn missing_attribute_is_non_compliant() {
        let db = Database::new();
        db.insert_device("dc01.pod00.sw00", vec![]).unwrap();
        let report = db
            .views()
            .refresh(&db.snapshot(), &Pattern::universe(), &active_everywhere());
        assert_eq!(report.non_compliant.len(), 1);
        assert_eq!(report.non_compliant[0].actual, None);
    }

    #[test]
    fn snapshot_delta_skips_clean_shards_and_records() {
        let db = seeded();
        let before = db.snapshot();
        set(&db, "dc01.pod03.sw07", "SNMP_COMMUNITY", "v2");
        db.insert_device("dc01.pod03.sw99", vec![]).unwrap();
        db.batch(&[WriteOp::DeleteDevice {
            name: "dc01.pod03.sw00".into(),
        }])
        .unwrap();
        let after = db.snapshot();

        let delta = snapshot_delta(&before, &after);
        assert_eq!(
            delta.changed,
            vec!["dc01.pod03.sw07".to_string(), "dc01.pod03.sw99".to_string()]
        );
        assert_eq!(delta.removed, vec!["dc01.pod03.sw00".to_string()]);
        assert_eq!(delta.shards_scanned, 1);
        assert_eq!(delta.shards_reused as usize, NUM_SHARDS - 1);

        // Self-delta is empty and touches nothing.
        let zero = snapshot_delta(&after, &after);
        assert!(zero.changed.is_empty() && zero.removed.is_empty());
        assert_eq!(zero.shards_scanned, 0);
    }

    #[test]
    fn cache_is_bounded() {
        let db = seeded();
        let want = active_everywhere();
        for i in 0..(MAX_CACHED_VIEWS + 8) {
            let scope = Pattern::from_glob(&format!("dc01.pod00.sw{i:02}*")).unwrap();
            db.views().refresh(&db.snapshot(), &scope, &want);
        }
        assert!(db.views().views.lock().len() <= MAX_CACHED_VIEWS);
    }
}
