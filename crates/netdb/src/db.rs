//! The source-of-truth network database.
//!
//! Mirrors the role of Robotron/Malt-style network databases in the paper:
//! it holds the *logical* network view (devices, links, attributes) and
//! offers **query-level** transactions — each call commits atomically, but
//! nothing spans calls. Task-level isolation across queries is exactly what
//! the database does *not* provide; that gap (paper §2.3, problem 1) is
//! closed by the Occam runtime's locking, not here.

use crate::error::{DbError, DbResult};
use crate::fault::{FaultInjector, FaultPlan};
use crate::ivm::ViewCache;
use crate::occ::{OccOutcome, StagedStore};
use crate::replica::router::ReadSource;
use crate::shard::{StoreSnapshot, StoreState};
use crate::value::AttrValue;
use crate::view::ReadView;
use crate::wal::{Wal, WalRecord};
use occam_obs::{Counter, EventKind, EventRing, Histogram, Registry, Span};
use occam_regex::Pattern;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// A device row: an attribute map.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct DeviceRecord {
    /// Attribute name → value.
    pub attrs: BTreeMap<String, AttrValue>,
}

/// A link row: an attribute map over an undirected endpoint pair.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct LinkRecord {
    /// Attribute name → value.
    pub attrs: BTreeMap<String, AttrValue>,
}

/// Normalized undirected link key: `(a, z)` with `a <= z` lexically.
pub type LinkKey = (String, String);

/// Normalizes an endpoint pair into a [`LinkKey`].
pub fn link_key(a: &str, z: &str) -> LinkKey {
    if a <= z {
        (a.to_string(), z.to_string())
    } else {
        (z.to_string(), a.to_string())
    }
}

/// The materialized database state: the flat, single-map representation.
///
/// The live database no longer stores one of these (state is sharded —
/// see [`crate::shard`]); `Store` remains as the replay reference
/// implementation, the [`diff`] input type, and the target of
/// [`StoreSnapshot::materialize`]. Cloneable: a clone is a snapshot.
///
/// The `devices`/`links` maps stay public for read access; treat them as
/// read-only — the store keeps a private per-endpoint link index in sync
/// through [`Store::apply`], which direct map mutation would skew.
#[derive(Clone, Default, Debug)]
pub struct Store {
    /// Device rows by name.
    pub devices: BTreeMap<String, DeviceRecord>,
    /// Link rows by normalized endpoint pair.
    pub links: BTreeMap<LinkKey, LinkRecord>,
    /// Endpoint → keys of links touching it, so a device delete walks
    /// only its own links instead of scanning the whole link table.
    pub(crate) by_endpoint: BTreeMap<String, BTreeSet<LinkKey>>,
}

/// Equality is over the logical contents (devices and links); the
/// endpoint index is a pure function of `links` and excluded.
impl PartialEq for Store {
    fn eq(&self, other: &Store) -> bool {
        self.devices == other.devices && self.links == other.links
    }
}

impl Store {
    fn index_link(&mut self, key: &LinkKey) {
        self.by_endpoint
            .entry(key.0.clone())
            .or_default()
            .insert(key.clone());
        self.by_endpoint
            .entry(key.1.clone())
            .or_default()
            .insert(key.clone());
    }

    fn unindex_link(&mut self, endpoint: &str, key: &LinkKey) {
        if let Some(set) = self.by_endpoint.get_mut(endpoint) {
            set.remove(key);
            if set.is_empty() {
                self.by_endpoint.remove(endpoint);
            }
        }
    }

    /// Applies one redo record. Application is total: records referencing
    /// missing rows are no-ops, which makes replay robust to truncation.
    pub fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::InsertDevice { name, attrs } => {
                let dev = self.devices.entry(name.clone()).or_default();
                for (k, v) in attrs {
                    dev.attrs.insert(k.clone(), v.clone());
                }
            }
            WalRecord::DeleteDevice { name } => {
                self.devices.remove(name);
                // Cascade through the endpoint index: cost is the
                // device's own degree, not the whole link table.
                let keys = self.by_endpoint.remove(name).unwrap_or_default();
                for key in keys {
                    self.links.remove(&key);
                    let other = if key.0 == *name { &key.1 } else { &key.0 };
                    if other != name {
                        let other = other.clone();
                        self.unindex_link(&other, &key);
                    }
                }
            }
            WalRecord::SetDeviceAttr { name, attr, value } => {
                if let Some(dev) = self.devices.get_mut(name) {
                    dev.attrs.insert(attr.clone(), value.clone());
                }
            }
            WalRecord::UnsetDeviceAttr { name, attr } => {
                if let Some(dev) = self.devices.get_mut(name) {
                    dev.attrs.remove(attr);
                }
            }
            WalRecord::InsertLink {
                a_end,
                z_end,
                attrs,
            } => {
                let key = link_key(a_end, z_end);
                let link = self.links.entry(key.clone()).or_default();
                for (k, v) in attrs {
                    link.attrs.insert(k.clone(), v.clone());
                }
                self.index_link(&key);
            }
            WalRecord::DeleteLink { a_end, z_end } => {
                let key = link_key(a_end, z_end);
                if self.links.remove(&key).is_some() {
                    let (a, z) = (key.0.clone(), key.1.clone());
                    self.unindex_link(&a, &key);
                    self.unindex_link(&z, &key);
                }
            }
            WalRecord::SetLinkAttr {
                a_end,
                z_end,
                attr,
                value,
            } => {
                if let Some(link) = self.links.get_mut(&link_key(a_end, z_end)) {
                    link.attrs.insert(attr.clone(), value.clone());
                }
            }
            WalRecord::UnsetLinkAttr { a_end, z_end, attr } => {
                if let Some(link) = self.links.get_mut(&link_key(a_end, z_end)) {
                    link.attrs.remove(attr);
                }
            }
            WalRecord::Commit { .. } => {}
        }
    }

    /// Rebuilds a store by replaying a record sequence from empty.
    pub fn replay(records: &[WalRecord]) -> Store {
        let mut s = Store::default();
        for r in records {
            s.apply(r);
        }
        s
    }
}

/// One entry in a snapshot diff.
#[derive(Clone, PartialEq, Debug)]
pub enum DiffEntry {
    /// Device present only in the newer snapshot.
    DeviceAdded(String),
    /// Device present only in the older snapshot.
    DeviceRemoved(String),
    /// Device attribute changed: `(device, attr, old, new)`.
    DeviceAttrChanged(String, String, Option<AttrValue>, Option<AttrValue>),
    /// Link present only in the newer snapshot.
    LinkAdded(LinkKey),
    /// Link present only in the older snapshot.
    LinkRemoved(LinkKey),
    /// Link attribute changed: `(key, attr, old, new)`.
    LinkAttrChanged(LinkKey, String, Option<AttrValue>, Option<AttrValue>),
}

/// Computes the difference `old → new` between two snapshots.
pub fn diff(old: &Store, new: &Store) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    for name in new.devices.keys() {
        if !old.devices.contains_key(name) {
            out.push(DiffEntry::DeviceAdded(name.clone()));
        }
    }
    for (name, od) in &old.devices {
        match new.devices.get(name) {
            None => out.push(DiffEntry::DeviceRemoved(name.clone())),
            Some(nd) => {
                let keys: std::collections::BTreeSet<&String> =
                    od.attrs.keys().chain(nd.attrs.keys()).collect();
                for k in keys {
                    let o = od.attrs.get(k);
                    let n = nd.attrs.get(k);
                    if o != n {
                        out.push(DiffEntry::DeviceAttrChanged(
                            name.clone(),
                            k.clone(),
                            o.cloned(),
                            n.cloned(),
                        ));
                    }
                }
            }
        }
    }
    for key in new.links.keys() {
        if !old.links.contains_key(key) {
            out.push(DiffEntry::LinkAdded(key.clone()));
        }
    }
    for (key, ol) in &old.links {
        match new.links.get(key) {
            None => out.push(DiffEntry::LinkRemoved(key.clone())),
            Some(nl) => {
                let keys: std::collections::BTreeSet<&String> =
                    ol.attrs.keys().chain(nl.attrs.keys()).collect();
                for k in keys {
                    let o = ol.attrs.get(k);
                    let n = nl.attrs.get(k);
                    if o != n {
                        out.push(DiffEntry::LinkAttrChanged(
                            key.clone(),
                            k.clone(),
                            o.cloned(),
                            n.cloned(),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// A single write operation inside an atomic batch.
#[derive(Clone, PartialEq, Debug)]
pub enum WriteOp {
    /// Insert a device (fails if it exists).
    InsertDevice {
        /// Device name.
        name: String,
        /// Initial attributes.
        attrs: Vec<(String, AttrValue)>,
    },
    /// Delete a device and its links (fails if missing).
    DeleteDevice {
        /// Device name.
        name: String,
    },
    /// Set one attribute on one device (fails if the device is missing).
    SetDeviceAttr {
        /// Device name.
        name: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// Remove one attribute from one device (fails if the device is
    /// missing; removing an absent attribute is a no-op).
    UnsetDeviceAttr {
        /// Device name.
        name: String,
        /// Attribute name.
        attr: String,
    },
    /// Insert a link (fails if either endpoint is missing or it exists).
    InsertLink {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Initial attributes.
        attrs: Vec<(String, AttrValue)>,
    },
    /// Delete a link (fails if missing).
    DeleteLink {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
    },
    /// Set one attribute on one link (fails if the link is missing).
    SetLinkAttr {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// Remove one attribute from one link (fails if the link is missing).
    UnsetLinkAttr {
        /// A-end device name.
        a_end: String,
        /// Z-end device name.
        z_end: String,
        /// Attribute name.
        attr: String,
    },
}

/// Observability handles for the database, bound to a [`Registry`] under
/// the `netdb.*` names (DESIGN.md §9).
#[derive(Clone, Debug)]
struct DbObs {
    queries: Counter,
    query_ns: Histogram,
    wal_appends: Counter,
    wal_records: Counter,
    wal_append_ns: Histogram,
    snapshot_ns: Histogram,
    shard_commits: Counter,
    lock_free_reads: Counter,
    events: EventRing,
}

impl DbObs {
    fn bound(reg: &Registry) -> DbObs {
        DbObs {
            queries: reg.counter("netdb.queries"),
            query_ns: reg.histogram("netdb.query_ns"),
            wal_appends: reg.counter("netdb.wal.appends"),
            wal_records: reg.counter("netdb.wal.records"),
            wal_append_ns: reg.histogram("netdb.wal.append_ns"),
            snapshot_ns: reg.histogram("netdb.snapshot_ns"),
            shard_commits: reg.counter("netdb.shard.commits"),
            lock_free_reads: reg.counter("netdb.shard.read_lock_free"),
            events: reg.events(),
        }
    }
}

/// The network database handle. Cheap to share behind an `Arc`.
///
/// State lives in a sharded copy-on-write `StoreState`
/// (see [`crate::shard`]): `state` holds the current published version
/// behind a short pointer-swap lock, and `writer` serializes commits.
/// Readers never take `writer` — they clone the published `Arc` and read
/// lock-free — so scoped queries proceed concurrently with a committing
/// writer, and [`Database::snapshot`] is an O(1) `Arc` bump instead of a
/// deep clone.
#[derive(Debug)]
pub struct Database {
    /// The current committed version. The mutex guards only the pointer
    /// swap; it is held for O(1) by readers and writers alike.
    state: Mutex<Arc<StoreState>>,
    /// Commit lock: serializes validate → apply → WAL-append → publish,
    /// so WAL order equals publication order (the cross-shard commit
    /// protocol of DESIGN.md §12).
    writer: Mutex<()>,
    wal: Mutex<Wal>,
    /// Signalled after every published commit, so replication shippers
    /// can sleep until there is new WAL to ship instead of busy-polling.
    commit_cv: Condvar,
    faults: FaultInjector,
    obs: DbObs,
    obs_registry: Registry,
    /// Incremental compliance views over this store's shard snapshots
    /// (DESIGN.md §17.3).
    views: ViewCache,
}

impl Database {
    /// Creates an empty database with no fault injection.
    pub fn new() -> Database {
        Database::with_obs(&Registry::new())
    }

    /// Creates an empty database whose `netdb.*` instruments (query and
    /// WAL-append latency histograms, query/append/record counters, WAL
    /// events) are bound to `reg` — see DESIGN.md §9.
    pub fn with_obs(reg: &Registry) -> Database {
        Database {
            state: Mutex::new(Arc::new(StoreState::new())),
            writer: Mutex::new(()),
            wal: Mutex::new(Wal::new()),
            commit_cv: Condvar::new(),
            faults: FaultInjector::default(),
            obs: DbObs::bound(reg),
            obs_registry: reg.clone(),
            views: ViewCache::new(reg),
        }
    }

    /// Creates a database with the given fault-injection plan.
    pub fn with_faults(plan: FaultPlan) -> Database {
        let mut db = Database::new();
        db.faults = FaultInjector::new(plan);
        db
    }

    /// The registry this database's instruments are bound to.
    pub fn obs(&self) -> &Registry {
        &self.obs_registry
    }

    /// The incremental compliance-view cache over this store: audits and
    /// spec compliance checks refresh through it so re-evaluation costs
    /// O(dirty shards), not O(devices) (DESIGN.md §17.3).
    pub fn views(&self) -> &ViewCache {
        &self.views
    }

    /// Counts one public query and times it until the guard drops.
    fn query_span(&self) -> Span {
        self.obs.queries.inc();
        Span::start(&self.obs.query_ns)
    }

    /// Appends one committed batch to the WAL, recording append latency,
    /// record counts, and a `wal_append` event.
    fn wal_append(&self, records: Vec<WalRecord>) -> u64 {
        let n = records.len() as u64;
        let span = Span::start(&self.obs.wal_append_ns);
        let seq = self.wal.lock().append_batch(records);
        span.finish();
        self.obs.wal_appends.inc();
        self.obs.wal_records.add(n);
        self.obs
            .events
            .record(EventKind::WalAppend { records: n, seq });
        seq
    }

    /// Replaces the fault-injection plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.set_plan(plan);
    }

    /// The fault injector (for inspecting counters).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    fn guard(&self) -> DbResult<()> {
        match self.faults.check() {
            Some(seq) => Err(DbError::ConnectionFailure { query_seq: seq }),
            None => Ok(()),
        }
    }

    /// The currently published store version: an O(1) `Arc` bump.
    fn current(&self) -> Arc<StoreState> {
        self.state.lock().clone()
    }

    /// Takes a consistent snapshot of the whole store.
    ///
    /// O(1): bumps the refcount of the published shard vector — no deep
    /// clone, no waiting on in-flight commits. The handle stays immutable
    /// forever; use [`StoreSnapshot::materialize`] to flatten it when a
    /// legacy [`Store`] is needed. Bypasses the fault injector, so
    /// invariant checkers can capture state while fault plans are armed.
    pub fn snapshot(&self) -> StoreSnapshot {
        let span = Span::start(&self.obs.snapshot_ns);
        let snap = StoreSnapshot {
            state: self.current(),
        };
        span.finish();
        snap
    }

    /// Takes a snapshot *as a query*: counted, timed, and subject to the
    /// fault injector like every other read. This is what runtime layers
    /// use so a task's reads keep their failure semantics while becoming
    /// lock-free and mutually consistent.
    pub fn query_snapshot(&self) -> DbResult<StoreSnapshot> {
        let _q = self.query_span();
        self.guard()?;
        self.obs.lock_free_reads.inc();
        Ok(self.snapshot())
    }

    /// Number of committed write batches.
    pub fn commits(&self) -> u64 {
        self.wal.lock().num_commits()
    }

    /// A copy of the WAL records (for replay tests and audit).
    pub fn wal_records(&self) -> Vec<WalRecord> {
        self.wal.lock().records().to_vec()
    }

    /// First commit sequence the local WAL physically holds records for
    /// (`0` unless this replica bootstrapped from a snapshot).
    pub fn wal_base_commits(&self) -> u64 {
        self.wal.lock().base_commits()
    }

    /// Blocks until the database has at least `min` commits or `timeout`
    /// elapses; returns the commit count observed on wake-up. The wait is
    /// condvar-driven off the commit path, so replication shippers idle
    /// without polling.
    pub fn wait_commits(&self, min: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut wal = self.wal.lock();
        loop {
            let now = wal.num_commits();
            if now >= min {
                return now;
            }
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return now;
            };
            if left.is_zero() || self.commit_cv.wait_for(&mut wal, left).timed_out() {
                return wal.num_commits();
            }
        }
    }

    /// The WAL suffix committed after the first `commits` commits, with
    /// the sequence it starts at. `None` means the history is no longer
    /// held locally (the WAL was re-based past `commits` by a snapshot
    /// bootstrap) and the requester needs a snapshot transfer instead.
    pub(crate) fn wal_suffix_after_commits(&self, commits: u64) -> Option<(u64, Vec<WalRecord>)> {
        self.wal.lock().suffix_after_commits(commits)
    }

    /// A consistent `(snapshot, commit count)` pair, captured under the
    /// writer lock so the count is exactly the number of commits the
    /// snapshot contains — the seed of a replica snapshot bootstrap.
    pub fn snapshot_with_commits(&self) -> (StoreSnapshot, u64) {
        let _w = self.writer.lock();
        (self.snapshot(), self.wal.lock().num_commits())
    }

    /// Applies one replicated batch at a forced commit sequence — the
    /// follower half of WAL shipping. Runs the same commit protocol as
    /// [`Database::batch`] (writer lock → copy-on-write apply → WAL append
    /// → pointer-swap publish), minus validation: the leader already
    /// validated, and replaying its exact records keeps the follower
    /// byte-identical. Fails without mutating anything if `seq` is not
    /// the next expected commit.
    pub(crate) fn apply_replicated(&self, records: &[WalRecord], seq: u64) -> Result<(), String> {
        let _w = self.writer.lock();
        {
            // Reserve the sequence before touching state: an out-of-order
            // batch must leave the store untouched.
            let wal = self.wal.lock();
            if seq != wal.num_commits() {
                return Err(format!(
                    "replicated commit {seq} out of order: expected {}",
                    wal.num_commits()
                ));
            }
        }
        let base = self.current();
        let mut next = (*base).clone();
        for r in records {
            next.apply(r);
        }
        let dirty = next.finalize(&base);
        let n = records.len() as u64;
        let span = Span::start(&self.obs.wal_append_ns);
        self.wal.lock().append_batch_at(records.to_vec(), seq)?;
        span.finish();
        self.obs.wal_appends.inc();
        self.obs.wal_records.add(n);
        self.obs
            .events
            .record(EventKind::WalAppend { records: n, seq });
        *self.state.lock() = Arc::new(next);
        self.obs.shard_commits.add(dirty as u64);
        self.commit_cv.notify_all();
        Ok(())
    }

    /// Installs a bootstrap snapshot carrying the first `commits` commits:
    /// swaps in the snapshot's shard vector (O(1) — the `Arc`s are shared,
    /// not cloned) and re-bases a fresh WAL so subsequent replicated
    /// commits continue the leader's numbering.
    pub(crate) fn install_snapshot(&self, snap: &StoreSnapshot, commits: u64) {
        let _w = self.writer.lock();
        // Adopt the snapshot's shard-version vector wholesale so OCC
        // validation on this replica agrees with the leader's history;
        // the commit counter is pinned to the transferred count.
        let mut state = (*snap.state).clone();
        state.commits = commits;
        *self.state.lock() = Arc::new(state);
        let mut wal = self.wal.lock();
        *wal = Wal::new();
        wal.rebase(commits);
        drop(wal);
        self.commit_cv.notify_all();
    }

    /// Installs a recovered record sequence: replays it into the store and
    /// re-seeds the WAL so future commits continue the history.
    pub(crate) fn install_recovered(&self, records: Vec<WalRecord>) {
        let _w = self.writer.lock();
        // Replay batch-by-batch (each `Commit` marker seals one), both to
        // preserve the WAL's commit structure and to reproduce the exact
        // per-shard version vector the live commit path would have
        // published — recovery must not perturb OCC validation.
        let mut fresh = Wal::new();
        let mut state = StoreState::new();
        let mut base = state.clone();
        let mut batch: Vec<WalRecord> = Vec::new();
        for r in records {
            match r {
                WalRecord::Commit { .. } => {
                    state.finalize(&base);
                    base = state.clone();
                    fresh.append_batch(std::mem::take(&mut batch));
                }
                other => {
                    state.apply(&other);
                    batch.push(other);
                }
            }
        }
        if !batch.is_empty() {
            // A torn tail recovers as one final committed batch.
            state.finalize(&base);
            fresh.append_batch(batch);
        }
        *self.state.lock() = Arc::new(state);
        *self.wal.lock() = fresh;
        self.commit_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // Read queries
    // ------------------------------------------------------------------

    /// Reads route through a lock-free snapshot of the published version:
    /// shard-routed by the scope's literal prefix, never blocked by (and
    /// never blocking) a committing writer.
    fn published(&self) -> StoreSnapshot {
        self.obs.lock_free_reads.inc();
        StoreSnapshot {
            state: self.current(),
        }
    }

    /// The unified read accessor: a [`ReadView`] over the currently
    /// published version, sourced from this database (the leader path).
    /// Carries the snapshot, its commit count, and its shard-version
    /// vector, so OCC validation, serializability certification, and
    /// follower-staleness bounds all share one code path. Bypasses the
    /// fault injector like [`Database::snapshot`].
    pub fn read_view(&self) -> ReadView {
        ReadView::new(self.snapshot(), ReadSource::Leader)
    }

    /// Takes a [`ReadView`] *as a query*: counted, timed, and subject to
    /// the fault injector — the accessor runtime layers use so task reads
    /// keep their failure semantics.
    pub fn query_read_view(&self) -> DbResult<ReadView> {
        Ok(ReadView::new(self.query_snapshot()?, ReadSource::Leader))
    }

    /// Returns the names of devices matching `scope`, sorted.
    pub fn select_devices(&self, scope: &Pattern) -> DbResult<Vec<String>> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().select_devices(scope))
    }

    /// Returns `device → value` for one attribute across a scope; devices
    /// without the attribute are omitted.
    pub fn get_attr(&self, scope: &Pattern, attr: &str) -> DbResult<BTreeMap<String, AttrValue>> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().get_attr(scope, attr))
    }

    /// Returns the full attribute map for every device in a scope.
    pub fn get_all(
        &self,
        scope: &Pattern,
    ) -> DbResult<BTreeMap<String, BTreeMap<String, AttrValue>>> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().get_all(scope))
    }

    /// Returns true if a device row exists.
    pub fn device_exists(&self, name: &str) -> DbResult<bool> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().device_exists(name))
    }

    /// Returns the links with at least one endpoint in scope, sorted by key.
    pub fn links_touching(&self, scope: &Pattern) -> DbResult<Vec<LinkKey>> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().links_touching(scope))
    }

    /// Returns `link → value` for one attribute across links touching a
    /// scope; links without the attribute are omitted.
    pub fn get_link_attr(
        &self,
        scope: &Pattern,
        attr: &str,
    ) -> DbResult<BTreeMap<LinkKey, AttrValue>> {
        let _q = self.query_span();
        self.guard()?;
        Ok(self.published().get_link_attr(scope, attr))
    }

    // ------------------------------------------------------------------
    // Write queries (each is one atomic batch)
    // ------------------------------------------------------------------

    /// Validates a batch against a store version without mutating it.
    /// Crate-visible so [`crate::occ::StagedStore`] runs the same checks
    /// against its working state.
    pub(crate) fn validate(store: &StoreState, ops: &[WriteOp]) -> DbResult<()> {
        // Track devices/links created or destroyed earlier in this batch so
        // that intra-batch sequences validate consistently.
        let mut devs: BTreeMap<&str, bool> = BTreeMap::new(); // name -> exists
        let mut links: BTreeMap<LinkKey, bool> = BTreeMap::new();
        let dev_exists = |store: &StoreState, devs: &BTreeMap<&str, bool>, n: &str| {
            devs.get(n)
                .copied()
                .unwrap_or_else(|| store.device_exists(n))
        };
        let link_exists = |store: &StoreState, links: &BTreeMap<LinkKey, bool>, k: &LinkKey| {
            links
                .get(k)
                .copied()
                .unwrap_or_else(|| store.link_exists(k))
        };
        for op in ops {
            match op {
                WriteOp::InsertDevice { name, .. } => {
                    if dev_exists(store, &devs, name) {
                        return Err(DbError::AlreadyExists(name.clone()));
                    }
                    devs.insert(name, true);
                }
                WriteOp::DeleteDevice { name } => {
                    if !dev_exists(store, &devs, name) {
                        return Err(DbError::NoSuchDevice(name.clone()));
                    }
                    devs.insert(name, false);
                }
                WriteOp::SetDeviceAttr { name, .. } | WriteOp::UnsetDeviceAttr { name, .. } => {
                    if !dev_exists(store, &devs, name) {
                        return Err(DbError::NoSuchDevice(name.clone()));
                    }
                }
                WriteOp::InsertLink { a_end, z_end, .. } => {
                    if a_end == z_end {
                        return Err(DbError::Constraint(format!("self-link on {a_end}")));
                    }
                    for e in [a_end, z_end] {
                        if !dev_exists(store, &devs, e) {
                            return Err(DbError::NoSuchDevice(e.clone()));
                        }
                    }
                    let k = link_key(a_end, z_end);
                    if link_exists(store, &links, &k) {
                        return Err(DbError::AlreadyExists(format!("{a_end}<->{z_end}")));
                    }
                    links.insert(k, true);
                }
                WriteOp::DeleteLink { a_end, z_end } => {
                    let k = link_key(a_end, z_end);
                    if !link_exists(store, &links, &k) {
                        return Err(DbError::NoSuchLink {
                            a_end: a_end.clone(),
                            z_end: z_end.clone(),
                        });
                    }
                    links.insert(k, false);
                }
                WriteOp::SetLinkAttr { a_end, z_end, .. }
                | WriteOp::UnsetLinkAttr { a_end, z_end, .. } => {
                    let k = link_key(a_end, z_end);
                    if !link_exists(store, &links, &k) {
                        return Err(DbError::NoSuchLink {
                            a_end: a_end.clone(),
                            z_end: z_end.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn to_record(op: &WriteOp) -> WalRecord {
        match op {
            WriteOp::InsertDevice { name, attrs } => WalRecord::InsertDevice {
                name: name.clone(),
                attrs: attrs.clone(),
            },
            WriteOp::DeleteDevice { name } => WalRecord::DeleteDevice { name: name.clone() },
            WriteOp::SetDeviceAttr { name, attr, value } => WalRecord::SetDeviceAttr {
                name: name.clone(),
                attr: attr.clone(),
                value: value.clone(),
            },
            WriteOp::UnsetDeviceAttr { name, attr } => WalRecord::UnsetDeviceAttr {
                name: name.clone(),
                attr: attr.clone(),
            },
            WriteOp::InsertLink {
                a_end,
                z_end,
                attrs,
            } => WalRecord::InsertLink {
                a_end: a_end.clone(),
                z_end: z_end.clone(),
                attrs: attrs.clone(),
            },
            WriteOp::DeleteLink { a_end, z_end } => WalRecord::DeleteLink {
                a_end: a_end.clone(),
                z_end: z_end.clone(),
            },
            WriteOp::SetLinkAttr {
                a_end,
                z_end,
                attr,
                value,
            } => WalRecord::SetLinkAttr {
                a_end: a_end.clone(),
                z_end: z_end.clone(),
                attr: attr.clone(),
                value: value.clone(),
            },
            WriteOp::UnsetLinkAttr { a_end, z_end, attr } => WalRecord::UnsetLinkAttr {
                a_end: a_end.clone(),
                z_end: z_end.clone(),
                attr: attr.clone(),
            },
        }
    }

    /// Commits pre-validated records under the held writer lock: clones the
    /// base shard vector shallowly, applies copy-on-write (only touched
    /// shards are deep-cloned), appends to the WAL, then publishes the new
    /// version with an O(1) pointer swap. Returns the WAL commit sequence.
    ///
    /// Because `writer` is held across append + publish, WAL order equals
    /// publication order — the invariant `install_recovered` and the chaos
    /// crash points rely on.
    fn commit_records(&self, base: &Arc<StoreState>, records: Vec<WalRecord>) -> u64 {
        let mut next = (**base).clone();
        for r in &records {
            next.apply(r);
        }
        // Seal versions *before* the WAL append: both happen under the
        // held writer lock, so the shard-version bump and the WAL commit
        // sequence can never be observed out of order — the certifier's
        // commit order is exactly WAL order.
        let dirty = next.finalize(base);
        let seq = self.wal_append(records);
        debug_assert_eq!(next.commits, seq + 1, "commit counter tracks WAL seq");
        *self.state.lock() = Arc::new(next);
        self.obs.shard_commits.add(dirty as u64);
        self.commit_cv.notify_all();
        seq
    }

    /// Executes a batch of writes atomically: all ops validate against the
    /// current state (plus earlier ops in the batch), then all apply and the
    /// batch commits to the WAL; or none apply.
    pub fn batch(&self, ops: &[WriteOp]) -> DbResult<u64> {
        let _q = self.query_span();
        self.guard()?;
        let _w = self.writer.lock();
        let base = self.current();
        Self::validate(&base, ops)?;
        let records: Vec<WalRecord> = ops.iter().map(Self::to_record).collect();
        Ok(self.commit_records(&base, records))
    }

    /// Inserts one device.
    pub fn insert_device(&self, name: &str, attrs: Vec<(String, AttrValue)>) -> DbResult<u64> {
        self.batch(&[WriteOp::InsertDevice {
            name: name.to_string(),
            attrs,
        }])
    }

    /// Deletes one device (and its links).
    pub fn delete_device(&self, name: &str) -> DbResult<u64> {
        self.batch(&[WriteOp::DeleteDevice {
            name: name.to_string(),
        }])
    }

    /// Sets one attribute on every device in scope; returns the device names
    /// written.
    pub fn set_attr(&self, scope: &Pattern, attr: &str, value: AttrValue) -> DbResult<Vec<String>> {
        Ok(self.set_attr_seq(scope, attr, value)?.0)
    }

    /// Like [`Database::set_attr`], but also returns the WAL commit
    /// sequence the batch was assigned, so callers emitting certified
    /// write sets can place the write exactly in the global commit order.
    pub fn set_attr_seq(
        &self,
        scope: &Pattern,
        attr: &str,
        value: AttrValue,
    ) -> DbResult<(Vec<String>, u64)> {
        // Capture the scope and commit the batch under the writer lock so
        // the read-modify-write is atomic against concurrent writers.
        let _q = self.query_span();
        self.guard()?;
        let _w = self.writer.lock();
        let base = self.current();
        let names = StoreSnapshot {
            state: Arc::clone(&base),
        }
        .select_devices(scope);
        let records: Vec<WalRecord> = names
            .iter()
            .map(|n| WalRecord::SetDeviceAttr {
                name: n.clone(),
                attr: attr.to_string(),
                value: value.clone(),
            })
            .collect();
        let seq = self.commit_records(&base, records);
        Ok((names, seq))
    }

    /// Sets one attribute with distinct per-device values (the paper's
    /// dictionary-valued `set`). Fails atomically if any device is missing.
    pub fn set_attr_per_device(
        &self,
        values: &BTreeMap<String, AttrValue>,
        attr: &str,
    ) -> DbResult<u64> {
        let ops: Vec<WriteOp> = values
            .iter()
            .map(|(n, v)| WriteOp::SetDeviceAttr {
                name: n.clone(),
                attr: attr.to_string(),
                value: v.clone(),
            })
            .collect();
        self.batch(&ops)
    }

    /// Inserts one link.
    pub fn insert_link(
        &self,
        a_end: &str,
        z_end: &str,
        attrs: Vec<(String, AttrValue)>,
    ) -> DbResult<u64> {
        self.batch(&[WriteOp::InsertLink {
            a_end: a_end.to_string(),
            z_end: z_end.to_string(),
            attrs,
        }])
    }

    /// Sets one attribute on one link.
    pub fn set_link_attr(
        &self,
        a_end: &str,
        z_end: &str,
        attr: &str,
        value: AttrValue,
    ) -> DbResult<u64> {
        self.batch(&[WriteOp::SetLinkAttr {
            a_end: a_end.to_string(),
            z_end: z_end.to_string(),
            attr: attr.to_string(),
            value,
        }])
    }

    /// Sets one attribute on every link touching a scope; returns the link
    /// keys written.
    pub fn set_link_attr_scope(
        &self,
        scope: &Pattern,
        attr: &str,
        value: AttrValue,
    ) -> DbResult<Vec<LinkKey>> {
        Ok(self.set_link_attr_scope_seq(scope, attr, value)?.0)
    }

    /// Like [`Database::set_link_attr_scope`], but also returns the WAL
    /// commit sequence the batch was assigned (see
    /// [`Database::set_attr_seq`]).
    pub fn set_link_attr_scope_seq(
        &self,
        scope: &Pattern,
        attr: &str,
        value: AttrValue,
    ) -> DbResult<(Vec<LinkKey>, u64)> {
        let _q = self.query_span();
        self.guard()?;
        let _w = self.writer.lock();
        let base = self.current();
        let keys = StoreSnapshot {
            state: Arc::clone(&base),
        }
        .links_touching(scope);
        let records: Vec<WalRecord> = keys
            .iter()
            .map(|(a, z)| WalRecord::SetLinkAttr {
                a_end: a.clone(),
                z_end: z.clone(),
                attr: attr.to_string(),
                value: value.clone(),
            })
            .collect();
        let seq = self.commit_records(&base, records);
        Ok((keys, seq))
    }

    /// Commits an optimistically-executed task (the OCC slow half).
    ///
    /// Under the writer lock, validates that no other commit has touched
    /// any shard the task *read* (`read_shards`) or *staged writes into*
    /// since its base snapshot was taken — per-shard version equality,
    /// plus `Arc` pointer equality to rule out version aliasing across
    /// `install_snapshot` / `install_recovered` rebuilds. On success the
    /// staged shards are grafted onto the currently published state
    /// (sound exactly because validation proved those shards unchanged)
    /// and the batch commits through the regular writer-mutex protocol:
    /// version bump, WAL append, O(1) pointer-swap publish.
    ///
    /// A [`OccOutcome::Conflict`] leaves the database untouched; the
    /// caller retries from a fresh snapshot or falls back to 2PL. An
    /// empty staged store never conflicts: a read-only task's entire
    /// execution is one consistent snapshot, so it serializes at its
    /// *base* commit count regardless of later commits — no validation,
    /// nothing appended.
    pub fn occ_publish(
        &self,
        staged: &StagedStore,
        read_shards: &BTreeSet<usize>,
    ) -> DbResult<OccOutcome> {
        let _q = self.query_span();
        self.guard()?;
        if staged.is_empty() {
            return Ok(OccOutcome::Committed {
                seq: staged.base().commits(),
            });
        }
        let _w = self.writer.lock();
        let cur = self.current();
        let base = staged.base_state();
        let dirty = staged.dirty_shards();
        for &i in read_shards.iter().chain(dirty.iter()) {
            if cur.versions[i] != base.versions[i] || !Arc::ptr_eq(&cur.shards[i], &base.shards[i])
            {
                return Ok(OccOutcome::Conflict { shard: i });
            }
        }
        let mut next = (*cur).clone();
        for &i in &dirty {
            next.shards[i] = staged.shard(i);
        }
        let bumped = next.finalize(&cur);
        debug_assert_eq!(
            bumped,
            dirty.len(),
            "graft dirties exactly the staged shards"
        );
        let seq = self.wal_append(staged.records().to_vec());
        *self.state.lock() = Arc::new(next);
        self.obs.shard_commits.add(bumped as u64);
        self.commit_cv.notify_all();
        Ok(OccOutcome::Committed { seq })
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::attrs;

    fn pat(glob: &str) -> Pattern {
        Pattern::from_glob(glob).unwrap()
    }

    fn seeded() -> Database {
        let db = Database::new();
        for pod in 0..3 {
            for sw in 0..4 {
                db.insert_device(
                    &format!("dc01.pod{pod:02}.sw{sw:02}"),
                    vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
                )
                .unwrap();
            }
        }
        db.insert_link(
            "dc01.pod00.sw00",
            "dc01.pod00.sw01",
            vec![(attrs::LINK_STATUS.into(), attrs::UP.into())],
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = seeded();
        let names = db.select_devices(&pat("dc01.pod01.*")).unwrap();
        assert_eq!(names.len(), 4);
        assert!(names.iter().all(|n| n.starts_with("dc01.pod01.")));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let db = seeded();
        let err = db.insert_device("dc01.pod00.sw00", vec![]).unwrap_err();
        assert!(matches!(err, DbError::AlreadyExists(_)));
    }

    #[test]
    fn set_attr_scope_writes_all_matches() {
        let db = seeded();
        let written = db
            .set_attr(
                &pat("dc01.pod02.*"),
                attrs::DEVICE_STATUS,
                attrs::STATUS_UNDER_MAINTENANCE.into(),
            )
            .unwrap();
        assert_eq!(written.len(), 4);
        let vals = db.get_attr(&pat("dc01.*"), attrs::DEVICE_STATUS).unwrap();
        let maint = vals
            .values()
            .filter(|v| v.as_str() == Some(attrs::STATUS_UNDER_MAINTENANCE))
            .count();
        assert_eq!(maint, 4);
    }

    #[test]
    fn per_device_set_is_atomic() {
        let db = seeded();
        let mut m = BTreeMap::new();
        m.insert("dc01.pod00.sw00".to_string(), AttrValue::str("10.0.0.1"));
        m.insert("dc01.pod00.nope".to_string(), AttrValue::str("10.0.0.2"));
        let err = db.set_attr_per_device(&m, attrs::IP_ADDRESS).unwrap_err();
        assert!(matches!(err, DbError::NoSuchDevice(_)));
        // Nothing applied.
        assert!(db
            .get_attr(&pat("dc01.*"), attrs::IP_ADDRESS)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn delete_device_cascades_links() {
        let db = seeded();
        db.delete_device("dc01.pod00.sw00").unwrap();
        assert!(db.links_touching(&pat("dc01.*")).unwrap().is_empty());
        assert!(!db.device_exists("dc01.pod00.sw00").unwrap());
    }

    #[test]
    fn link_requires_existing_endpoints() {
        let db = seeded();
        let err = db
            .insert_link("dc01.pod00.sw00", "dc09.pod00.sw00", vec![])
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchDevice(_)));
        let err = db
            .insert_link("dc01.pod00.sw00", "dc01.pod00.sw00", vec![])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
    }

    #[test]
    fn link_key_is_undirected() {
        let db = seeded();
        db.set_link_attr(
            "dc01.pod00.sw01",
            "dc01.pod00.sw00",
            attrs::LINK_STATUS,
            attrs::DOWN.into(),
        )
        .unwrap();
        let vals = db
            .get_link_attr(&pat("dc01.pod00.*"), attrs::LINK_STATUS)
            .unwrap();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals.values().next().unwrap().as_str(), Some(attrs::DOWN));
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let db = seeded();
        let before = db.snapshot();
        let err = db
            .batch(&[
                WriteOp::SetDeviceAttr {
                    name: "dc01.pod00.sw00".into(),
                    attr: "X".into(),
                    value: AttrValue::Int(1),
                },
                WriteOp::DeleteDevice {
                    name: "missing".into(),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchDevice(_)));
        assert_eq!(db.snapshot(), before);
    }

    #[test]
    fn wal_replay_reconstructs_state() {
        let db = seeded();
        db.set_attr(&pat("dc01.pod01.*"), "X", AttrValue::Int(9))
            .unwrap();
        db.delete_device("dc01.pod02.sw03").unwrap();
        let replayed = Store::replay(&db.wal_records());
        assert_eq!(replayed, db.snapshot());
    }

    #[test]
    fn fault_injection_surfaces_connection_failures() {
        let db = seeded();
        db.set_fault_plan(FaultPlan::fail_at([0]));
        let err = db.select_devices(&pat("dc01.*")).unwrap_err();
        assert!(matches!(err, DbError::ConnectionFailure { .. }));
        // Next query succeeds.
        assert!(db.select_devices(&pat("dc01.*")).is_ok());
        assert_eq!(db.faults().failures_injected(), 1);
    }

    #[test]
    fn snapshot_diff_captures_changes() {
        let db = seeded();
        let before = db.snapshot();
        db.set_attr(
            &pat("dc01.pod00.sw00"),
            attrs::DEVICE_STATUS,
            attrs::STATUS_DRAINED.into(),
        )
        .unwrap();
        db.insert_device("dc01.pod00.sw99", vec![]).unwrap();
        let after = db.snapshot();
        let (before, after) = (before.materialize(), after.materialize());
        let d = diff(&before, &after);
        assert!(d.contains(&DiffEntry::DeviceAdded("dc01.pod00.sw99".into())));
        assert!(d.iter().any(|e| matches!(
            e,
            DiffEntry::DeviceAttrChanged(n, a, _, _)
                if n == "dc01.pod00.sw00" && a == attrs::DEVICE_STATUS
        )));
        assert_eq!(diff(&after, &after), Vec::new());
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        for i in 0..8 {
            db.insert_device(&format!("dc01.pod00.sw{i:02}"), vec![])
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    db.set_attr(
                        &Pattern::from_glob(&format!("dc01.pod00.sw{:02}", t % 8)).unwrap(),
                        "COUNTER",
                        AttrValue::Int(i),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // WAL replay must agree with the final state even under concurrency.
        assert_eq!(Store::replay(&db.wal_records()), db.snapshot());
    }

    /// Regression test for the OCC ordering fix: the shard-version bump
    /// and the WAL append both happen under the writer mutex, so a torn
    /// publish can never reorder versions relative to WAL commit order.
    /// Replaying the WAL batch-by-batch must reproduce the *exact*
    /// published version vector and commit count, and every published
    /// state observed mid-flight must be version-monotone.
    #[test]
    fn torn_publish_cannot_reorder_shard_versions() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        for pod in 0..4 {
            db.insert_device(&format!("dc01.pod{pod:02}.sw00"), vec![])
                .unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let (db, stop) = (Arc::clone(&db), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut last = db.snapshot();
                while !stop.load(Ordering::Relaxed) {
                    let cur = db.snapshot();
                    assert!(cur.commits() >= last.commits(), "commit count regressed");
                    for (c, l) in cur.shard_versions().iter().zip(last.shard_versions()) {
                        assert!(c >= l, "shard version regressed across publications");
                    }
                    last = cur;
                }
            })
        };
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    db.set_attr(
                        &pat(&format!("dc01.pod{:02}.*", (t + i) % 4)),
                        "COUNTER",
                        AttrValue::Int(i64::from(i)),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        observer.join().unwrap();
        let live = db.snapshot();
        let replayed = crate::shard::StoreSnapshot::replay(&db.wal_records());
        assert_eq!(replayed, live);
        assert_eq!(replayed.commits(), live.commits());
        assert_eq!(replayed.shard_versions(), live.shard_versions());
    }
}
