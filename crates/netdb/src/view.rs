//! The unified read accessor.
//!
//! Before this module, consistent reads reached the store through three
//! ad-hoc doors: `Database::snapshot()` (leader, fault-bypassing),
//! `Database::query_snapshot()` (leader, fault-checked), and
//! `ReadRouter::snapshot_from()` (follower-routed with a staleness
//! bound). A [`ReadView`] collapses them: one handle carrying the
//! snapshot, its commit count, its per-shard version vector, and where
//! it was served from — so OCC validation, serializability
//! certification, and follower-staleness accounting all consume the same
//! thing.

use crate::replica::router::ReadSource;
use crate::shard::StoreSnapshot;
use std::ops::Deref;

/// A consistent point-in-time read handle over the network database.
///
/// Dereferences to [`StoreSnapshot`], so the whole snapshot read API
/// (`select_devices`, `get_attr`, `links_touching`, …) is available
/// directly. On top of the raw snapshot it knows:
///
/// - [`ReadView::commits`] — the WAL commit count the view contains,
///   placing every read served from it exactly in the commit order;
/// - [`ReadView::shard_versions`] — the per-shard monotonic versions OCC
///   validation compares against the published state at commit time;
/// - [`ReadView::source`] — leader or follower, for staleness
///   accounting on routed reads.
#[derive(Clone, Debug)]
pub struct ReadView {
    snapshot: StoreSnapshot,
    source: ReadSource,
}

impl ReadView {
    /// Wraps a snapshot with its serving source.
    pub fn new(snapshot: StoreSnapshot, source: ReadSource) -> ReadView {
        ReadView { snapshot, source }
    }

    /// The underlying snapshot, by reference.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// Unwraps the underlying snapshot.
    pub fn into_snapshot(self) -> StoreSnapshot {
        self.snapshot
    }

    /// Where this view was served from (leader, or a follower replica).
    pub fn source(&self) -> ReadSource {
        self.source
    }

    /// Number of committed batches folded into this view — its exact
    /// position in the global commit order.
    pub fn commits(&self) -> u64 {
        self.snapshot.commits()
    }

    /// The per-shard version vector of this view (see
    /// [`StoreSnapshot::shard_versions`]).
    pub fn shard_versions(&self) -> &[u64] {
        self.snapshot.shard_versions()
    }
}

impl Deref for ReadView {
    type Target = StoreSnapshot;

    fn deref(&self) -> &StoreSnapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Database;
    use crate::replica::router::ReadSource;
    use occam_regex::Pattern;

    #[test]
    fn read_view_carries_commit_position_and_versions() {
        let db = Database::new();
        db.insert_device("dc01.pod00.sw00", vec![]).unwrap();
        db.insert_device("dc01.pod00.sw01", vec![]).unwrap();
        let view = db.read_view();
        assert_eq!(view.source(), ReadSource::Leader);
        assert_eq!(view.commits(), 2);
        assert_eq!(
            view.select_devices(&Pattern::from_glob("dc01.*").unwrap())
                .len(),
            2
        );
        let before = view.shard_versions().to_vec();
        db.insert_device("dc01.pod00.sw02", vec![]).unwrap();
        // The old view is frozen; the new view's touched shard moved on.
        assert_eq!(view.shard_versions(), before.as_slice());
        let after = db.read_view();
        assert_eq!(after.commits(), 3);
        assert!(after
            .shard_versions()
            .iter()
            .zip(before.iter())
            .any(|(a, b)| a > b));
    }
}
