//! Optimistic concurrency control: staged writes over a frozen snapshot.
//!
//! The 2PL runtime serializes every task through the lock tree even when
//! the task is read-mostly and a zero-cost consistent view already
//! exists (the sharded [`StoreSnapshot`]). The OCC fast path lets a task
//! run entirely against a frozen snapshot:
//!
//! 1. reads are served from the snapshot (lock-free, consistent);
//! 2. writes are *staged* into a [`StagedStore`] — a private
//!    copy-on-write fork of the snapshot that validates each batch with
//!    the same rules as [`Database::batch`] and supports
//!    read-your-writes via [`StagedStore::overlay`];
//! 3. at commit, [`Database::occ_publish`] compares the per-shard
//!    version counters of every shard the task read or wrote against
//!    the currently published state. If none moved, the staged shards
//!    are grafted on and published through the ordinary writer-mutex
//!    commit protocol; otherwise the task conflicted and the caller
//!    retries or falls back to 2PL.
//!
//! Validation at shard granularity is conservative (two tasks touching
//! different devices in one shard still conflict) but cheap — O(touched
//! shards) integer compares — and sound: a clean validation proves the
//! task's entire read set is unchanged at the commit point, so the
//! execution is equivalent to running serially at publication.

use crate::db::{Database, WriteOp};
use crate::error::DbResult;
use crate::shard::{ShardData, StoreSnapshot, StoreState};
use crate::wal::WalRecord;
use std::sync::Arc;

/// Result of an [`Database::occ_publish`] attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OccOutcome {
    /// Validation passed and the staged batch was published. `seq` is
    /// the WAL commit sequence of the batch (the writes become visible
    /// at commit count `seq + 1`); for an empty staged store it is the
    /// commit count the read-only task serialized at.
    Committed {
        /// WAL commit sequence (or serialization point when read-only).
        seq: u64,
    },
    /// Another commit touched a shard in the task's read or write set
    /// since its snapshot was taken; nothing was published.
    Conflict {
        /// Index of the first shard that failed validation.
        shard: usize,
    },
}

/// A task-private fork of the store: buffered, validated writes over a
/// frozen base snapshot.
///
/// Writes applied here are invisible to every other task until
/// [`Database::occ_publish`] grafts them onto the published state. The
/// fork shares every untouched shard with the base by `Arc`, so its
/// cost is proportional to the shards actually written.
#[derive(Debug)]
pub struct StagedStore {
    base: StoreSnapshot,
    work: StoreState,
    records: Vec<WalRecord>,
}

impl StagedStore {
    /// Forks a staging area off a frozen base snapshot.
    pub fn new(base: StoreSnapshot) -> StagedStore {
        let work = (*base.state).clone();
        StagedStore {
            base,
            work,
            records: Vec::new(),
        }
    }

    /// The frozen snapshot this staging area forked from.
    pub fn base(&self) -> &StoreSnapshot {
        &self.base
    }

    pub(crate) fn base_state(&self) -> &StoreState {
        &self.base.state
    }

    /// Validates and stages one atomic batch against the working state
    /// (base snapshot plus every previously staged batch). All ops
    /// validate before any applies, mirroring [`Database::batch`]; a
    /// failed batch stages nothing.
    pub fn apply(&mut self, ops: &[WriteOp]) -> DbResult<()> {
        Database::validate(&self.work, ops)?;
        let records: Vec<WalRecord> = ops.iter().map(Database::to_record).collect();
        for r in &records {
            self.work.apply(r);
        }
        self.records.extend(records);
        Ok(())
    }

    /// A read-your-writes view: the base snapshot with every staged
    /// batch applied. O(shards) to take, like any snapshot.
    pub fn overlay(&self) -> StoreSnapshot {
        StoreSnapshot {
            state: Arc::new(self.work.clone()),
        }
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of staged redo records.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// The staged redo records, in application order.
    pub(crate) fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Indices of the shards the staged batches modified, detected by
    /// `Arc` pointer inequality against the base — which captures every
    /// side effect, including delete cascades into neighboring shards.
    pub(crate) fn dirty_shards(&self) -> Vec<usize> {
        self.work
            .shards
            .iter()
            .zip(self.base.state.shards.iter())
            .enumerate()
            .filter(|(_, (w, b))| !Arc::ptr_eq(w, b))
            .map(|(i, _)| i)
            .collect()
    }

    pub(crate) fn shard(&self, idx: usize) -> Arc<ShardData> {
        Arc::clone(&self.work.shards[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::shard_of;
    use crate::value::AttrValue;
    use occam_regex::Pattern;
    use std::collections::BTreeSet;

    fn set(name: &str, attr: &str, v: i64) -> WriteOp {
        WriteOp::SetDeviceAttr {
            name: name.into(),
            attr: attr.into(),
            value: AttrValue::Int(v),
        }
    }

    fn seeded() -> Database {
        let db = Database::new();
        for sw in 0..4 {
            db.insert_device(&format!("dc01.pod00.sw{sw:02}"), vec![])
                .unwrap();
            db.insert_device(&format!("dc01.pod01.sw{sw:02}"), vec![])
                .unwrap();
        }
        db
    }

    #[test]
    fn staged_writes_are_invisible_until_published() {
        let db = seeded();
        let mut staged = StagedStore::new(db.snapshot());
        staged.apply(&[set("dc01.pod00.sw00", "X", 7)]).unwrap();
        // Read-your-writes through the overlay, invisible outside.
        let pat = Pattern::from_glob("dc01.pod00.sw00").unwrap();
        assert_eq!(staged.overlay().get_attr(&pat, "X").len(), 1);
        assert!(db.snapshot().get_attr(&pat, "X").is_empty());
        let out = db.occ_publish(&staged, &BTreeSet::new()).unwrap();
        assert!(matches!(out, OccOutcome::Committed { .. }));
        assert_eq!(db.snapshot().get_attr(&pat, "X").len(), 1);
        // WAL replay agrees with the published state, versions included.
        let replayed = StoreSnapshot::replay(&db.wal_records());
        assert_eq!(replayed, db.snapshot());
        assert_eq!(replayed.shard_versions(), db.snapshot().shard_versions());
    }

    #[test]
    fn conflicting_commit_fails_validation() {
        let db = seeded();
        let mut staged = StagedStore::new(db.snapshot());
        staged.apply(&[set("dc01.pod00.sw00", "X", 1)]).unwrap();
        // Interleaved commit to the same shard.
        db.set_attr(
            &Pattern::from_glob("dc01.pod00.sw01").unwrap(),
            "Y",
            AttrValue::Int(2),
        )
        .unwrap();
        let out = db.occ_publish(&staged, &BTreeSet::new()).unwrap();
        assert_eq!(
            out,
            OccOutcome::Conflict {
                shard: shard_of("dc01.pod00.sw00")
            }
        );
        // Nothing published.
        assert!(db
            .snapshot()
            .get_attr(&Pattern::from_glob("dc01.pod00.sw00").unwrap(), "X")
            .is_empty());
    }

    #[test]
    fn read_set_is_validated_even_without_writes_to_it() {
        let db = seeded();
        let snap = db.snapshot();
        let mut staged = StagedStore::new(snap);
        staged.apply(&[set("dc01.pod00.sw00", "X", 1)]).unwrap();
        // The task read pod01 (a different shard) — a commit there must
        // invalidate it even though the write set is untouched.
        let read_shard = shard_of("dc01.pod01.sw00");
        db.set_attr(
            &Pattern::from_glob("dc01.pod01.sw00").unwrap(),
            "Y",
            AttrValue::Int(2),
        )
        .unwrap();
        let reads: BTreeSet<usize> = [read_shard].into();
        let out = db.occ_publish(&staged, &reads).unwrap();
        assert_eq!(out, OccOutcome::Conflict { shard: read_shard });
    }

    #[test]
    fn empty_staged_store_serializes_at_base_count() {
        let db = seeded();
        let staged = StagedStore::new(db.snapshot());
        let base_commits = db.commits();
        // Later commits never conflict with a read-only task: its whole
        // execution is the base snapshot, so it serializes there.
        db.set_attr(
            &Pattern::from_glob("dc01.pod00.sw01").unwrap(),
            "Y",
            AttrValue::Int(2),
        )
        .unwrap();
        let out = db.occ_publish(&staged, &BTreeSet::new()).unwrap();
        assert_eq!(out, OccOutcome::Committed { seq: base_commits });
        assert_eq!(
            db.commits(),
            base_commits + 1,
            "read-only publish appends nothing"
        );
    }

    #[test]
    fn staged_batches_validate_like_database_batches() {
        let db = seeded();
        let mut staged = StagedStore::new(db.snapshot());
        // Batch referencing a missing device fails atomically.
        let err = staged
            .apply(&[set("dc01.pod00.sw00", "X", 1), set("missing", "X", 1)])
            .unwrap_err();
        assert!(matches!(err, crate::error::DbError::NoSuchDevice(_)));
        assert!(staged.is_empty());
        // Delete cascade dirties neighbor shards too.
        db.insert_link("dc01.pod00.sw00", "dc01.pod01.sw00", vec![])
            .unwrap();
        let mut staged = StagedStore::new(db.snapshot());
        staged
            .apply(&[WriteOp::DeleteDevice {
                name: "dc01.pod00.sw00".into(),
            }])
            .unwrap();
        let dirty = staged.dirty_shards();
        assert!(dirty.contains(&shard_of("dc01.pod00.sw00")));
        assert!(dirty.contains(&shard_of("dc01.pod01.sw00")));
    }
}
