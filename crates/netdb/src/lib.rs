//! # occam-netdb
//!
//! The source-of-truth network database substrate (the role played by
//! Robotron \[39\] / Malt \[29\] in the Occam paper).
//!
//! The database stores the *logical* network: device rows, link rows, and
//! their attributes. It provides **query-level** transactions — every call
//! commits atomically and is redo-logged to a write-ahead log — but it
//! deliberately provides *no isolation across queries*. That gap is the
//! paper's motivating reliability problem #1 (§2.3) and is closed by the
//! Occam runtime's multi-granularity locking, not by the database.
//!
//! Fault injection ([`FaultPlan`]) models the dominant failure class in the
//! paper's production dataset (database query errors, 63%).
//!
//! For availability and read scale beyond one process, the [`replica`]
//! module ships the WAL to follower replicas with quorum
//! acknowledgement, scoped-read routing, and deterministic leader
//! failover (DESIGN.md §14).
//!
//! # Examples
//!
//! ```
//! use occam_netdb::{Database, attrs};
//! use occam_regex::Pattern;
//!
//! let db = Database::new();
//! db.insert_device("dc01.pod03.sw00", vec![
//!     (attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into()),
//! ]).unwrap();
//!
//! let scope = Pattern::from_glob("dc01.pod03.*").unwrap();
//! let names = db.select_devices(&scope).unwrap();
//! assert_eq!(names, vec!["dc01.pod03.sw00"]);
//! ```

#![deny(missing_docs)]

pub mod db;
pub mod error;
pub mod fault;
pub mod ivm;
pub mod occ;
pub mod persist;
pub mod replica;
pub mod shard;
pub mod value;
pub mod view;
pub mod wal;

pub use db::{
    diff, link_key, Database, DeviceRecord, DiffEntry, LinkKey, LinkRecord, Store, WriteOp,
};
pub use error::{DbError, DbResult};
pub use fault::{FaultInjector, FaultPlan, FaultPlanBuilder};
pub use ivm::{
    compliance_cold, snapshot_delta, Assertion, ComplianceReport, NonCompliance, SnapshotDelta,
    ViewCache,
};
pub use occ::{OccOutcome, StagedStore};
pub use persist::{decode as decode_wal, encode as encode_wal, WalDecodeError};
pub use replica::router::ReadSource;
pub use replica::{
    check_identical, Follower, Leader, Promotion, ReadRouter, ReplicaConfig, ReplicaSet, Shipment,
};
pub use shard::{route_prefix, shard_of, ShardRoute, StoreSnapshot, NUM_SHARDS};
pub use value::{attrs, AttrValue};
pub use view::ReadView;
pub use wal::{Wal, WalRecord};
