//! WAL serialization: a stable, line-oriented text encoding so the
//! source-of-truth database can be persisted and rebuilt by replay
//! (ARIES-style recovery, simplified to redo-only records).
//!
//! Format: one record per line, tab-separated fields, first field is the
//! record tag. Strings escape `\\`, tab, and newline; attribute values
//! carry a type prefix (`s:`/`i:`/`b:`).

use crate::value::AttrValue;
use crate::wal::WalRecord;

/// An error decoding a serialized WAL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalDecodeError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for WalDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WAL decode error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for WalDecodeError {}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn unesc(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                other => return Err(format!("bad escape {other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn enc_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => format!("s:{}", esc(s)),
        AttrValue::Int(i) => format!("i:{i}"),
        AttrValue::Bool(b) => format!("b:{b}"),
    }
}

fn dec_value(s: &str) -> Result<AttrValue, String> {
    match s.split_once(':') {
        Some(("s", rest)) => Ok(AttrValue::Str(unesc(rest)?)),
        Some(("i", rest)) => rest
            .parse::<i64>()
            .map(AttrValue::Int)
            .map_err(|e| e.to_string()),
        Some(("b", rest)) => rest
            .parse::<bool>()
            .map(AttrValue::Bool)
            .map_err(|e| e.to_string()),
        _ => Err(format!("bad value {s:?}")),
    }
}

fn enc_attrs(attrs: &[(String, AttrValue)]) -> String {
    attrs
        .iter()
        .map(|(k, v)| format!("{}={}", esc(k), enc_value(v)))
        .collect::<Vec<_>>()
        .join("\t")
}

fn dec_attrs(fields: &[&str]) -> Result<Vec<(String, AttrValue)>, String> {
    fields
        .iter()
        .map(|f| {
            let (k, v) = f.split_once('=').ok_or_else(|| format!("bad attr {f:?}"))?;
            Ok((unesc(k)?, dec_value(v)?))
        })
        .collect()
}

/// Serializes a record sequence to the text format.
pub fn encode(records: &[WalRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let line = match r {
            WalRecord::InsertDevice { name, attrs } => {
                let mut l = format!("INS_DEV\t{}", esc(name));
                if !attrs.is_empty() {
                    l.push('\t');
                    l.push_str(&enc_attrs(attrs));
                }
                l
            }
            WalRecord::DeleteDevice { name } => format!("DEL_DEV\t{}", esc(name)),
            WalRecord::SetDeviceAttr { name, attr, value } => {
                format!(
                    "SET_DEV\t{}\t{}\t{}",
                    esc(name),
                    esc(attr),
                    enc_value(value)
                )
            }
            WalRecord::UnsetDeviceAttr { name, attr } => {
                format!("UNSET_DEV\t{}\t{}", esc(name), esc(attr))
            }
            WalRecord::InsertLink {
                a_end,
                z_end,
                attrs,
            } => {
                let mut l = format!("INS_LINK\t{}\t{}", esc(a_end), esc(z_end));
                if !attrs.is_empty() {
                    l.push('\t');
                    l.push_str(&enc_attrs(attrs));
                }
                l
            }
            WalRecord::DeleteLink { a_end, z_end } => {
                format!("DEL_LINK\t{}\t{}", esc(a_end), esc(z_end))
            }
            WalRecord::SetLinkAttr {
                a_end,
                z_end,
                attr,
                value,
            } => format!(
                "SET_LINK\t{}\t{}\t{}\t{}",
                esc(a_end),
                esc(z_end),
                esc(attr),
                enc_value(value)
            ),
            WalRecord::UnsetLinkAttr { a_end, z_end, attr } => {
                format!("UNSET_LINK\t{}\t{}\t{}", esc(a_end), esc(z_end), esc(attr))
            }
            WalRecord::Commit { seq } => format!("COMMIT\t{seq}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Parses the text format back into records.
pub fn decode(text: &str) -> Result<Vec<WalRecord>, WalDecodeError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let err = |msg: String| WalDecodeError { line: i + 1, msg };
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let rec = match fields[0] {
            "INS_DEV" if fields.len() >= 2 => WalRecord::InsertDevice {
                name: unesc(fields[1]).map_err(&err)?,
                attrs: dec_attrs(&fields[2..]).map_err(&err)?,
            },
            "DEL_DEV" if fields.len() == 2 => WalRecord::DeleteDevice {
                name: unesc(fields[1]).map_err(&err)?,
            },
            "SET_DEV" if fields.len() == 4 => WalRecord::SetDeviceAttr {
                name: unesc(fields[1]).map_err(&err)?,
                attr: unesc(fields[2]).map_err(&err)?,
                value: dec_value(fields[3]).map_err(&err)?,
            },
            "UNSET_DEV" if fields.len() == 3 => WalRecord::UnsetDeviceAttr {
                name: unesc(fields[1]).map_err(&err)?,
                attr: unesc(fields[2]).map_err(&err)?,
            },
            "INS_LINK" if fields.len() >= 3 => WalRecord::InsertLink {
                a_end: unesc(fields[1]).map_err(&err)?,
                z_end: unesc(fields[2]).map_err(&err)?,
                attrs: dec_attrs(&fields[3..]).map_err(&err)?,
            },
            "DEL_LINK" if fields.len() == 3 => WalRecord::DeleteLink {
                a_end: unesc(fields[1]).map_err(&err)?,
                z_end: unesc(fields[2]).map_err(&err)?,
            },
            "SET_LINK" if fields.len() == 5 => WalRecord::SetLinkAttr {
                a_end: unesc(fields[1]).map_err(&err)?,
                z_end: unesc(fields[2]).map_err(&err)?,
                attr: unesc(fields[3]).map_err(&err)?,
                value: dec_value(fields[4]).map_err(&err)?,
            },
            "UNSET_LINK" if fields.len() == 4 => WalRecord::UnsetLinkAttr {
                a_end: unesc(fields[1]).map_err(&err)?,
                z_end: unesc(fields[2]).map_err(&err)?,
                attr: unesc(fields[3]).map_err(&err)?,
            },
            "COMMIT" if fields.len() == 2 => WalRecord::Commit {
                seq: fields[1].parse::<u64>().map_err(|e| err(e.to_string()))?,
            },
            tag => return Err(err(format!("unknown or malformed record {tag:?}"))),
        };
        out.push(rec);
    }
    Ok(out)
}

impl crate::db::Database {
    /// Serializes the full WAL to the persistent text format.
    pub fn dump_wal(&self) -> String {
        encode(&self.wal_records())
    }

    /// Rebuilds a database from a serialized WAL: the recovered store is
    /// the replay of all records, and the WAL continues from there.
    pub fn recover(text: &str) -> Result<crate::db::Database, WalDecodeError> {
        let records = decode(text)?;
        let db = crate::db::Database::new();
        db.install_recovered(records);
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use occam_regex::Pattern;

    fn exercised_db() -> Database {
        let db = Database::new();
        db.insert_device("dc01.pod00.sw00", vec![("A".into(), AttrValue::Int(1))])
            .unwrap();
        db.insert_device("dc01.pod00.sw01", vec![]).unwrap();
        db.insert_link(
            "dc01.pod00.sw00",
            "dc01.pod00.sw01",
            vec![("LINK_STATUS".into(), "UP".into())],
        )
        .unwrap();
        db.set_attr(
            &Pattern::from_glob("dc01.*").unwrap(),
            "NOTE",
            AttrValue::str("weird\tchars\nhere\\ok"),
        )
        .unwrap();
        db.set_link_attr("dc01.pod00.sw00", "dc01.pod00.sw01", "SPEED", 100i64.into())
            .unwrap();
        db.delete_device("dc01.pod00.sw01").unwrap();
        db
    }

    #[test]
    fn encode_decode_round_trip() {
        let db = exercised_db();
        let records = db.wal_records();
        let text = encode(&records);
        let back = decode(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn recover_rebuilds_identical_state() {
        let db = exercised_db();
        let text = db.dump_wal();
        let recovered = Database::recover(&text).unwrap();
        assert_eq!(recovered.snapshot(), db.snapshot());
        assert_eq!(recovered.commits(), db.commits());
        // The recovered database keeps working and logging.
        recovered.insert_device("dc02.pod00.sw00", vec![]).unwrap();
        assert!(recovered.device_exists("dc02.pod00.sw00").unwrap());
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "BOGUS\tx",
            "SET_DEV\tonly\ttwo",
            "COMMIT\tnot_a_number",
            "SET_DEV\td\ta\tq:12",
            "INS_DEV\tname\tnoequals",
        ] {
            let e = decode(bad).unwrap_err();
            assert_eq!(e.line, 1, "{bad}");
        }
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let hostile = "tab\there\\and\nnewline";
        let rec = vec![WalRecord::SetDeviceAttr {
            name: hostile.to_string(),
            attr: "x=y".to_string(),
            value: AttrValue::str(hostile),
        }];
        let back = decode(&encode(&rec)).unwrap();
        assert_eq!(back, rec);
    }
}
