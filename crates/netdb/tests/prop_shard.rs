//! Property tests for the sharded store: replay equivalence against the
//! naive `Store`, scoped-read equivalence, and snapshot immutability
//! under concurrent writers.
//!
//! These drive *raw WAL records* (not validated `WriteOp` batches), so
//! the sequences include the adversarial cases validation would reject:
//! records referencing missing rows, self-links, repeated inserts, and
//! names outside the `dcNN.podNN` scheme that land in the catch-all
//! shard.

use occam_netdb::wal::WalRecord;
use occam_netdb::{AttrValue, Database, Store, StoreSnapshot, WriteOp};
use occam_regex::Pattern;
use proptest::prelude::*;

/// Names across several shards, plus non-conforming ones (catch-all).
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        4 => (0u32..3, 0u32..3, 0u32..3)
            .prop_map(|(dc, pod, sw)| format!("dc{:02}.pod{:02}.sw{:02}", dc + 1, pod, sw)),
        1 => (0u32..2, 0u32..2).prop_map(|(dc, c)| format!("dc{:02}.core.c{c:02}", dc + 1)),
        1 => (0u32..3).prop_map(|n| format!("oob-{n}")),
    ]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (arb_name(), 0i64..4).prop_map(|(name, v)| WalRecord::InsertDevice {
            name,
            attrs: vec![("A".into(), v.into())],
        }),
        arb_name().prop_map(|name| WalRecord::DeleteDevice { name }),
        (arb_name(), 0i64..4).prop_map(|(name, v)| WalRecord::SetDeviceAttr {
            name,
            attr: "X".into(),
            value: v.into(),
        }),
        arb_name().prop_map(|name| WalRecord::UnsetDeviceAttr {
            name,
            attr: "X".into(),
        }),
        (arb_name(), arb_name()).prop_map(|(a, z)| WalRecord::InsertLink {
            a_end: a,
            z_end: z,
            attrs: vec![],
        }),
        (arb_name(), arb_name()).prop_map(|(a, z)| WalRecord::DeleteLink { a_end: a, z_end: z }),
        (arb_name(), arb_name(), 0i64..4).prop_map(|(a, z, v)| WalRecord::SetLinkAttr {
            a_end: a,
            z_end: z,
            attr: "S".into(),
            value: v.into(),
        }),
        (arb_name(), arb_name()).prop_map(|(a, z)| WalRecord::UnsetLinkAttr {
            a_end: a,
            z_end: z,
            attr: "S".into(),
        }),
    ]
}

/// Scopes exercising every routing case: pinned (dc, pod) shard,
/// unroutable prefixes, the catch-all shard, and match-everything.
fn arb_scope() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (0u32..3, 0u32..3).prop_map(|(dc, pod)| format!("dc{:02}.pod{:02}.*", dc + 1, pod)),
        (0u32..3).prop_map(|dc| format!("dc{:02}.*", dc + 1)),
        Just("oob-*".to_string()),
        Just("*".to_string()),
    ]
    .prop_map(|glob| Pattern::from_glob(&glob).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded replay is extensionally equal to naive replay over any
    /// record sequence, and never breaks the shard invariants.
    #[test]
    fn sharded_replay_equals_naive(recs in proptest::collection::vec(arb_record(), 0..80)) {
        let sharded = StoreSnapshot::replay(&recs);
        let naive = Store::replay(&recs);
        prop_assert_eq!(&sharded, &naive);
        prop_assert_eq!(sharded.materialize(), naive);
        sharded.self_check().map_err(TestCaseError::fail)?;
    }

    /// Every scoped read on the snapshot agrees with a linear scan of the
    /// materialized flat store, for scopes across all routing cases.
    #[test]
    fn scoped_reads_match_flat_scan(
        recs in proptest::collection::vec(arb_record(), 0..60),
        scope in arb_scope(),
    ) {
        let snap = StoreSnapshot::replay(&recs);
        let flat = Store::replay(&recs);

        let expect_devices: Vec<String> =
            flat.devices.keys().filter(|n| scope.matches(n)).cloned().collect();
        prop_assert_eq!(snap.select_devices(&scope), expect_devices);

        let expect_attr: std::collections::BTreeMap<String, AttrValue> = flat
            .devices
            .iter()
            .filter(|(n, _)| scope.matches(n))
            .filter_map(|(n, d)| d.attrs.get("X").map(|v| (n.clone(), v.clone())))
            .collect();
        prop_assert_eq!(snap.get_attr(&scope, "X"), expect_attr);

        let expect_links: Vec<_> = flat
            .links
            .keys()
            .filter(|(a, z)| scope.matches(a) || scope.matches(z))
            .cloned()
            .collect();
        prop_assert_eq!(snap.links_touching(&scope), expect_links);

        let expect_link_attr: std::collections::BTreeMap<_, _> = flat
            .links
            .iter()
            .filter(|((a, z), _)| scope.matches(a) || scope.matches(z))
            .filter_map(|(k, l)| l.attrs.get("S").map(|v| (k.clone(), v.clone())))
            .collect();
        prop_assert_eq!(snap.get_link_attr(&scope, "S"), expect_link_attr);
    }

    /// A snapshot taken before more commits never changes, and replaying
    /// the WAL prefix it was taken at reproduces it exactly.
    #[test]
    fn snapshots_are_stable_versions(
        recs_a in proptest::collection::vec(arb_record(), 0..30),
        recs_b in proptest::collection::vec(arb_record(), 1..30),
    ) {
        let db = Database::new();
        // Drive through raw-record batches via install_recovered-free path:
        // batch() validates, so route records through replay comparison
        // instead — commit each record that validates as a WriteOp-free
        // direct snapshot check is covered above. Here we use set-style
        // batches derived from the records' device names.
        for r in &recs_a {
            if let WalRecord::InsertDevice { name, attrs } = r {
                let _ = db.batch(&[WriteOp::InsertDevice {
                    name: name.clone(),
                    attrs: attrs.clone(),
                }]);
            }
        }
        let frozen = db.snapshot();
        let frozen_flat = frozen.materialize();
        let wal_at_freeze = db.wal_records();
        for r in &recs_b {
            match r {
                WalRecord::InsertDevice { name, attrs } => {
                    let _ = db.batch(&[WriteOp::InsertDevice {
                        name: name.clone(),
                        attrs: attrs.clone(),
                    }]);
                }
                WalRecord::DeleteDevice { name } => {
                    let _ = db.batch(&[WriteOp::DeleteDevice { name: name.clone() }]);
                }
                WalRecord::SetDeviceAttr { name, attr, value } => {
                    let _ = db.batch(&[WriteOp::SetDeviceAttr {
                        name: name.clone(),
                        attr: attr.clone(),
                        value: value.clone(),
                    }]);
                }
                _ => {}
            }
        }
        // The old handle still reads the frozen version.
        prop_assert_eq!(&frozen, &frozen_flat);
        prop_assert_eq!(StoreSnapshot::replay(&wal_at_freeze), frozen_flat);
        // And the live DB still replays to its own (newer) state.
        prop_assert_eq!(Store::replay(&db.wal_records()), db.snapshot());
    }
}

/// Threaded stress: readers hold snapshots while writers commit. Each
/// snapshot must be immutable (repeated reads identical) and internally
/// consistent (the paired marker attributes a writer commits atomically
/// are never observed torn).
#[test]
fn snapshot_immutable_and_consistent_under_writers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let db = Arc::new(Database::new());
    let pods = 4usize;
    for pod in 0..pods {
        for sw in 0..4 {
            db.insert_device(&format!("dc01.pod{pod:02}.sw{sw:02}"), vec![])
                .unwrap();
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..2u32 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                // One atomic batch sets L and R to the same value across
                // two pods; no snapshot may ever see L != R.
                let v = AttrValue::Int(i);
                db.batch(&[
                    WriteOp::SetDeviceAttr {
                        name: format!("dc01.pod{:02}.sw00", t * 2),
                        attr: "L".into(),
                        value: v.clone(),
                    },
                    WriteOp::SetDeviceAttr {
                        name: format!("dc01.pod{:02}.sw00", t * 2 + 1),
                        attr: "R".into(),
                        value: v,
                    },
                ])
                .unwrap();
                i += 1;
            }
        }));
    }
    let all = Pattern::from_glob("dc01.*").unwrap();
    for _ in 0..200 {
        let snap = db.snapshot();
        let first = snap.get_all(&all);
        // Torn-batch check: paired markers agree within one version.
        for t in 0..2u32 {
            let l = first
                .get(&format!("dc01.pod{:02}.sw00", t * 2))
                .and_then(|m| m.get("L"));
            let r = first
                .get(&format!("dc01.pod{:02}.sw00", t * 2 + 1))
                .and_then(|m| m.get("R"));
            assert_eq!(l, r, "snapshot observed a torn batch");
        }
        // Immutability check: the handle re-reads identically while
        // writers keep committing.
        assert_eq!(snap.get_all(&all), first);
        snap.self_check().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    // The final state still replays exactly from the WAL.
    assert_eq!(Store::replay(&db.wal_records()), db.snapshot());
}
