//! Property tests for WAL-shipping replication (DESIGN.md §14).
//!
//! The core shipping invariant: because the leader's WAL order equals its
//! publication order, **every commit-stream prefix of the shipped log
//! replays to a valid, self-checking store** — there is no interleaving a
//! follower can observe that tears a committed batch or breaks the shard
//! invariants. On top of that, incremental shipping (re-sending the log
//! from any confirmed point) must be idempotent: already-applied batches
//! are deduplicated by commit sequence, and the follower converges to a
//! byte-identical replica of the leader — same snapshot, same WAL text.
//!
//! The regression tests cover follower rejoin after a *truncated* local
//! log (a torn follower shutdown): catch-up from the surviving prefix
//! must converge without a snapshot transfer, and a truncation below a
//! snapshot-bootstrapped base must be rejected rather than silently
//! inventing history.

use occam_netdb::{check_identical, AttrValue, Database, Follower, Shipment};
use occam_obs::Registry;
use occam_regex::Pattern;
use proptest::prelude::*;
use std::time::Instant;

/// One leader-side operation in a generated workload. Invalid operations
/// (duplicate inserts, updates to missing rows) are *expected*: the
/// database rejects them without committing, so they exercise the "WAL
/// only ever grows by whole committed batches" property.
#[derive(Clone, Debug)]
enum Op {
    InsertDevice(String, i64),
    SetAttr(String, i64),
    DeleteDevice(String),
    InsertLink(String, String),
}

fn arb_name() -> impl Strategy<Value = String> {
    (0u32..3, 0u32..4).prop_map(|(pod, sw)| format!("dc01.pod{pod:02}.sw{sw:02}"))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (arb_name(), 0i64..4).prop_map(|(n, v)| Op::InsertDevice(n, v)),
        2 => (arb_name(), 0i64..4).prop_map(|(n, v)| Op::SetAttr(n, v)),
        1 => arb_name().prop_map(Op::DeleteDevice),
        1 => (arb_name(), arb_name()).prop_map(|(a, z)| Op::InsertLink(a, z)),
    ]
}

/// Applies `op` to `db`, ignoring validation rejections (they commit
/// nothing and ship nothing).
fn apply(db: &Database, op: &Op) {
    match op {
        Op::InsertDevice(n, v) => {
            let _ = db.insert_device(n, vec![("A".into(), AttrValue::Int(*v))]);
        }
        Op::SetAttr(n, v) => {
            let scope = Pattern::from_glob(n).expect("literal name is a valid glob");
            let _ = db.set_attr(&scope, "A", AttrValue::Int(*v));
        }
        Op::DeleteDevice(n) => {
            let _ = db.delete_device(n);
        }
        Op::InsertLink(a, z) => {
            let _ = db.insert_link(a, z, vec![]);
        }
    }
}

/// Ships the leader's entire WAL to `f` as one `Entries` batch starting
/// from commit 0 — the follower's sequence-number dedup must skip what it
/// already holds and apply exactly the missing suffix.
fn ship_full_log(leader: &Database, f: &Follower) {
    f.ingest(Shipment::Entries {
        first_seq: 0,
        records: leader.wal_records(),
        shipped_at: Instant::now(),
    })
    .expect("full-log shipment must apply");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every prefix of the shipped log replays to a valid self-checking
    /// store, and the full log replays to the leader's exact state.
    #[test]
    fn every_shipped_prefix_is_valid(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let leader = Database::new();
        for op in &ops {
            apply(&leader, op);
        }
        let records = leader.wal_records();
        for k in 0..=records.len() {
            let snap = occam_netdb::StoreSnapshot::replay(&records[..k]);
            prop_assert!(snap.self_check().is_ok(), "prefix {k} broke invariants");
        }
        let full = occam_netdb::StoreSnapshot::replay(&records);
        prop_assert_eq!(full, leader.snapshot());
    }

    /// Incremental shipping after every single leader commit keeps the
    /// follower in lockstep, and re-shipping the whole log at any point
    /// is idempotent (sequence-number dedup).
    #[test]
    fn incremental_shipping_converges_and_dedups(ops in proptest::collection::vec(arb_op(), 1..30)) {
        let leader = Database::new();
        let f = Follower::new(0, &Registry::new());
        for op in &ops {
            apply(&leader, op);
            ship_full_log(&leader, &f);
            prop_assert_eq!(f.commits(), leader.commits());
        }
        // A gratuitous re-ship changes nothing.
        ship_full_log(&leader, &f);
        prop_assert_eq!(f.commits(), leader.commits());
        prop_assert!(check_identical(&f.snapshot(), &leader.snapshot()).is_ok());
        prop_assert_eq!(f.db().dump_wal(), leader.dump_wal());
    }

    /// A follower that loses a suffix of its log (torn shutdown) and
    /// rejoins catches back up from its surviving prefix and converges
    /// byte-identically — the follower-rejoin-after-truncation contract.
    #[test]
    fn truncated_follower_rejoins_and_converges(
        ops in proptest::collection::vec(arb_op(), 2..30),
        keep_pct in 0u64..100,
    ) {
        let leader = Database::new();
        let f = Follower::new(0, &Registry::new());
        for op in &ops {
            apply(&leader, op);
        }
        ship_full_log(&leader, &f);
        let total = f.commits();
        let keep = total * keep_pct / 100;
        f.truncate_to_commits(keep).expect("truncate surviving prefix");
        prop_assert_eq!(f.commits(), keep);
        prop_assert!(f.snapshot().self_check().is_ok(), "truncated state must be valid");
        ship_full_log(&leader, &f);
        prop_assert_eq!(f.commits(), total);
        prop_assert!(check_identical(&f.snapshot(), &leader.snapshot()).is_ok());
        prop_assert_eq!(f.db().dump_wal(), leader.dump_wal());
    }
}

/// Truncation is only meaningful for a follower that holds its history
/// from commit 0; a snapshot-bootstrapped replica has no prefix to keep
/// and must refuse instead of fabricating one.
#[test]
fn truncation_below_snapshot_base_is_rejected() {
    let origin = Database::new();
    for i in 0..5 {
        origin
            .insert_device(&format!("dc01.pod00.sw{i:02}"), vec![])
            .unwrap();
    }
    let f = Follower::new(3, &Registry::new());
    f.ingest(Shipment::Snapshot {
        snap: origin.snapshot(),
        base_commits: origin.commits(),
        shipped_at: Instant::now(),
    })
    .unwrap();
    assert_eq!(f.commits(), 5);
    assert!(
        f.truncate_to_commits(2).is_err(),
        "snapshot-bootstrapped follower cannot truncate below its base"
    );
}

/// A crash-reset follower (total state loss) re-bootstraps from a full
/// log ship and ends byte-identical — rejoin without surviving state.
#[test]
fn crash_reset_follower_rebootstraps_from_log() {
    let leader = Database::new();
    for i in 0..8 {
        leader
            .insert_device(&format!("dc01.pod01.sw{i:02}"), vec![])
            .unwrap();
    }
    let f = Follower::new(1, &Registry::new());
    ship_full_log(&leader, &f);
    assert_eq!(f.commits(), 8);
    f.crash_reset();
    assert_eq!(f.commits(), 0);
    ship_full_log(&leader, &f);
    assert_eq!(f.commits(), 8);
    check_identical(&f.snapshot(), &leader.snapshot()).unwrap();
    assert_eq!(f.db().dump_wal(), leader.dump_wal());
}
