//! Property tests for incremental view maintenance (DESIGN.md §17.3).
//!
//! The soundness contract of the view cache: an incremental refresh —
//! reusing every shard partial whose shard `Arc` is unchanged — returns
//! a report **identical** to a from-scratch recompute at the same
//! snapshot, for any commit sequence, any scope, and any assertion set.
//! The properties drive random write batches (including failed batches
//! and no-op gaps) through a live database, refreshing interleaved views
//! after every step and comparing each against [`compliance_cold`].

use occam_netdb::{attrs, compliance_cold, Assertion, Database, WriteOp};
use occam_regex::Pattern;
use proptest::prelude::*;

/// A small universe of device names so random writes collide with the
/// views' scopes meaningfully, spread across several shard prefixes.
fn arb_device() -> impl Strategy<Value = String> {
    (0u32..3, 0u32..3, 0u32..4)
        .prop_map(|(dc, pod, sw)| format!("dc{:02}.pod{:02}.sw{:02}", dc + 1, pod, sw))
}

/// Random writes against status / firmware / an untracked attribute —
/// the mix a live campaign produces.
fn arb_op() -> impl Strategy<Value = WriteOp> {
    prop_oneof![
        arb_device().prop_map(|name| WriteOp::InsertDevice {
            name,
            attrs: vec![(attrs::DEVICE_STATUS.into(), attrs::STATUS_ACTIVE.into())],
        }),
        arb_device().prop_map(|name| WriteOp::DeleteDevice { name }),
        (
            arb_device(),
            prop_oneof!["ACTIVE", "DRAINED", "UNDER_MAINTENANCE"]
        )
            .prop_map(|(name, status)| WriteOp::SetDeviceAttr {
                name,
                attr: attrs::DEVICE_STATUS.into(),
                value: status.into(),
            }),
        (arb_device(), 0i64..3).prop_map(|(name, v)| WriteOp::SetDeviceAttr {
            name,
            attr: attrs::FIRMWARE_VERSION.into(),
            value: format!("fw-{v}").into(),
        }),
        (arb_device(), 0i64..5).prop_map(|(name, v)| WriteOp::SetDeviceAttr {
            name,
            attr: "MTU".into(),
            value: v.into(),
        }),
    ]
}

/// The standing views a campaign keeps warm: a universe-wide status
/// audit, a pod-scoped status audit, and a firmware compliance check.
fn views() -> Vec<(Pattern, Vec<Assertion>)> {
    vec![
        (
            Pattern::from_glob("*").unwrap(),
            vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)],
        ),
        (
            Pattern::from_glob("dc01.pod0[01].*").unwrap(),
            vec![Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE)],
        ),
        (
            Pattern::from_glob("dc02.*").unwrap(),
            vec![
                Assertion::new(attrs::FIRMWARE_VERSION, "fw-1"),
                Assertion::new(attrs::DEVICE_STATUS, attrs::STATUS_ACTIVE),
            ],
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every commit of a random sequence, every standing view's
    /// incremental refresh equals a cold recompute at the same snapshot.
    #[test]
    fn incremental_refresh_equals_cold_recompute(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..5),
            0..25,
        ),
    ) {
        let db = Database::new();
        let views = views();
        for batch in batches {
            // Failures are fine; the view must track whatever committed.
            let _ = db.batch(&batch);
            let snap = db.snapshot();
            for (scope, assertions) in &views {
                let warm = db.views().refresh(&snap, scope, assertions);
                let cold = compliance_cold(&snap, scope, assertions);
                prop_assert!(
                    warm.same_result(&cold),
                    "view diverged: {} vs {}",
                    warm.summary(5),
                    cold.summary(5)
                );
            }
        }
    }

    /// Refreshing twice at the same snapshot is a full cache hit — zero
    /// recomputed shards — and still exact. (The Arc pointer-equality
    /// fast path cannot go stale without a commit moving the pointer.)
    #[test]
    fn unchanged_snapshot_is_a_pure_cache_hit(
        setup in proptest::collection::vec(arb_op(), 0..30),
    ) {
        let db = Database::new();
        for op in setup {
            let _ = db.batch(std::slice::from_ref(&op));
        }
        let snap = db.snapshot();
        let (scope, assertions) = &views()[0];
        let first = db.views().refresh(&snap, scope, assertions);
        let second = db.views().refresh(&snap, scope, assertions);
        prop_assert!(second.same_result(&first));
        prop_assert_eq!(second.recomputed_shards, 0);
        prop_assert_eq!(second.reused_shards, first.recomputed_shards + first.reused_shards);
        prop_assert!(second.same_result(&compliance_cold(&snap, scope, assertions)));
    }
}
