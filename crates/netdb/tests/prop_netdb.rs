//! Property tests: WAL replay equivalence and snapshot-diff laws under
//! random operation sequences.

use occam_netdb::{decode_wal, diff, encode_wal, Database, Store, WriteOp};
use occam_regex::Pattern;
use proptest::prelude::*;

/// A small universe of device names so random ops collide meaningfully.
fn arb_device() -> impl Strategy<Value = String> {
    (0u32..3, 0u32..3, 0u32..3)
        .prop_map(|(dc, pod, sw)| format!("dc{:02}.pod{:02}.sw{:02}", dc + 1, pod, sw))
}

fn arb_op() -> impl Strategy<Value = WriteOp> {
    prop_oneof![
        arb_device().prop_map(|name| WriteOp::InsertDevice {
            name,
            attrs: vec![]
        }),
        arb_device().prop_map(|name| WriteOp::DeleteDevice { name }),
        (arb_device(), 0i64..5).prop_map(|(name, v)| WriteOp::SetDeviceAttr {
            name,
            attr: "X".into(),
            value: v.into(),
        }),
        (arb_device(), arb_device()).prop_map(|(a, z)| WriteOp::InsertLink {
            a_end: a,
            z_end: z,
            attrs: vec![],
        }),
        (arb_device(), arb_device()).prop_map(|(a, z)| WriteOp::DeleteLink { a_end: a, z_end: z }),
        (arb_device(), arb_device(), 0i64..5).prop_map(|(a, z, v)| WriteOp::SetLinkAttr {
            a_end: a,
            z_end: z,
            attr: "S".into(),
            value: v.into(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying the WAL from empty always reconstructs the live state,
    /// regardless of which batches succeeded or failed.
    #[test]
    fn wal_replay_equals_snapshot(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let db = Database::new();
        for op in ops {
            // Failures are fine; they must not commit partial state.
            let _ = db.batch(std::slice::from_ref(&op));
        }
        prop_assert_eq!(Store::replay(&db.wal_records()), db.snapshot());
    }

    /// A failed batch leaves the store byte-identical.
    #[test]
    fn failed_batch_is_invisible(
        setup in proptest::collection::vec(arb_op(), 0..20),
        batch in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let db = Database::new();
        for op in setup {
            let _ = db.batch(std::slice::from_ref(&op));
        }
        let before = db.snapshot();
        let commits = db.commits();
        if db.batch(&batch).is_err() {
            prop_assert_eq!(db.snapshot(), before);
            prop_assert_eq!(db.commits(), commits);
        }
    }

    /// diff(a, a) is empty; diff(a, b) is empty iff a == b.
    #[test]
    fn diff_laws(ops_a in proptest::collection::vec(arb_op(), 0..30),
                 ops_b in proptest::collection::vec(arb_op(), 0..30)) {
        let mk = |ops: &[WriteOp]| {
            let db = Database::new();
            for op in ops {
                let _ = db.batch(std::slice::from_ref(op));
            }
            db.snapshot().materialize()
        };
        let a = mk(&ops_a);
        let b = mk(&ops_b);
        prop_assert!(diff(&a, &a).is_empty());
        prop_assert_eq!(diff(&a, &b).is_empty(), a == b);
    }

    /// WAL text serialization round-trips and recovery rebuilds the exact
    /// store, for any random workload.
    #[test]
    fn wal_persistence_round_trip(ops in proptest::collection::vec(arb_op(), 0..50)) {
        let db = Database::new();
        for op in ops {
            let _ = db.batch(std::slice::from_ref(&op));
        }
        let records = db.wal_records();
        let text = encode_wal(&records);
        prop_assert_eq!(decode_wal(&text).unwrap(), records);
        let recovered = Database::recover(&text).unwrap();
        prop_assert_eq!(recovered.snapshot(), db.snapshot());
        prop_assert_eq!(recovered.commits(), db.commits());
        // A second dump of the recovered database is byte-identical.
        prop_assert_eq!(recovered.dump_wal(), text);
    }

    /// Scoped attribute writes touch exactly the matching devices.
    #[test]
    fn scoped_set_touches_only_scope(
        devices in proptest::collection::btree_set(arb_device(), 1..12),
        dc in 1u32..4,
    ) {
        let db = Database::new();
        for d in &devices {
            db.insert_device(d, vec![]).unwrap();
        }
        let scope = Pattern::from_glob(&format!("dc{dc:02}.*")).unwrap();
        let before = db.snapshot().materialize();
        let written = db.set_attr(&scope, "MARK", 1i64.into()).unwrap();
        let after = db.snapshot().materialize();
        for d in &devices {
            let changed = before.devices[d] != after.devices[d];
            prop_assert_eq!(changed, scope.matches(d));
            prop_assert_eq!(written.contains(d), scope.matches(d));
        }
    }
}
