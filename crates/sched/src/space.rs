//! The [`LockSpace`] abstraction: what the scheduler needs from a lock
//! manager.
//!
//! The paper's simulator supports three lock granularities (datacenter,
//! device, network object) under the *same* two scheduling policies. To
//! make that comparison honest, the scheduling algorithm here is generic
//! over a `LockSpace`; the object tree implements it directly, and the
//! simulator's flat DC/device lock tables implement it too — every
//! granularity runs exactly this code.

use occam_objtree::{LockMode, LockRequest, ObjTree, ObjectId, RelCacheStats, TaskId};
use std::fmt::Debug;
use std::hash::Hash;

/// A space of lockable objects with waiters, holders, and an overlap
/// ("containment") relation.
pub trait LockSpace {
    /// Object identifier within this space.
    type Obj: Copy + Eq + Ord + Hash + Debug;

    /// Objects that currently have at least one pending request.
    fn objects_with_waiters(&self) -> Vec<Self::Obj>;

    /// Pending requests on `obj`, in arrival order.
    fn waiters(&self, obj: Self::Obj) -> &[LockRequest];

    /// Current holders of `obj`.
    fn holders(&self, obj: Self::Obj) -> &[(TaskId, LockMode)];

    /// All objects whose region overlaps `obj`'s (including `obj` itself).
    /// For the object tree this is self + ancestors + descendants.
    fn containment(&self, obj: Self::Obj) -> Vec<Self::Obj>;

    /// True if `task` could acquire `mode` on `obj` right now.
    fn can_grant(&self, obj: Self::Obj, task: TaskId, mode: LockMode) -> bool;

    /// Flips `task`'s pending request on `obj` into a held lock; returns
    /// the mode, or `None` if absent/incompatible.
    fn grant(&mut self, obj: Self::Obj, task: TaskId) -> Option<LockMode>;

    /// Objects currently granted to `task`.
    fn granted_objects_of(&self, task: TaskId) -> Vec<Self::Obj>;

    /// The waits-for edges `(waiter, holder)` implied by current lock
    /// state, used for LDSF dependency sets (Figure 5 lines 37–43).
    ///
    /// The default derives them from waiters, holders, and containment;
    /// spaces with many objects should maintain them incrementally.
    fn wait_edges(&self) -> Vec<(TaskId, TaskId)> {
        let mut edges = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for obj in self.objects_with_waiters() {
            for o in self.containment(obj) {
                for &(holder, _) in self.holders(o) {
                    for req in self.waiters(obj) {
                        if req.task != holder && seen.insert((req.task, holder)) {
                            edges.push((req.task, holder));
                        }
                    }
                }
            }
        }
        edges
    }

    /// Number of currently active scheduling objects (Figure 10b metric).
    ///
    /// The default counts objects with waiters; spaces should override with
    /// their true active-object count (held or waited-on).
    fn active_object_count(&self) -> usize {
        self.objects_with_waiters().len()
    }

    /// Relation-cache counters, if this space caches region relations.
    /// Flat spaces have no region algebra and report `None`.
    fn relate_cache_stats(&self) -> Option<RelCacheStats> {
        None
    }
}

impl LockSpace for ObjTree {
    type Obj = ObjectId;

    fn objects_with_waiters(&self) -> Vec<ObjectId> {
        // O(answer): served from the waiter index the tree maintains in
        // request_lock/grant/release, not a scan of every node.
        self.nodes_with_waiters()
    }

    fn waiters(&self, obj: ObjectId) -> &[LockRequest] {
        self.waiters_of(obj)
    }

    fn holders(&self, obj: ObjectId) -> &[(TaskId, LockMode)] {
        self.holders_of(obj)
    }

    fn containment(&self, obj: ObjectId) -> Vec<ObjectId> {
        ObjTree::containment(self, obj)
    }

    fn can_grant(&self, obj: ObjectId, task: TaskId, mode: LockMode) -> bool {
        ObjTree::can_grant(self, obj, task, mode)
    }

    fn grant(&mut self, obj: ObjectId, task: TaskId) -> Option<LockMode> {
        ObjTree::grant(self, obj, task)
    }

    fn granted_objects_of(&self, task: TaskId) -> Vec<ObjectId> {
        self.granted_objects(task).to_vec()
    }

    fn wait_edges(&self) -> Vec<(TaskId, TaskId)> {
        // The tree derives edges from its waiter index directly, skipping
        // the generic triple scan over containment sets.
        self.waits_for_edges()
    }

    fn active_object_count(&self) -> usize {
        // Every non-root node in the tree is an active object.
        self.len() - 1
    }

    fn relate_cache_stats(&self) -> Option<RelCacheStats> {
        Some(ObjTree::relate_cache_stats(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_regex::Pattern;

    #[test]
    fn objtree_implements_lockspace() {
        let mut tree = ObjTree::new();
        let pod = tree.insert_region(&Pattern::from_glob("dc01.pod01.*").unwrap())[0];
        tree.request_lock(TaskId(1), pod, LockMode::Exclusive, 0, false);
        let objs = LockSpace::objects_with_waiters(&tree);
        assert_eq!(objs, vec![pod]);
        assert_eq!(LockSpace::waiters(&tree, pod).len(), 1);
        assert!(LockSpace::can_grant(
            &tree,
            pod,
            TaskId(1),
            LockMode::Exclusive
        ));
        assert_eq!(
            LockSpace::grant(&mut tree, pod, TaskId(1)),
            Some(LockMode::Exclusive)
        );
        assert_eq!(LockSpace::granted_objects_of(&tree, TaskId(1)), vec![pod]);
        assert_eq!(LockSpace::holders(&tree, pod).len(), 1);
    }
}
