//! The SCHED algorithm (paper §5, Figure 5): FIFO and LDSF lock
//! scheduling over any [`LockSpace`].

use crate::space::LockSpace;
use occam_objtree::{LockMode, LockRequest, ObjectId, RelCacheStats, TaskId};
use occam_obs::{Counter, Histogram, Registry};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// The lock-scheduling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Grant available locks to the earliest-arrival waiter.
    Fifo,
    /// Largest-dependency-set-first (contention-aware), adapted from
    /// Tian et al. \[40\] to the hierarchical object/task graph.
    Ldsf,
}

/// One lock grant made by the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant<O> {
    /// Object granted.
    pub obj: O,
    /// Task receiving the lock.
    pub task: TaskId,
    /// Granted mode.
    pub mode: LockMode,
}

/// Scheduler instrumentation (Figure 10a/10b inputs).
#[derive(Clone, Default, Debug)]
pub struct SchedStats {
    /// Number of `sched` invocations.
    pub invocations: u64,
    /// Total locks granted.
    pub grants: u64,
    /// Total wall time inside `sched`.
    pub total_time: Duration,
    /// Wall time of the most recent invocation.
    pub last_time: Duration,
    /// Maximum single-invocation time observed.
    pub max_time: Duration,
    /// Relation-cache counters from the lock space, refreshed on every
    /// invocation. `None` for flat spaces with no region algebra.
    pub relate_cache: Option<RelCacheStats>,
}

impl SchedStats {
    /// Mean invocation time; zero when never invoked.
    pub fn mean_time(&self) -> Duration {
        if self.invocations == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.invocations as u32
        }
    }

    /// Relation-cache hit ratio of the underlying space (0 when the space
    /// has no cache or it was never probed).
    pub fn relate_cache_hit_ratio(&self) -> f64 {
        self.relate_cache.map_or(0.0, |s| s.hit_ratio())
    }
}

/// The lock scheduler. Holds policy, statistics, and reusable scratch
/// buffers; all lock state lives in the [`LockSpace`].
///
/// Generic over the object-id type of the space it schedules (defaulting
/// to the tree's [`ObjectId`]), so the grant and wait-list scratch vectors
/// can persist across invocations instead of being reallocated per call.
#[derive(Clone, Debug)]
pub struct Scheduler<O = ObjectId> {
    /// Active policy.
    pub policy: Policy,
    /// Instrumentation counters.
    pub stats: SchedStats,
    /// Grants of the most recent invocation (scratch, reused).
    grants: Vec<Grant<O>>,
    /// Runnable write-request scratch list (reused).
    wait_wt: WaitList<O>,
    /// Runnable read-request scratch list (reused).
    wait_rd: WaitList<O>,
    /// Registry-bound mirror of `stats.invocations` (`sched.invocations`).
    obs_invocations: Counter,
    /// Registry-bound mirror of `stats.grants` (`sched.grants`).
    obs_grants: Counter,
    /// Per-invocation wall time in nanoseconds (`sched.invocation_ns`).
    obs_invocation_ns: Histogram,
}

impl<O: Copy + Eq + Ord + std::hash::Hash + std::fmt::Debug> Scheduler<O> {
    /// Creates a scheduler with the given policy and a private registry.
    pub fn new(policy: Policy) -> Scheduler<O> {
        Scheduler::with_obs(policy, &Registry::new())
    }

    /// Creates a scheduler whose `sched.*` instruments (invocation and
    /// grant counters, per-invocation latency histogram) are bound to
    /// `reg` — see DESIGN.md §9 for the name contract.
    pub fn with_obs(policy: Policy, reg: &Registry) -> Scheduler<O> {
        Scheduler {
            policy,
            stats: SchedStats::default(),
            grants: Vec::new(),
            wait_wt: Vec::new(),
            wait_rd: Vec::new(),
            obs_invocations: reg.counter("sched.invocations"),
            obs_grants: reg.counter("sched.grants"),
            obs_invocation_ns: reg.histogram("sched.invocation_ns"),
        }
    }

    /// Runs one SCHED invocation (Figure 5): examines every object with
    /// runnable waiters and grants per policy. Returns the grants made, in
    /// order; the slice borrows the scheduler's scratch buffer and is valid
    /// until the next `sched` call.
    pub fn sched<S: LockSpace<Obj = O>>(&mut self, space: &mut S) -> &[Grant<O>] {
        let start = Instant::now();
        self.stats.invocations += 1;
        self.obs_invocations.inc();
        self.grants.clear();
        // LDSF: dependency sets are computed once per invocation (Figure 5
        // line 8).
        let depsets = if self.policy == Policy::Ldsf {
            Some(self.all_depsets(space))
        } else {
            None
        };
        // One pass suffices: granting a lock can only *restrict* what else
        // is grantable, never enable it, so re-scanning after grants cannot
        // produce more grants. (Within one object, the read-grant branch
        // re-validates each grant through the space.)
        {
            let mut objs = space.objects_with_waiters();
            objs.sort();
            for obj in objs {
                self.fill_wait_tasks(space, obj);
                if self.wait_wt.is_empty() && self.wait_rd.is_empty() {
                    continue;
                }
                let pick_read = match self.policy {
                    Policy::Fifo => Self::fifo_pick(&self.wait_wt, &self.wait_rd),
                    Policy::Ldsf => Self::ldsf_pick(
                        &self.wait_wt,
                        &self.wait_rd,
                        depsets.as_ref().expect("computed for LDSF"),
                    ),
                };
                match pick_read {
                    ReadOrWrite::Read => {
                        // Grant S locks to all runnable read tasks. Take the
                        // scratch list so granting can push into `grants`
                        // without aliasing it; put it back to keep capacity.
                        let wait_rd = std::mem::take(&mut self.wait_rd);
                        for &(o, req) in &wait_rd {
                            if let Some(mode) = space.grant(o, req.task) {
                                self.grants.push(Grant {
                                    obj: o,
                                    task: req.task,
                                    mode,
                                });
                            }
                        }
                        self.wait_rd = wait_rd;
                    }
                    ReadOrWrite::Write(o, task) => {
                        if let Some(mode) = space.grant(o, task) {
                            self.grants.push(Grant { obj: o, task, mode });
                        }
                    }
                }
            }
        }
        self.stats.grants += self.grants.len() as u64;
        self.obs_grants.add(self.grants.len() as u64);
        self.stats.relate_cache = space.relate_cache_stats();
        let dt = start.elapsed();
        self.stats.total_time += dt;
        self.stats.last_time = dt;
        self.stats.max_time = self.stats.max_time.max(dt);
        self.obs_invocation_ns.record_duration(dt);
        &self.grants
    }

    /// GetWaitTask (Figure 5 lines 15–22): runnable write and read requests
    /// on `obj` and every object in containment relation with it. "Runnable"
    /// means the request could be granted right now. Fills the scratch
    /// `wait_wt`/`wait_rd` lists in place.
    fn fill_wait_tasks<S: LockSpace<Obj = O>>(&mut self, space: &S, obj: O) {
        self.wait_wt.clear();
        self.wait_rd.clear();
        for o in space.containment(obj) {
            // Fast path: an exclusive holder on `o` blocks every waiter on
            // `o` itself (containment conflicts are caught by `can_grant`).
            if space
                .holders(o)
                .iter()
                .any(|&(_, m)| m == LockMode::Exclusive)
            {
                continue;
            }
            for req in space.waiters(o) {
                if !space.can_grant(o, req.task, req.mode) {
                    continue;
                }
                match req.mode {
                    LockMode::Exclusive => self.wait_wt.push((o, *req)),
                    LockMode::Shared => self.wait_rd.push((o, *req)),
                }
            }
        }
    }

    /// FIFO (Figure 5 lines 23–27): earliest arrival wins; urgent requests
    /// pre-empt ordinary ones.
    fn fifo_pick(wait_wt: &[(O, LockRequest)], wait_rd: &[(O, LockRequest)]) -> ReadOrWrite<O> {
        let best = wait_wt
            .iter()
            .map(|(o, r)| (Some(*o), r))
            .chain(wait_rd.iter().map(|(_, r)| (None, r)))
            .min_by_key(|(_, r)| (!r.urgent, r.arrival))
            .expect("caller checked non-empty");
        match best {
            (Some(o), r) => ReadOrWrite::Write(o, r.task),
            (None, _) => ReadOrWrite::Read,
        }
    }

    /// LDSF (Figure 5 lines 28–36): all read tasks aggregate their
    /// dependency sets under one virtual task; the candidate with the
    /// largest dependency set wins. Urgent requests pre-empt.
    fn ldsf_pick(
        wait_wt: &[(O, LockRequest)],
        wait_rd: &[(O, LockRequest)],
        depsets: &HashMap<TaskId, HashSet<TaskId>>,
    ) -> ReadOrWrite<O> {
        let urgent_write = wait_wt
            .iter()
            .filter(|(_, r)| r.urgent)
            .min_by_key(|(_, r)| r.arrival);
        let urgent_read = wait_rd.iter().any(|(_, r)| r.urgent);
        if let Some((o, r)) = urgent_write {
            // Tie: favour the earliest urgent request overall.
            if !urgent_read
                || wait_rd
                    .iter()
                    .filter(|(_, rr)| rr.urgent)
                    .all(|(_, rr)| r.arrival < rr.arrival)
            {
                return ReadOrWrite::Write(*o, r.task);
            }
        }
        if urgent_read {
            return ReadOrWrite::Read;
        }
        let size = |t: TaskId| depsets.get(&t).map(HashSet::len).unwrap_or(1);
        // Virtual read task: union of all read-task dependency sets.
        let mut urd: HashSet<TaskId> = HashSet::new();
        for (_, r) in wait_rd {
            match depsets.get(&r.task) {
                Some(s) => urd.extend(s.iter().copied()),
                None => {
                    urd.insert(r.task);
                }
            }
        }
        let best_write = wait_wt
            .iter()
            .max_by_key(|(_, r)| (size(r.task), std::cmp::Reverse(r.arrival)));
        match best_write {
            None => ReadOrWrite::Read,
            Some((o, r)) => {
                if !wait_rd.is_empty() && urd.len() >= size(r.task) {
                    ReadOrWrite::Read
                } else {
                    ReadOrWrite::Write(*o, r.task)
                }
            }
        }
    }

    /// FindDepSet (Figure 5 lines 37–43) for every active task: the set of
    /// tasks transitively waiting on objects the task holds (via
    /// containment), plus itself.
    fn all_depsets<S: LockSpace>(&self, space: &S) -> HashMap<TaskId, HashSet<TaskId>> {
        // Reverse-wait adjacency: holder -> waiters blocked by it.
        let mut blocked_by: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        let mut tasks: HashSet<TaskId> = HashSet::new();
        for (waiter, holder) in space.wait_edges() {
            tasks.insert(waiter);
            tasks.insert(holder);
            let v = blocked_by.entry(holder).or_default();
            if !v.contains(&waiter) {
                v.push(waiter);
            }
        }
        for obj in space.objects_with_waiters() {
            for req in space.waiters(obj) {
                tasks.insert(req.task);
            }
        }
        // Dependency set of t = {t} ∪ depsets of tasks blocked by t,
        // computed by DFS with a visited set (cycles collapse safely).
        let mut out: HashMap<TaskId, HashSet<TaskId>> = HashMap::new();
        for &t in &tasks {
            let mut set = HashSet::new();
            let mut stack = vec![t];
            while let Some(cur) = stack.pop() {
                if !set.insert(cur) {
                    continue;
                }
                if let Some(next) = blocked_by.get(&cur) {
                    stack.extend(next.iter().copied());
                }
            }
            out.insert(t, set);
        }
        out
    }
}

enum ReadOrWrite<O> {
    Read,
    Write(O, TaskId),
}

/// Runnable requests paired with the object they wait on.
type WaitList<O> = Vec<(O, LockRequest)>;

#[cfg(test)]
mod tests {
    use super::*;
    use occam_objtree::{ObjTree, ObjectId};
    use occam_regex::Pattern;

    fn pod_tree(n: u32) -> (ObjTree, Vec<ObjectId>) {
        let mut t = ObjTree::new();
        let pods = (0..n)
            .map(|p| t.insert_region(&Pattern::from_glob(&format!("dc01.pod{p:02}.*")).unwrap())[0])
            .collect();
        (t, pods)
    }

    #[test]
    fn fifo_grants_earliest_writer() {
        let (mut tree, pods) = pod_tree(1);
        let mut sched = Scheduler::new(Policy::Fifo);
        tree.request_lock(TaskId(2), pods[0], LockMode::Exclusive, 5, false);
        tree.request_lock(TaskId(1), pods[0], LockMode::Exclusive, 3, false);
        let grants = sched.sched(&mut tree);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].task, TaskId(1));
    }

    #[test]
    fn read_pick_grants_all_readers() {
        let (mut tree, pods) = pod_tree(1);
        let mut sched = Scheduler::new(Policy::Fifo);
        tree.request_lock(TaskId(1), pods[0], LockMode::Shared, 0, false);
        tree.request_lock(TaskId(2), pods[0], LockMode::Shared, 1, false);
        tree.request_lock(TaskId(3), pods[0], LockMode::Exclusive, 2, false);
        let grants = sched.sched(&mut tree);
        // FIFO picks task 1 (read) -> all readers granted; writer waits.
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.mode == LockMode::Shared));
        assert_eq!(tree.waiters_of(pods[0]).len(), 1);
    }

    #[test]
    fn disjoint_objects_granted_independently() {
        let (mut tree, pods) = pod_tree(3);
        let mut sched = Scheduler::new(Policy::Fifo);
        for (i, &p) in pods.iter().enumerate() {
            tree.request_lock(TaskId(i as u64), p, LockMode::Exclusive, i as u64, false);
        }
        let grants = sched.sched(&mut tree);
        assert_eq!(grants.len(), 3);
    }

    #[test]
    fn fixpoint_grants_cascades_in_one_invocation() {
        let (mut tree, pods) = pod_tree(2);
        let mut sched = Scheduler::new(Policy::Fifo);
        // Two independent writers on different pods, plus queued writers.
        tree.request_lock(TaskId(1), pods[0], LockMode::Exclusive, 0, false);
        tree.request_lock(TaskId(2), pods[1], LockMode::Exclusive, 1, false);
        tree.request_lock(TaskId(3), pods[0], LockMode::Exclusive, 2, false);
        let grants = sched.sched(&mut tree);
        // Task 3 stays queued behind task 1; 1 and 2 run.
        assert_eq!(grants.len(), 2);
        let granted: Vec<TaskId> = grants.iter().map(|g| g.task).collect();
        assert!(granted.contains(&TaskId(1)) && granted.contains(&TaskId(2)));
    }

    #[test]
    fn ldsf_prefers_larger_dependency_set() {
        // Paper Figure 13b scenario: t1 holds an object; t2 and t3 wait on
        // it; t4 waits on an object t3 holds. LDSF must grant t3 (depset 2)
        // over t2 (depset 1) when t1 releases, while FIFO would pick t2
        // (earlier arrival).
        let build = || {
            let mut tree = ObjTree::new();
            let a = tree.insert_region(&Pattern::from_glob("dc01.pod00.*").unwrap())[0];
            let b = tree.insert_region(&Pattern::from_glob("dc01.pod01.*").unwrap())[0];
            // t1 holds a.
            tree.request_lock(TaskId(1), a, LockMode::Exclusive, 0, false);
            tree.grant(a, TaskId(1)).unwrap();
            // t3 holds b (arrives later than t2 overall).
            tree.request_lock(TaskId(3), b, LockMode::Exclusive, 2, false);
            tree.grant(b, TaskId(3)).unwrap();
            // t2 waits on a (arrival 1), t3 waits on a (arrival 3),
            // t4 waits on b (arrival 4) -> t3's depset = {t3, t4}.
            tree.request_lock(TaskId(2), a, LockMode::Exclusive, 1, false);
            tree.request_lock(TaskId(3), a, LockMode::Exclusive, 3, false);
            tree.request_lock(TaskId(4), b, LockMode::Exclusive, 4, false);
            // t1 commits: release its locks.
            tree.release_task(TaskId(1));
            (tree, a)
        };

        let (mut tree, a) = build();
        let mut fifo = Scheduler::new(Policy::Fifo);
        let grants = fifo.sched(&mut tree);
        assert!(
            grants.iter().any(|g| g.obj == a && g.task == TaskId(2)),
            "FIFO grants the earlier-arrival task 2; got {grants:?}"
        );

        let (mut tree, a) = build();
        let mut ldsf = Scheduler::new(Policy::Ldsf);
        let grants = ldsf.sched(&mut tree);
        assert!(
            grants.iter().any(|g| g.obj == a && g.task == TaskId(3)),
            "LDSF grants task 3 with the larger dependency set; got {grants:?}"
        );
    }

    #[test]
    fn urgent_requests_preempt_policy_order() {
        let (mut tree, pods) = pod_tree(1);
        let mut sched = Scheduler::new(Policy::Fifo);
        tree.request_lock(TaskId(1), pods[0], LockMode::Exclusive, 0, false);
        tree.request_lock(TaskId(9), pods[0], LockMode::Exclusive, 5, true);
        let grants = sched.sched(&mut tree);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].task, TaskId(9), "urgent task jumps the queue");
    }

    #[test]
    fn containment_waiters_considered() {
        // A writer waits on the whole DC while a pod is locked; when the
        // pod releases, scheduling any object in the containment set must
        // find the DC waiter.
        let mut tree = ObjTree::new();
        let dc = tree.insert_region(&Pattern::from_glob("dc01.*").unwrap())[0];
        let pod = tree.insert_region(&Pattern::from_glob("dc01.pod00.*").unwrap())[0];
        tree.request_lock(TaskId(1), pod, LockMode::Exclusive, 0, false);
        tree.grant(pod, TaskId(1)).unwrap();
        tree.request_lock(TaskId(2), dc, LockMode::Exclusive, 1, false);
        let mut sched = Scheduler::new(Policy::Ldsf);
        assert!(sched.sched(&mut tree).is_empty(), "blocked while pod held");
        tree.release_task(TaskId(1));
        let grants = sched.sched(&mut tree);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].task, TaskId(2));
        assert_eq!(grants[0].obj, dc);
    }

    #[test]
    fn stats_accumulate() {
        let (mut tree, pods) = pod_tree(1);
        let mut sched = Scheduler::new(Policy::Fifo);
        tree.request_lock(TaskId(1), pods[0], LockMode::Exclusive, 0, false);
        sched.sched(&mut tree);
        sched.sched(&mut tree);
        assert_eq!(sched.stats.invocations, 2);
        assert_eq!(sched.stats.grants, 1);
        assert!(sched.stats.mean_time() <= sched.stats.max_time);
    }
}
