//! # occam-sched
//!
//! Contention-aware lock scheduling for Occam (paper §5, Figure 5).
//!
//! The scheduler decides which pending lock request to grant whenever lock
//! state changes. Two policies are provided:
//!
//! - **FIFO** — earliest-arrival first, the default in most databases.
//! - **LDSF** — largest-dependency-set first: the task blocking the most
//!   other tasks (directly, transitively, or through containment relations
//!   between hierarchical regions) runs first; waiting read tasks aggregate
//!   under a virtual task so granting shared locks unblocks all of them.
//!
//! The algorithm is generic over a [`LockSpace`], so the object tree, the
//! simulator's per-device lock table, and its per-datacenter lock table all
//! run the *same* scheduling code — that is what makes the paper's
//! granularity comparison (Figures 8–11) an apples-to-apples experiment.
//!
//! Urgent tasks (outage recovery) pre-empt both policies, per the paper's
//! §5 closing remark.

pub mod scheduler;
pub mod space;

pub use scheduler::{Grant, Policy, SchedStats, Scheduler};
pub use space::LockSpace;
