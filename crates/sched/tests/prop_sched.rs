//! Property tests for the scheduler: safety and policy invariants under
//! random request/release schedules on the object tree.

use occam_objtree::{LockMode, ObjTree, ObjectId, TaskId};
use occam_regex::Pattern;
use occam_sched::{LockSpace, Policy, Scheduler};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Request {
        task: u64,
        region: usize,
        write: bool,
        urgent: bool,
    },
    Release {
        task: u64,
    },
}

fn regions() -> Vec<Pattern> {
    let mut v = vec![Pattern::from_glob("dc01.*").unwrap()];
    for p in 0..4 {
        v.push(Pattern::from_glob(&format!("dc01.pod0{p}.*")).unwrap());
    }
    v.push(Pattern::from_glob("dc02.*").unwrap());
    v
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u64..6, 0usize..6, any::<bool>(), prop::bool::weighted(0.1))
                .prop_map(|(task, region, write, urgent)| Op::Request { task, region, write, urgent }),
            1 => (0u64..6).prop_map(|task| Op::Release { task }),
        ],
        1..40,
    )
}

fn holders_compatible(tree: &ObjTree) -> Result<(), String> {
    let ids: Vec<ObjectId> = tree.node_ids().collect();
    for &a in &ids {
        let ca = tree.containment(a);
        for &(t1, m1) in tree.holders_of(a) {
            for &o in &ca {
                for &(t2, m2) in tree.holders_of(o) {
                    if t1 != t2 && !m1.compatible(m2) {
                        return Err(format!("incompatible holders {t1:?}/{t2:?}"));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every scheduler invocation: no incompatible locks coexist on
    /// overlapping regions, and no runnable waiter is left ungranted
    /// (the scheduler is work-conserving at its decision points).
    #[test]
    fn sched_is_safe_and_work_conserving(ops in arb_ops(), ldsf in any::<bool>()) {
        let regions = regions();
        let mut tree = ObjTree::new();
        let mut sched = Scheduler::new(if ldsf { Policy::Ldsf } else { Policy::Fifo });
        let mut arrival = 0u64;
        // Map task -> covering objects (kept live until release).
        let mut live: std::collections::HashMap<TaskId, Vec<ObjectId>> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Request { task, region, write, urgent } => {
                    let t = TaskId(task);
                    if live.contains_key(&t) {
                        continue; // one region per task in this model
                    }
                    let cover = tree.insert_region(&regions[region]);
                    let mode = if write { LockMode::Exclusive } else { LockMode::Shared };
                    for &o in &cover {
                        tree.request_lock(t, o, mode, arrival, urgent);
                    }
                    arrival += 1;
                    live.insert(t, cover);
                }
                Op::Release { task } => {
                    let t = TaskId(task);
                    if let Some(cover) = live.remove(&t) {
                        tree.release_task(t);
                        for o in cover {
                            tree.release_ref(o);
                        }
                    }
                }
            }
            sched.sched(&mut tree);
            if let Err(e) = holders_compatible(&tree) {
                return Err(TestCaseError::fail(e));
            }
            // Work conservation: after sched, no waiter that could be
            // granted remains waiting... except where the policy chose a
            // different candidate for the same object this round. We check
            // the strong version object-by-object: an object with waiters
            // and NO holders anywhere in its containment set must not
            // exist after sched (something was grantable there).
            for obj in LockSpace::objects_with_waiters(&tree) {
                let any_holder = tree
                    .containment(obj)
                    .iter()
                    .any(|&o| !tree.holders_of(o).is_empty());
                prop_assert!(
                    any_holder,
                    "object with waiters and an entirely free containment set after sched"
                );
            }
            prop_assert!(tree.validate().is_ok());
        }
        // Release everything: the tree must drain and every waiter must be
        // eventually grantable.
        let tasks: Vec<TaskId> = live.keys().copied().collect();
        for t in tasks {
            let cover = live.remove(&t).unwrap();
            tree.release_task(t);
            for o in cover {
                tree.release_ref(o);
            }
            sched.sched(&mut tree);
        }
        prop_assert!(tree.is_empty(), "tree drained");
    }

    /// FIFO never grants an exclusive lock over an older *grantable*
    /// exclusive request on the same object.
    #[test]
    fn fifo_respects_arrival_order_per_object(n_tasks in 2u64..6) {
        let mut tree = ObjTree::new();
        let region = Pattern::from_glob("dc01.pod00.*").unwrap();
        let obj = tree.insert_region(&region)[0];
        for t in 0..n_tasks {
            tree.request_lock(TaskId(t), obj, LockMode::Exclusive, t, false);
        }
        let mut sched = Scheduler::new(Policy::Fifo);
        let mut granted_order = Vec::new();
        for _ in 0..n_tasks {
            let grants = sched.sched(&mut tree);
            for g in grants {
                granted_order.push(g.task);
                tree.release_task(g.task);
            }
        }
        let expected: Vec<TaskId> = (0..n_tasks).map(TaskId).collect();
        prop_assert_eq!(granted_order, expected);
    }

    /// Urgent requests always win over non-urgent ones at the same object,
    /// under both policies.
    #[test]
    fn urgent_wins(policy_ldsf in any::<bool>(), normal_first in any::<bool>()) {
        let mut tree = ObjTree::new();
        let obj = tree.insert_region(&Pattern::from_glob("dc01.pod00.*").unwrap())[0];
        // A holder keeps the object busy while both requests queue.
        tree.request_lock(TaskId(0), obj, LockMode::Exclusive, 0, false);
        tree.grant(obj, TaskId(0)).unwrap();
        if normal_first {
            tree.request_lock(TaskId(1), obj, LockMode::Exclusive, 1, false);
            tree.request_lock(TaskId(2), obj, LockMode::Exclusive, 2, true);
        } else {
            tree.request_lock(TaskId(2), obj, LockMode::Exclusive, 1, true);
            tree.request_lock(TaskId(1), obj, LockMode::Exclusive, 2, false);
        }
        tree.release_task(TaskId(0));
        let mut sched = Scheduler::new(if policy_ldsf { Policy::Ldsf } else { Policy::Fifo });
        let grants = sched.sched(&mut tree);
        prop_assert_eq!(grants.len(), 1);
        prop_assert_eq!(grants[0].task, TaskId(2), "urgent task granted first");
    }
}
