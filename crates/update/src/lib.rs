//! # occam-update
//!
//! Consistent-update synthesis with mid-update invariant verification
//! (DESIGN.md §15).
//!
//! Occam's transactional runtime guarantees that a management task is
//! fully applied or fully rolled back — but it says nothing about the
//! states the network transits *through* while a correct task runs. A
//! hand-written drain/push ordering can blackhole or loop traffic at an
//! intermediate step even when every lock and rollback fires perfectly.
//! Following "Toward Synthesis of Network Updates" (PAPERS.md), this
//! crate synthesizes the ordering instead of trusting the operator:
//!
//! 1. **Diff** ([`diff()`]): two netdb [`StoreSnapshot`]s (current and
//!    target config) are compared into per-device [`UpdateOp`]s.
//! 2. **Invariants** ([`invariant`]): a [`Checker`] model-checks a
//!    network state against the emunet forwarding model — ECMP shortest
//!    paths over the shared [`Topology`] — for loop freedom,
//!    no-blackhole, and regex-scoped waypoint traversal of a set of
//!    [`TrafficClass`]es.
//! 3. **Synthesis** ([`plan`]): a [`Synthesizer`] orders the operations
//!    into maximal parallel [`Wave`]s by counterexample-guided search:
//!    greedily batch, model-check the mid-wave state, and on a violation
//!    insert a drain/undrain barrier or split the wave, falling back to
//!    per-device ordering. Termination is by strict decrease of wave
//!    size (DESIGN.md §15.3).
//! 4. **Execution** ([`exec`]): the plan runs wave-by-wave through the
//!    ordinary [`TaskBuilder`](occam_core::TaskBuilder) machinery — one
//!    strict-2PL task per wave — so a mid-plan failure rolls back to the
//!    nearest wave boundary (a state the checker proved safe), never an
//!    arbitrary prefix.
//!
//! ```
//! use occam_netdb::{attrs, wal::WalRecord, StoreSnapshot};
//! use occam_topology::FatTree;
//! use occam_update::{diff, Synthesizer};
//!
//! let ft = FatTree::build(1, 4).unwrap();
//! let mut records = Vec::new();
//! for (_, d) in ft.topo.devices() {
//!     records.push(WalRecord::InsertDevice {
//!         name: d.name.clone(),
//!         attrs: vec![(attrs::FIRMWARE_VERSION.into(), "fw-1.0.0".into())],
//!     });
//! }
//! let old = StoreSnapshot::replay(&records);
//! for (_, d) in ft.topo.devices() {
//!     records.push(WalRecord::SetDeviceAttr {
//!         name: d.name.clone(),
//!         attr: attrs::FIRMWARE_VERSION.into(),
//!         value: "fw-2.0.0".into(),
//!     });
//! }
//! let new = StoreSnapshot::replay(&records);
//! let ops = diff(&old, &new);
//! assert_eq!(ops.len(), ft.topo.devices().count());
//! // No traffic classes declared: everything fits in one barriered wave.
//! let plan = Synthesizer::new(&ft.topo, &[]).synthesize(&ops).unwrap();
//! assert_eq!(plan.waves.len(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod exec;
pub mod invariant;
pub mod obs;
pub mod plan;

pub use diff::{diff, UpdateOp};
pub use exec::{execute_plan, wave_steps, ExecOptions, ExecReport, StepKind, WavePoint};
pub use invariant::{Checker, ModelState, TrafficClass, Violation, ViolationKind};
pub use obs::UpdateObs;
pub use plan::{Plan, PlanError, SynthStats, Synthesizer, Wave};

// Re-exported so callers of the diff/planner APIs need not depend on the
// source crates directly.
pub use occam_netdb::StoreSnapshot;
pub use occam_topology::Topology;
