//! The wave synthesizer: counterexample-guided search for a maximally
//! parallel, invariant-preserving update ordering.
//!
//! A [`Plan`] is a sequence of [`Wave`]s; each wave is a set of
//! device-disjoint operations that execute concurrently inside one
//! strict-2PL task. Waves whose operations push configuration carry a
//! **barrier**: the wave drains its devices, applies, and undrains, so
//! the mid-wave state routed around them is exactly what the
//! [`Checker`] verified.
//!
//! ## The search
//!
//! Operations are grouped by push signature (database-only first, then
//! one group per target firmware — a wave pushes one image, like a real
//! rollout ring), seeded-shuffled, and then batched greedily:
//!
//! 1. propose the whole remaining group as one wave;
//! 2. model-check the mid-wave state. Blackhole counterexamples mean the
//!    wave pushes while undrained → **insert a drain/undrain barrier**
//!    and re-check. Remaining counterexamples (no-path, waypoint)
//!    mean the wave drains too much at once → **split** the wave in two
//!    (even/odd positions of the shuffled order, so structurally
//!    adjacent devices — two aggs of one pod — separate quickly) and
//!    recurse on each half;
//! 3. model-check the post-wave boundary (the wave's admin-status
//!    targets applied), then commit it and advance the model.
//!
//! **Termination**: every recursion step strictly decreases wave size;
//! a single-operation wave either verifies or is reported
//! [`PlanError::Infeasible`] — the per-device fallback is the leaf of
//! the same recursion, so the search never loops (DESIGN.md §15.3).
//! Synthesis is deterministic per `(input, seed)`: the only randomness
//! is the seeded shuffle.

use crate::diff::UpdateOp;
use crate::invariant::{Checker, ModelState, TrafficClass, Violation, ViolationKind};
use crate::obs::UpdateObs;
use occam_netdb::attrs;
use occam_topology::{DeviceId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One parallel batch of device-disjoint operations.
#[derive(Clone, PartialEq, Debug)]
pub struct Wave {
    /// The operations, in deterministic (synthesis) order.
    pub ops: Vec<UpdateOp>,
    /// Whether the wave drains its devices for the duration of the
    /// apply (required by any configuration push).
    pub barrier: bool,
}

impl Wave {
    /// The devices this wave touches, in op order.
    pub fn devices(&self) -> Vec<&str> {
        self.ops.iter().map(|o| o.device.as_str()).collect()
    }

    /// The single firmware image this wave pushes, if any. Synthesis
    /// groups by target image, so a wave never pushes two.
    pub fn firmware(&self) -> Option<&str> {
        self.ops.iter().find_map(|o| o.firmware.as_deref())
    }

    /// Whether any operation in the wave needs a configuration push.
    pub fn needs_push(&self) -> bool {
        self.ops.iter().any(UpdateOp::needs_push)
    }
}

/// A synthesized update plan.
#[derive(Clone, PartialEq, Debug)]
pub struct Plan {
    /// The waves, in execution order.
    pub waves: Vec<Wave>,
    /// The seed the plan was synthesized under.
    pub seed: u64,
}

impl Plan {
    /// Total operations across all waves.
    pub fn num_ops(&self) -> usize {
        self.waves.iter().map(|w| w.ops.len()).sum()
    }

    /// Serial length — the number of waves (the quantity synthesis
    /// minimizes; naive per-device ordering has one wave per op).
    pub fn serial_len(&self) -> usize {
        self.waves.len()
    }
}

/// Counters describing one synthesis run. Deterministic per
/// `(input, seed)` — no wall-clock values (those go to the `update.*`
/// histograms instead).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SynthStats {
    /// Operations planned.
    pub ops: usize,
    /// Waves in the final plan.
    pub waves: usize,
    /// Model-check invocations.
    pub checks: u64,
    /// Wave splits forced by counterexamples.
    pub splits: u64,
    /// Drain/undrain barriers inserted.
    pub barriers: u64,
    /// Counterexample violations observed during the search.
    pub counterexamples: u64,
}

/// Synthesis failure: some single operation cannot be applied without
/// breaking an invariant, so no ordering exists.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanError {
    /// The per-device fallback itself violates an invariant.
    Infeasible {
        /// The unplannable device.
        device: String,
        /// The violation a single-device wave still triggers.
        violation: Violation,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Infeasible { device, violation } => write!(
                f,
                "no consistent ordering exists: updating {device} alone still violates {violation}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The planner: a checker plus search configuration.
pub struct Synthesizer<'a> {
    topo: &'a Topology,
    classes: &'a [TrafficClass],
    seed: u64,
    base: ModelState,
    obs: Option<UpdateObs>,
}

impl<'a> Synthesizer<'a> {
    /// A synthesizer over `topo` preserving `classes`, with seed 0 and
    /// an empty base state (nothing pre-drained).
    pub fn new(topo: &'a Topology, classes: &'a [TrafficClass]) -> Synthesizer<'a> {
        Synthesizer {
            topo,
            classes,
            seed: 0,
            base: ModelState::default(),
            obs: None,
        }
    }

    /// Sets the shuffle seed. Plans are deterministic per seed.
    pub fn with_seed(mut self, seed: u64) -> Synthesizer<'a> {
        self.seed = seed;
        self
    }

    /// Sets the starting model state (devices already drained in the
    /// current config).
    pub fn with_base(mut self, base: ModelState) -> Synthesizer<'a> {
        self.base = base;
        self
    }

    /// Records synthesis counters and timings into `obs`.
    pub fn with_obs(mut self, obs: &UpdateObs) -> Synthesizer<'a> {
        self.obs = Some(obs.clone());
        self
    }

    /// Synthesizes a plan for `ops`.
    pub fn synthesize(&self, ops: &[UpdateOp]) -> Result<Plan, PlanError> {
        self.synthesize_with_stats(ops).map(|(p, _)| p)
    }

    /// Synthesizes a plan and reports the search counters.
    pub fn synthesize_with_stats(&self, ops: &[UpdateOp]) -> Result<(Plan, SynthStats), PlanError> {
        let started = std::time::Instant::now();
        let checker = Checker::new(self.topo, self.classes);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut stats = SynthStats {
            ops: ops.len(),
            ..SynthStats::default()
        };
        let mut model = self.base.clone();
        let mut waves = Vec::new();

        for group in group_by_signature(ops) {
            let mut order = group;
            shuffle(&mut order, &mut rng);
            let mut pending = vec![order];
            while let Some(batch) = pending.pop() {
                match self.try_wave(&checker, &mut model, &batch, &mut stats)? {
                    Some(wave) => waves.push(wave),
                    None => {
                        stats.splits += 1;
                        let (even, odd) = split_interleaved(batch);
                        // Stack is LIFO: push the second half first so
                        // the first half executes first.
                        pending.push(odd);
                        pending.push(even);
                    }
                }
            }
        }

        stats.waves = waves.len();
        if let Some(obs) = &self.obs {
            obs.synth_plans.inc();
            obs.diff_ops.add(stats.ops as u64);
            obs.synth_waves.add(stats.waves as u64);
            obs.synth_checks.add(stats.checks);
            obs.synth_splits.add(stats.splits);
            obs.synth_barriers.add(stats.barriers);
            obs.synth_counterexamples.add(stats.counterexamples);
            obs.synth_ns.record_duration(started.elapsed());
        }
        Ok((
            Plan {
                waves,
                seed: self.seed,
            },
            stats,
        ))
    }

    /// Tries `batch` as one wave against the current model. On success
    /// advances the model past the wave's boundary and returns it; on a
    /// splittable counterexample returns `None`; on a single-op
    /// counterexample reports infeasibility.
    fn try_wave(
        &self,
        checker: &Checker<'_>,
        model: &mut ModelState,
        batch: &[UpdateOp],
        stats: &mut SynthStats,
    ) -> Result<Option<Wave>, PlanError> {
        let devices: Vec<Option<DeviceId>> = batch
            .iter()
            .map(|o| self.topo.device_by_name(&o.device))
            .collect();
        let pushes = batch.iter().any(UpdateOp::needs_push);

        // Mid-wave state, first without a barrier: pushed devices are
        // rewriting their config while still in the forwarding plane.
        let mut mid = model.clone();
        for (op, id) in batch.iter().zip(&devices) {
            if let (true, Some(id)) = (op.needs_push(), id) {
                mid.in_flux.insert(*id);
            }
        }
        stats.checks += 1;
        let mut violations = checker.check(&mid);
        stats.counterexamples += violations.len() as u64;
        let mut barrier = false;
        if pushes
            && violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::Blackhole { .. }))
        {
            // The counterexample says the wave black-holes: insert the
            // drain/undrain barrier and re-check with the wave routed
            // around.
            barrier = true;
            stats.barriers += 1;
            for id in devices.iter().flatten() {
                mid.drained.insert(*id);
            }
            stats.checks += 1;
            violations = checker.check(&mid);
            stats.counterexamples += violations.len() as u64;
        }

        if violations.is_empty() {
            // The mid-wave state is safe; now the post-wave boundary.
            let mut boundary = model.clone();
            apply_boundary(&mut boundary, batch, &devices);
            stats.checks += 1;
            let boundary_violations = checker.check(&boundary);
            stats.counterexamples += boundary_violations.len() as u64;
            match boundary_violations.into_iter().next() {
                None => {
                    *model = boundary;
                    return Ok(Some(Wave {
                        ops: batch.to_vec(),
                        barrier: barrier || pushes,
                    }));
                }
                Some(v) if batch.len() == 1 => {
                    return Err(PlanError::Infeasible {
                        device: batch[0].device.clone(),
                        violation: v,
                    });
                }
                Some(_) => return Ok(None),
            }
        }
        if batch.len() == 1 {
            return Err(PlanError::Infeasible {
                device: batch[0].device.clone(),
                violation: violations.remove(0),
            });
        }
        Ok(None)
    }

    /// The naive per-device fallback ordering: one wave per operation,
    /// barriered when the op pushes. This is the sequential baseline the
    /// bench compares against (and the leaf shape the search degrades to
    /// under maximally hostile invariants).
    pub fn naive(ops: &[UpdateOp]) -> Plan {
        Plan {
            waves: ops
                .iter()
                .map(|o| Wave {
                    ops: vec![o.clone()],
                    barrier: o.needs_push(),
                })
                .collect(),
            seed: 0,
        }
    }

    /// Re-checks every intermediate state a plan publishes — each wave's
    /// mid-wave state and each post-wave boundary — and returns all
    /// violations. A plan this synthesizer produced verifies clean; the
    /// bench and the chaos phase use this as the independent judge.
    pub fn verify(&self, plan: &Plan) -> Vec<Violation> {
        let started = std::time::Instant::now();
        let checker = Checker::new(self.topo, self.classes);
        let mut model = self.base.clone();
        let mut all = Vec::new();
        for wave in &plan.waves {
            let devices: Vec<Option<DeviceId>> = wave
                .ops
                .iter()
                .map(|o| self.topo.device_by_name(&o.device))
                .collect();
            let mut mid = model.clone();
            for (op, id) in wave.ops.iter().zip(&devices) {
                if let Some(id) = id {
                    if wave.barrier {
                        mid.drained.insert(*id);
                    }
                    if op.needs_push() {
                        mid.in_flux.insert(*id);
                    }
                }
            }
            all.extend(checker.check(&mid));
            apply_boundary(&mut model, &wave.ops, &devices);
            all.extend(checker.check(&model));
        }
        if let Some(obs) = &self.obs {
            obs.verify_ns.record_duration(started.elapsed());
            obs.verify_violations.add(all.len() as u64);
        }
        all
    }
}

/// Advances the model past a committed wave: devices end at their
/// explicit admin-status target, or active when the op sets none (the
/// executor restores `STATUS_ACTIVE` after undraining).
fn apply_boundary(model: &mut ModelState, ops: &[UpdateOp], devices: &[Option<DeviceId>]) {
    for (op, id) in ops.iter().zip(devices) {
        let Some(id) = id else { continue };
        model.in_flux.remove(id);
        let parked = matches!(
            op.target_status().and_then(|v| v.as_str()),
            Some(attrs::STATUS_DRAINED) | Some(attrs::STATUS_UNDER_MAINTENANCE)
        );
        if parked {
            model.drained.insert(*id);
        } else {
            model.drained.remove(id);
        }
    }
}

/// Groups ops by push signature: database-only ops first, then one group
/// per target firmware (BTreeMap keeps group order deterministic).
fn group_by_signature(ops: &[UpdateOp]) -> Vec<Vec<UpdateOp>> {
    let mut db_only = Vec::new();
    let mut pushed: BTreeMap<String, Vec<UpdateOp>> = BTreeMap::new();
    for op in ops {
        if op.needs_push() {
            pushed
                .entry(op.firmware.clone().unwrap_or_default())
                .or_default()
                .push(op.clone());
        } else {
            db_only.push(op.clone());
        }
    }
    let mut groups = Vec::new();
    if !db_only.is_empty() {
        groups.push(db_only);
    }
    groups.extend(pushed.into_values());
    groups
}

/// Seeded Fisher–Yates (the rand shim has no `shuffle`).
fn shuffle(ops: &mut [UpdateOp], rng: &mut StdRng) {
    for i in (1..ops.len()).rev() {
        let j = rng.random_range(0usize..=i);
        ops.swap(i, j);
    }
}

/// Splits a batch into its even- and odd-indexed halves. On a shuffled
/// order this separates structurally adjacent devices (the two aggs of
/// one pod) with high probability per round.
fn split_interleaved(batch: Vec<UpdateOp>) -> (Vec<UpdateOp>, Vec<UpdateOp>) {
    let mut even = Vec::with_capacity(batch.len().div_ceil(2));
    let mut odd = Vec::with_capacity(batch.len() / 2);
    for (i, op) in batch.into_iter().enumerate() {
        if i % 2 == 0 {
            even.push(op);
        } else {
            odd.push(op);
        }
    }
    (even, odd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::TrafficClass;
    use occam_netdb::AttrValue;
    use occam_topology::FatTree;
    use std::collections::HashSet;

    fn push_op(device: &str, fw: &str) -> UpdateOp {
        UpdateOp {
            device: device.into(),
            sets: vec![(attrs::FIRMWARE_VERSION.into(), AttrValue::from(fw))],
            firmware: Some(fw.into()),
        }
    }

    fn db_op(device: &str) -> UpdateOp {
        UpdateOp {
            device: device.into(),
            sets: vec![("SNMP_COMMUNITY".into(), AttrValue::from("v2"))],
            firmware: None,
        }
    }

    fn host_classes(ft: &FatTree) -> Vec<TrafficClass> {
        let mut cls = Vec::new();
        for p in 0..ft.k as usize {
            for t in 0..2usize {
                cls.push(TrafficClass::pair(
                    format!("c{p}-{t}"),
                    ft.hosts[p][t][0],
                    ft.hosts[(p + 1) % ft.k as usize][t][1],
                    (p * 2 + t) as u64,
                ));
            }
        }
        cls
    }

    /// Fabric upgrade: pushes to every agg and core. The planner must
    /// keep at least one agg per pod and one usable core path up at all
    /// times, and still beat per-device ordering by ≥2×.
    #[test]
    fn fabric_upgrade_parallelizes_and_verifies() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let cls = host_classes(&ft);
        let mut ops = Vec::new();
        for pod in &ft.aggs {
            for &a in pod {
                ops.push(push_op(&ft.topo.device(a).name, "fw-2"));
            }
        }
        for &c in &ft.cores {
            ops.push(push_op(&ft.topo.device(c).name, "fw-2"));
        }
        let synth = Synthesizer::new(&ft.topo, &cls).with_seed(42);
        let (plan, stats) = synth.synthesize_with_stats(&ops).expect("plannable");
        assert_eq!(plan.num_ops(), ops.len());
        assert!(synth.verify(&plan).is_empty(), "synthesized plan verifies");
        assert!(
            plan.serial_len() * 2 <= Synthesizer::naive(&ops).serial_len(),
            "{} waves for {} ops is not ≥2× parallel",
            plan.serial_len(),
            ops.len()
        );
        assert!(stats.checks > 0 && stats.barriers > 0);
        // Every wave pushes, so every wave is barriered.
        assert!(plan.waves.iter().all(|w| w.barrier));
    }

    #[test]
    fn db_only_ops_fit_one_unbarriered_wave() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let cls = host_classes(&ft);
        let ops: Vec<UpdateOp> = ft
            .tors
            .iter()
            .flatten()
            .map(|&t| db_op(&ft.topo.device(t).name))
            .collect();
        let plan = Synthesizer::new(&ft.topo, &cls)
            .synthesize(&ops)
            .expect("plannable");
        assert_eq!(plan.serial_len(), 1);
        assert!(!plan.waves[0].barrier);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let cls = host_classes(&ft);
        let ops: Vec<UpdateOp> = ft
            .aggs
            .iter()
            .flatten()
            .chain(ft.cores.iter())
            .map(|&d| push_op(&ft.topo.device(d).name, "fw-2"))
            .collect();
        let a = Synthesizer::new(&ft.topo, &cls)
            .with_seed(7)
            .synthesize(&ops)
            .expect("plan");
        let b = Synthesizer::new(&ft.topo, &cls)
            .with_seed(7)
            .synthesize(&ops)
            .expect("plan");
        assert_eq!(a, b);
    }

    #[test]
    fn two_firmware_targets_never_share_a_wave() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let mut ops = Vec::new();
        for (i, pod) in ft.aggs.iter().enumerate() {
            let fw = if i % 2 == 0 { "fw-a" } else { "fw-b" };
            for &a in pod {
                ops.push(push_op(&ft.topo.device(a).name, fw));
            }
        }
        let cls = host_classes(&ft);
        let plan = Synthesizer::new(&ft.topo, &cls)
            .synthesize(&ops)
            .expect("plan");
        for wave in &plan.waves {
            let images: HashSet<_> = wave.ops.iter().filter_map(|o| o.firmware.clone()).collect();
            assert!(images.len() <= 1, "wave mixes firmware images: {images:?}");
        }
    }

    /// A class whose only waypoints are being upgraded: the planner must
    /// split the waypoint devices across waves.
    #[test]
    fn waypoints_are_kept_alive_across_waves() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let wp = occam_regex::Pattern::new("dc01\\.pod00\\.agg0[01]").expect("regex");
        let mut cls = host_classes(&ft);
        cls.push(TrafficClass {
            name: "inspected".into(),
            src: ft.hosts[1][0][0],
            dst: ft.hosts[2][0][0],
            hash: 99,
            waypoint: Some(wp),
        });
        let ops: Vec<UpdateOp> = ft.aggs[0]
            .iter()
            .map(|&a| push_op(&ft.topo.device(a).name, "fw-2"))
            .collect();
        let synth = Synthesizer::new(&ft.topo, &cls).with_seed(3);
        let plan = synth.synthesize(&ops).expect("plan");
        assert!(plan.serial_len() >= 2, "both inspection aggs in one wave");
        assert!(synth.verify(&plan).is_empty());
    }

    /// An isolated device (every path to a class endpoint through it):
    /// no ordering exists and the planner says so instead of looping.
    #[test]
    fn infeasible_update_is_reported_not_looped() {
        let ft = FatTree::build(1, 4).expect("k=4");
        // A class terminating at a ToR, then push to that very ToR: the
        // endpoint is drained by its own barrier in every ordering.
        let cls = vec![TrafficClass::pair(
            "to-tor",
            ft.hosts[0][0][0],
            ft.tors[1][0],
            5,
        )];
        let ops = vec![push_op(&ft.topo.device(ft.tors[1][0]).name, "fw-2")];
        let err = Synthesizer::new(&ft.topo, &cls)
            .synthesize(&ops)
            .expect_err("no consistent ordering exists");
        let PlanError::Infeasible { device, .. } = err;
        assert_eq!(device, ft.topo.device(ft.tors[1][0]).name);
    }

    #[test]
    fn ops_on_devices_outside_the_topology_are_unconstrained() {
        let ft = FatTree::build(1, 4).expect("k=4");
        let cls = host_classes(&ft);
        let ops = vec![
            push_op("dc09.pod00.tor00", "fw-2"),
            db_op("dc09.pod00.tor01"),
        ];
        let plan = Synthesizer::new(&ft.topo, &cls)
            .synthesize(&ops)
            .expect("plan");
        assert_eq!(plan.num_ops(), 2);
    }
}
