//! The invariant engine: model checking intermediate network states
//! against the emunet forwarding model.
//!
//! The model is the same one `occam_emunet::EmuNet` forwards with: ECMP
//! shortest paths over the shared [`Topology`], where a link is usable
//! iff neither endpoint is drained, and a switch that is reconfiguring
//! while undrained black-holes everything through it
//! (`SwitchState::black_holes`). A [`ModelState`] abstracts one
//! intermediate moment of an update — which devices are drained, which
//! are mid-push — and [`Checker::check`] decides whether every declared
//! [`TrafficClass`] still satisfies:
//!
//! - **loop freedom** — the forwarding walk never traverses the same
//!   directed edge twice;
//! - **no-blackhole** — a path exists and no device on it is mid-push
//!   while undrained;
//! - **waypoint traversal** — classes scoped by a regex must traverse at
//!   least one device matching it (service-chaining through inspection
//!   middleboxes, paper case study #2).
//!
//! Endpoints are strict: a class whose source or destination device is
//! itself drained counts as a no-blackhole violation. Plan updates that
//! must take an access switch down should scope their classes (or move
//! the access change to a database-only operation) — see DESIGN.md §15.2.

use occam_regex::Pattern;
use occam_topology::{DeviceId, LinkId, Topology};
use std::collections::HashSet;

/// One unit of traffic the update must never break: a source/destination
/// pair with a stable ECMP hash, optionally constrained to traverse a
/// waypoint.
#[derive(Clone, Debug)]
pub struct TrafficClass {
    /// Human-readable class name, used in violation reports.
    pub name: String,
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// ECMP flow hash: keeps the checked path stable per class while
    /// different classes spread across the fabric.
    pub hash: u64,
    /// When set, the class's path must traverse a device whose name
    /// matches this pattern (regex-scoped waypointing).
    pub waypoint: Option<Pattern>,
}

impl TrafficClass {
    /// A plain reachability class with no waypoint constraint.
    pub fn pair(name: impl Into<String>, src: DeviceId, dst: DeviceId, hash: u64) -> TrafficClass {
        TrafficClass {
            name: name.into(),
            src,
            dst,
            hash,
            waypoint: None,
        }
    }
}

/// One intermediate moment of an update, abstracted to the two facts the
/// forwarding model cares about.
#[derive(Clone, Default, Debug)]
pub struct ModelState {
    /// Devices the control plane routes around (admin-drained, or
    /// drained by the wave barrier currently executing).
    pub drained: HashSet<DeviceId>,
    /// Devices whose configuration is being rewritten right now. A
    /// device that is `in_flux` but not `drained` black-holes traffic —
    /// exactly `SwitchState::black_holes()`.
    pub in_flux: HashSet<DeviceId>,
}

impl ModelState {
    /// True when `id` may carry traffic at all.
    fn usable_device(&self, id: DeviceId) -> bool {
        !self.drained.contains(&id)
    }

    /// True when `id` drops the traffic it carries.
    fn black_holes(&self, id: DeviceId) -> bool {
        self.in_flux.contains(&id) && !self.drained.contains(&id)
    }
}

/// Why a class fails in a given state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// No usable path exists (or an endpoint is drained).
    NoPath,
    /// The path crosses a device that is reconfiguring while undrained.
    Blackhole {
        /// The black-holing device's name.
        device: String,
    },
    /// The forwarding walk traverses a directed edge twice.
    Loop {
        /// The first device where the walk re-enters itself.
        device: String,
    },
    /// No usable path traverses the class's waypoint pattern.
    WaypointMissed {
        /// The waypoint pattern source.
        pattern: String,
    },
}

/// A failed class in a checked state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The violated class's name.
    pub class: String,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ViolationKind::NoPath => write!(f, "{}: no usable path", self.class),
            ViolationKind::Blackhole { device } => {
                write!(f, "{}: black-holed at {device}", self.class)
            }
            ViolationKind::Loop { device } => {
                write!(f, "{}: forwarding loop through {device}", self.class)
            }
            ViolationKind::WaypointMissed { pattern } => {
                write!(f, "{}: no path through waypoint /{pattern}/", self.class)
            }
        }
    }
}

/// The model checker: a topology plus the traffic classes the update
/// must preserve.
pub struct Checker<'a> {
    topo: &'a Topology,
    classes: &'a [TrafficClass],
}

impl<'a> Checker<'a> {
    /// Builds a checker over `topo` for `classes`.
    pub fn new(topo: &'a Topology, classes: &'a [TrafficClass]) -> Checker<'a> {
        Checker { topo, classes }
    }

    /// The classes this checker enforces.
    pub fn classes(&self) -> &[TrafficClass] {
        self.classes
    }

    /// Checks every class against `state`; returns all violations (empty
    /// means the state is safe).
    pub fn check(&self, state: &ModelState) -> Vec<Violation> {
        self.classes
            .iter()
            .filter_map(|c| self.check_class(c, state))
            .collect()
    }

    /// Checks one class against `state`.
    pub fn check_class(&self, class: &TrafficClass, state: &ModelState) -> Option<Violation> {
        let fail = |kind| {
            Some(Violation {
                class: class.name.clone(),
                kind,
            })
        };
        if !state.usable_device(class.src) || !state.usable_device(class.dst) {
            return fail(ViolationKind::NoPath);
        }
        let usable = |l: LinkId| {
            let link = self.topo.link(l);
            state.usable_device(link.a_end) && state.usable_device(link.z_end)
        };
        let path = match &class.waypoint {
            None => self
                .topo
                .ecmp_path(class.src, class.dst, class.hash, usable),
            Some(wp) => match self.waypointed_path(class, state, usable) {
                Ok(p) => Some(p),
                // Distinguish "no waypoint survives" from plain
                // unreachability: if a direct path exists the fabric is
                // connected and only the waypoint constraint failed.
                Err(()) => {
                    return if self
                        .topo
                        .ecmp_path(class.src, class.dst, class.hash, usable)
                        .is_some()
                    {
                        fail(ViolationKind::WaypointMissed {
                            pattern: wp.source().to_string(),
                        })
                    } else {
                        fail(ViolationKind::NoPath)
                    };
                }
            },
        };
        let Some(path) = path else {
            return fail(ViolationKind::NoPath);
        };
        if let Some(d) = path.iter().find(|d| state.black_holes(**d)) {
            return fail(ViolationKind::Blackhole {
                device: self.topo.device(*d).name.clone(),
            });
        }
        if let Some(d) = first_repeated_edge(&path) {
            return fail(ViolationKind::Loop {
                device: self.topo.device(d).name.clone(),
            });
        }
        None
    }

    /// A path `src → w → dst` through the first (by name) usable waypoint
    /// `w` matching the class pattern, mirroring the emunet middlebox
    /// detour. `Err(())` when no waypoint is reachable.
    fn waypointed_path(
        &self,
        class: &TrafficClass,
        state: &ModelState,
        usable: impl Fn(LinkId) -> bool + Copy,
    ) -> Result<Vec<DeviceId>, ()> {
        let wp = class.waypoint.as_ref().expect("caller checked");
        // Fast path: the natural ECMP path may already traverse a
        // waypoint.
        if let Some(direct) = self
            .topo
            .ecmp_path(class.src, class.dst, class.hash, usable)
        {
            if direct
                .iter()
                .any(|d| wp.matches(&self.topo.device(*d).name))
            {
                return Ok(direct);
            }
        }
        let mut candidates: Vec<(String, DeviceId)> = self
            .topo
            .devices()
            .filter(|(id, d)| wp.matches(&d.name) && state.usable_device(*id))
            .map(|(id, d)| (d.name.clone(), id))
            .collect();
        candidates.sort();
        for (_, w) in candidates {
            let Some(head) = self.topo.ecmp_path(class.src, w, class.hash, usable) else {
                continue;
            };
            let Some(tail) = self.topo.ecmp_path(w, class.dst, class.hash, usable) else {
                continue;
            };
            let mut path = head;
            path.extend_from_slice(&tail[1..]);
            return Ok(path);
        }
        Err(())
    }
}

/// The entry device of the first directed edge the walk traverses twice,
/// or `None` for a loop-free walk. Revisiting a *device* in the opposite
/// direction (a waypoint detour doubling back) is not a loop; re-sending
/// a packet over the same directed edge is.
fn first_repeated_edge(path: &[DeviceId]) -> Option<DeviceId> {
    let mut seen = HashSet::new();
    for pair in path.windows(2) {
        if !seen.insert((pair[0], pair[1])) {
            return Some(pair[0]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_topology::FatTree;

    fn ft() -> FatTree {
        FatTree::build(1, 4).expect("k=4")
    }

    fn classes(ft: &FatTree) -> Vec<TrafficClass> {
        // Cross-pod host pairs, one per adjacent pod pair.
        (0..4u64)
            .map(|p| {
                TrafficClass::pair(
                    format!("c{p}"),
                    ft.hosts[p as usize][0][0],
                    ft.hosts[((p + 1) % 4) as usize][1][1],
                    p,
                )
            })
            .collect()
    }

    #[test]
    fn healthy_fabric_is_clean() {
        let ft = ft();
        let cls = classes(&ft);
        let checker = Checker::new(&ft.topo, &cls);
        assert!(checker.check(&ModelState::default()).is_empty());
    }

    #[test]
    fn draining_one_agg_per_pod_is_safe() {
        let ft = ft();
        let cls = classes(&ft);
        let checker = Checker::new(&ft.topo, &cls);
        let state = ModelState {
            drained: ft.aggs.iter().map(|pod| pod[0]).collect(),
            in_flux: ft.aggs.iter().map(|pod| pod[0]).collect(),
        };
        assert!(checker.check(&state).is_empty());
    }

    #[test]
    fn draining_a_whole_pods_aggs_cuts_it_off() {
        let ft = ft();
        let cls = classes(&ft);
        let checker = Checker::new(&ft.topo, &cls);
        let state = ModelState {
            drained: ft.aggs[0].iter().copied().collect(),
            in_flux: HashSet::new(),
        };
        let violations = checker.check(&state);
        assert!(!violations.is_empty());
        assert!(violations.iter().all(|v| v.kind == ViolationKind::NoPath));
    }

    #[test]
    fn pushing_undrained_black_holes() {
        let ft = ft();
        let cls = classes(&ft);
        let checker = Checker::new(&ft.topo, &cls);
        // Reconfigure every core without draining: every cross-pod path
        // black-holes at its core hop.
        let state = ModelState {
            drained: HashSet::new(),
            in_flux: ft.cores.iter().copied().collect(),
        };
        let violations = checker.check(&state);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .all(|v| matches!(v.kind, ViolationKind::Blackhole { .. })));
    }

    #[test]
    fn waypoint_scoping_is_enforced() {
        let ft = ft();
        let wp = Pattern::new("dc01\\.pod00\\.agg0[01]").expect("regex");
        let class = TrafficClass {
            name: "inspected".into(),
            src: ft.hosts[1][0][0],
            dst: ft.hosts[2][0][0],
            hash: 7,
            waypoint: Some(wp),
        };
        let cls = vec![class];
        let checker = Checker::new(&ft.topo, &cls);
        // Healthy: a detour through pod00's aggs exists.
        assert!(checker.check(&ModelState::default()).is_empty());
        // Drain both inspection aggs: the constraint is unsatisfiable
        // even though src and dst stay connected.
        let state = ModelState {
            drained: ft.aggs[0].iter().copied().collect(),
            in_flux: HashSet::new(),
        };
        let violations = checker.check(&state);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0].kind,
            ViolationKind::WaypointMissed { .. }
        ));
    }

    #[test]
    fn drained_endpoint_is_a_violation() {
        let ft = ft();
        let cls = vec![TrafficClass::pair("c", ft.tors[0][0], ft.tors[1][0], 1)];
        let checker = Checker::new(&ft.topo, &cls);
        let state = ModelState {
            drained: [ft.tors[0][0]].into_iter().collect(),
            in_flux: HashSet::new(),
        };
        assert_eq!(checker.check(&state).len(), 1);
    }

    #[test]
    fn repeated_edge_detector() {
        let a = DeviceId(0);
        let b = DeviceId(1);
        let c = DeviceId(2);
        assert_eq!(first_repeated_edge(&[a, b, c]), None);
        // Doubling back over distinct directed edges is not a loop.
        assert_eq!(first_repeated_edge(&[a, b, a, c]), None);
        // Re-traversing a→b is.
        assert_eq!(first_repeated_edge(&[a, b, a, b]), Some(a));
    }
}
