//! The config-diff frontend: two [`StoreSnapshot`]s in, per-device
//! update operations out.
//!
//! A snapshot pair (current state, target state) is compared device by
//! device. Every changed attribute becomes part of that device's single
//! [`UpdateOp`]; operations are classified by whether they can commit as
//! a pure database write or need a configuration push to the device —
//! the planner only wraps the latter in drain/undrain barriers.
//!
//! The comparison exploits the sharded snapshot representation through
//! netdb's incremental-view engine ([`occam_netdb::snapshot_delta`]):
//! shards are `Arc`-shared between versions of the store, so a diff of
//! two snapshots that differ in a handful of pods skips the untouched
//! shards — and, inside a touched shard, the untouched device records —
//! entirely via pointer equality. Attribute maps are compared only for
//! the devices the delta names, making the diff O(changed devices)
//! rather than O(network).

use occam_netdb::{attrs, snapshot_delta, AttrValue, StoreSnapshot};
use std::collections::BTreeMap;

/// Attributes whose change requires pushing configuration to the device
/// (and therefore a drain window), not just a database write.
const PUSHED_ATTRS: &[&str] = &[
    attrs::FIRMWARE_VERSION,
    attrs::FIRMWARE_BINARY,
    "CONFIG_VERSION",
];

/// One device's pending update: every attribute that must change to move
/// the device from the old snapshot to the new one.
#[derive(Clone, PartialEq, Debug)]
pub struct UpdateOp {
    /// Device name.
    pub device: String,
    /// Attribute writes, sorted by attribute name. `DEVICE_STATUS`
    /// writes are applied at the end of the device's wave (they define
    /// the device's post-wave admin state, DESIGN.md §15.4).
    pub sets: Vec<(String, AttrValue)>,
    /// Target firmware when `FIRMWARE_VERSION` changed; forwarded to
    /// `f_push` so the dataplane and the database agree.
    pub firmware: Option<String>,
}

impl UpdateOp {
    /// Whether applying this op requires a configuration push (and so a
    /// drain/undrain barrier around its wave).
    pub fn needs_push(&self) -> bool {
        self.sets
            .iter()
            .any(|(a, _)| PUSHED_ATTRS.contains(&a.as_str()))
    }

    /// The device's target admin status, when the new config sets one.
    pub fn target_status(&self) -> Option<&AttrValue> {
        self.sets
            .iter()
            .find(|(a, _)| a == attrs::DEVICE_STATUS)
            .map(|(_, v)| v)
    }
}

/// Diffs two snapshots into per-device update operations, sorted by
/// device name.
///
/// Only devices present in **both** snapshots produce operations:
/// inserting and decommissioning devices is inventory work with its own
/// workflows, not a config update (DESIGN.md §15.1). Attributes present
/// in `old` but absent from `new` are left untouched for the same
/// reason — the planner never destroys state it did not author.
pub fn diff(old: &StoreSnapshot, new: &StoreSnapshot) -> Vec<UpdateOp> {
    let delta = snapshot_delta(old, new);
    let mut ops = Vec::new();
    // `delta.changed` is sorted and names every device in `new` whose
    // record moved since `old` (pointer-equal records are byte-identical
    // and can never produce an op); `delta.removed` is decommissioning
    // work, which the planner deliberately ignores.
    for device in &delta.changed {
        let Some(old_attrs) = old.device_attrs(device) else {
            continue;
        };
        let new_attrs = new
            .device_attrs(device)
            .expect("device named by its own snapshot's delta");
        let op = diff_device(device, &old_attrs, &new_attrs);
        if !op.sets.is_empty() {
            ops.push(op);
        }
    }
    ops
}

fn diff_device(
    device: &str,
    old: &BTreeMap<String, AttrValue>,
    new: &BTreeMap<String, AttrValue>,
) -> UpdateOp {
    let mut sets = Vec::new();
    let mut firmware = None;
    for (attr, value) in new {
        if old.get(attr) == Some(value) {
            continue;
        }
        if attr == attrs::FIRMWARE_VERSION {
            if let AttrValue::Str(v) = value {
                firmware = Some(v.clone());
            }
        }
        sets.push((attr.clone(), value.clone()));
    }
    UpdateOp {
        device: device.to_string(),
        sets,
        firmware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occam_netdb::wal::WalRecord;

    fn snap(devices: &[(&str, &[(&str, &str)])]) -> StoreSnapshot {
        let mut records = Vec::new();
        for (name, attrs) in devices {
            records.push(WalRecord::InsertDevice {
                name: name.to_string(),
                attrs: attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), AttrValue::from(*v)))
                    .collect(),
            });
        }
        StoreSnapshot::replay(&records)
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let s = snap(&[("dc01.pod00.tor00", &[("FIRMWARE_VERSION", "fw-1")])]);
        assert!(diff(&s, &s).is_empty());
    }

    #[test]
    fn firmware_change_needs_push_and_carries_target() {
        let old = snap(&[("dc01.pod00.tor00", &[("FIRMWARE_VERSION", "fw-1")])]);
        let new = snap(&[("dc01.pod00.tor00", &[("FIRMWARE_VERSION", "fw-2")])]);
        let ops = diff(&old, &new);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].needs_push());
        assert_eq!(ops[0].firmware.as_deref(), Some("fw-2"));
    }

    #[test]
    fn plain_attr_change_is_db_only() {
        let old = snap(&[("dc01.pod00.tor00", &[("SNMP_COMMUNITY", "a")])]);
        let new = snap(&[("dc01.pod00.tor00", &[("SNMP_COMMUNITY", "b")])]);
        let ops = diff(&old, &new);
        assert_eq!(ops.len(), 1);
        assert!(!ops[0].needs_push());
        assert!(ops[0].firmware.is_none());
    }

    #[test]
    fn added_and_removed_devices_are_skipped() {
        let old = snap(&[("dc01.pod00.tor00", &[("X", "1")])]);
        let new = snap(&[("dc01.pod00.tor01", &[("X", "1")])]);
        assert!(diff(&old, &new).is_empty());
    }

    #[test]
    fn ops_sorted_by_device() {
        let old = snap(&[("b", &[("X", "1")]), ("a", &[("X", "1")])]);
        let new = snap(&[("b", &[("X", "2")]), ("a", &[("X", "2")])]);
        let ops = diff(&old, &new);
        assert_eq!(ops[0].device, "a");
        assert_eq!(ops[1].device, "b");
    }
}
