//! The `update.*` metrics family (DESIGN.md §9).
//!
//! All instruments are bound eagerly by [`UpdateObs::bind`], so the
//! metrics contract holds from the moment a planner or executor is
//! wired to a registry — before any plan runs.

use occam_obs::{Counter, Histogram, Registry};

/// Handles for every `update.*` instrument.
#[derive(Clone)]
pub struct UpdateObs {
    /// `update.diff.ops` — operations emitted by the config diff.
    pub diff_ops: Counter,
    /// `update.synth.plans` — synthesis runs.
    pub synth_plans: Counter,
    /// `update.synth.waves` — waves across all synthesized plans.
    pub synth_waves: Counter,
    /// `update.synth.checks` — model-check invocations.
    pub synth_checks: Counter,
    /// `update.synth.splits` — waves split by counterexamples.
    pub synth_splits: Counter,
    /// `update.synth.barriers` — drain/undrain barriers inserted.
    pub synth_barriers: Counter,
    /// `update.synth.counterexamples` — violations seen during search.
    pub synth_counterexamples: Counter,
    /// `update.synth_ns` — wall time per synthesis run.
    pub synth_ns: Histogram,
    /// `update.verify_ns` — wall time per independent plan verification.
    pub verify_ns: Histogram,
    /// `update.verify.violations` — violations found by verification
    /// (zero for plans this crate synthesized).
    pub verify_violations: Counter,
    /// `update.exec.waves` — waves committed by the executor.
    pub exec_waves: Counter,
    /// `update.exec.failures` — waves that aborted.
    pub exec_failures: Counter,
    /// `update.exec.rollbacks` — aborted waves mechanically rolled back
    /// to their wave boundary.
    pub exec_rollbacks: Counter,
    /// `update.exec.publications` — intermediate states published
    /// (mid-wave drain points and post-wave commits).
    pub exec_publications: Counter,
    /// `update.exec.wave_ns` — wall time per executed wave.
    pub exec_wave_ns: Histogram,
}

impl UpdateObs {
    /// Binds (and thereby registers) every `update.*` instrument.
    pub fn bind(reg: &Registry) -> UpdateObs {
        UpdateObs {
            diff_ops: reg.counter("update.diff.ops"),
            synth_plans: reg.counter("update.synth.plans"),
            synth_waves: reg.counter("update.synth.waves"),
            synth_checks: reg.counter("update.synth.checks"),
            synth_splits: reg.counter("update.synth.splits"),
            synth_barriers: reg.counter("update.synth.barriers"),
            synth_counterexamples: reg.counter("update.synth.counterexamples"),
            synth_ns: reg.histogram("update.synth_ns"),
            verify_ns: reg.histogram("update.verify_ns"),
            verify_violations: reg.counter("update.verify.violations"),
            exec_waves: reg.counter("update.exec.waves"),
            exec_failures: reg.counter("update.exec.failures"),
            exec_rollbacks: reg.counter("update.exec.rollbacks"),
            exec_publications: reg.counter("update.exec.publications"),
            exec_wave_ns: reg.histogram("update.exec.wave_ns"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_registers_the_whole_family() {
        let reg = Registry::new();
        let _obs = UpdateObs::bind(&reg);
        let counters: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        for name in [
            "update.diff.ops",
            "update.synth.plans",
            "update.exec.waves",
            "update.exec.publications",
        ] {
            assert!(counters.iter().any(|c| c == name), "{name} missing");
        }
        assert!(reg.histograms().iter().any(|(n, _)| n == "update.synth_ns"));
    }
}
